//! `umpa` — facade crate for the umpa-rs workspace.
//!
//! Re-exports the public API of every sub-crate so that downstream users
//! (and the `examples/` and `tests/` trees) can depend on a single crate:
//!
//! ```
//! use umpa::prelude::*;
//! ```
//!
//! The workspace reproduces *Deveci, Kaya, Uçar, Çatalyürek: "Fast and
//! high quality topology-aware task mapping", IPDPS 2015*. See DESIGN.md
//! for the crate inventory and EXPERIMENTS.md for the reproduced tables
//! and figures.

#![forbid(unsafe_code)]

pub use umpa_analysis as analysis;
pub use umpa_core as core;
pub use umpa_ds as ds;
pub use umpa_graph as graph;
pub use umpa_matgen as matgen;
pub use umpa_netsim as netsim;
pub use umpa_partition as partition;
pub use umpa_service as service;
pub use umpa_topology as topology;

/// Commonly used items, importable with a single `use umpa::prelude::*`.
pub mod prelude {
    pub use umpa_core::prelude::*;
    pub use umpa_graph::prelude::*;
    pub use umpa_matgen::prelude::*;
    pub use umpa_netsim::prelude::*;
    pub use umpa_partition::prelude::*;
    pub use umpa_service::prelude::*;
    pub use umpa_topology::prelude::*;
}
