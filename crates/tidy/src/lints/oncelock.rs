//! `oncelock-invalidation` — every cached `OnceLock` field of the
//! machine is invalidated on the fault path.
//!
//! PR 6's stale-cache bug class, closed statically: the machine
//! memoizes derived products in `OnceLock` fields (distance oracle,
//! route cache, reciprocal bandwidths), and a hard link failure or
//! recovery must discard or patch **all** of them — a field someone
//! adds later and forgets to reset serves pre-failure routes to the
//! repair engine. The dynamic tests only catch that on the products
//! they query; this lint cross-checks the declarations against the
//! fault path itself.
//!
//! Mechanically: collect the `OnceLock` fields declared in
//! `crates/topology/src/machine.rs`, then require each to be
//! reassigned (`self.field = OnceLock::new()`), taken
//! (`self.field.take()`), or patched in place (`self.field.get_mut()`)
//! somewhere in the bodies of the fault-path functions
//! `degrade_link` / `clear_faults` / `rebuild_after_failure_change`.

use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::lints::find_token;

/// The machine model file this lint cross-checks.
const MACHINE_FILE: &str = "crates/topology/src/machine.rs";

/// The functions that make up the fault/invalidation path.
const RESET_FNS: &[&str] = &[
    "degrade_link",
    "clear_faults",
    "rebuild_after_failure_change",
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.rel_path != MACHINE_FILE {
        return Vec::new();
    }
    // OnceLock field declarations: `name: OnceLock<…>` outside tests.
    let mut fields: Vec<(String, usize)> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        if let Some(colon) = code.find(':') {
            let after = code[colon + 1..].trim_start();
            if after.starts_with("OnceLock<") {
                let name = code[..colon].trim().trim_start_matches("pub ").trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    fields.push((name.to_string(), idx + 1));
                }
            }
        }
    }
    if fields.is_empty() {
        return Vec::new();
    }

    // Concatenated code of the fault-path function bodies.
    let mut reset_body = String::new();
    let mut found_any_fn = false;
    for name in RESET_FNS {
        if let Some(range) = fn_extent(file, name) {
            found_any_fn = true;
            for line in &file.lines[range.0..range.1] {
                reset_body.push_str(&line.code);
                reset_body.push('\n');
            }
        }
    }

    let mut out = Vec::new();
    if !found_any_fn {
        out.push(Diagnostic::new(
            "oncelock-invalidation",
            &file.rel_path,
            fields[0].1,
            format!(
                "OnceLock caches are declared but none of the fault-path functions ({}) \
                 exist to invalidate them",
                RESET_FNS.join("/")
            ),
        ));
        return out;
    }
    for (name, lineno) in fields {
        let reset = reset_body.contains(&format!(".{name} = OnceLock::new()"))
            || reset_body.contains(&format!(".{name}.take()"))
            || reset_body.contains(&format!(".{name}.get_mut("));
        if !reset {
            out.push(Diagnostic::new(
                "oncelock-invalidation",
                &file.rel_path,
                lineno,
                format!(
                    "OnceLock field `{name}` is never invalidated (reassigned, taken or \
                     patched via get_mut) in the fault path ({}) — a hard link failure \
                     would serve it stale",
                    RESET_FNS.join("/")
                ),
            ));
        }
    }
    out
}

/// Line range (0-based, half-open) of `fn name`'s declaration and body,
/// found by brace counting on the lexed code.
fn fn_extent(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let pat = format!("fn {name}");
    let start = file
        .lines
        .iter()
        .position(|l| !l.in_test && find_token(&l.code, &pat).is_some())?;
    // Track brace balance from the declaration line; the body ends when
    // the balance returns to zero after having opened.
    let mut balance: i64 = 0;
    let mut opened = false;
    for (idx, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.bytes() {
            match c {
                b'{' => {
                    balance += 1;
                    opened = true;
                }
                b'}' => balance -= 1,
                _ => {}
            }
        }
        if opened && balance <= 0 {
            return Some((start, idx + 1));
        }
    }
    Some((start, file.lines.len()))
}
