//! `determinism` — no nondeterminism sources in the engine crates.
//!
//! The engine's headline property is bit-identical mappings across
//! scratch/parallel/oracle/route-cache configurations (PRs 1/3/5, the
//! differential harnesses in CI). The classic ways to lose it:
//!
//! * `std::collections::HashMap`/`HashSet` — `RandomState` seeds the
//!   hash per process, so iteration order differs run to run; one
//!   `for (k, v) in map` in a decision path silently breaks every
//!   differential test. Sorted vecs, dense arrays and the epoch-marker
//!   pattern (`umpa_ds::EpochMarker`) are the project's replacements.
//! * Wall-clock reads (`Instant::now`) feeding anything but reporting.
//! * Unseeded RNG construction — all randomness must flow from an
//!   explicit seed (the ChaCha shims take nothing else, but keep the
//!   patterns so a future real-`rand` build stays honest).

use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::lints::find_token;

/// Crates whose `src/` trees must be deterministic (bench and the
/// test/bin crates are exempt, as are `#[cfg(test)]` regions anywhere).
const SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/topology/src/",
    "crates/graph/src/",
    "crates/partition/src/",
    "crates/ds/src/",
    // The service's decisions (ladder, retry, supervisor) must be a
    // pure function of seed + event stream + clock readings; the one
    // wall-clock anchor lives in clock.rs behind an allow.
    "crates/service/src/",
];

const PATTERNS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is seeded per process"),
    ("HashSet", "iteration order is seeded per process"),
    ("Instant::now(", "wall-clock reads are nondeterministic"),
    ("SystemTime::now(", "wall-clock reads are nondeterministic"),
    ("thread_rng(", "unseeded RNG"),
    ("from_entropy(", "unseeded RNG"),
    ("rand::random", "unseeded RNG"),
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !SCOPES.iter().any(|s| file.rel_path.starts_with(s)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, why) in PATTERNS {
            if find_token(&line.code, pat).is_some() {
                out.push(Diagnostic::new(
                    "determinism",
                    &file.rel_path,
                    idx + 1,
                    format!(
                        "`{}` in a deterministic crate ({why}); use a sorted vec, dense \
                         array or epoch marker, or justify with an allow",
                        pat.trim_end_matches('(')
                    ),
                ));
                break;
            }
        }
    }
    out
}
