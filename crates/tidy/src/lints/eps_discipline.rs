//! `eps-discipline` — float tolerances come from `umpa_core::eps`.
//!
//! Accept rules compare floats against `mc`/capacity with a tolerance;
//! if two call sites inline different literals (`1e-12` here, `1e-9`
//! there) the accept rule silently diverges between engines that must
//! stay bit-identical — exactly the drift the frozen congestion
//! reference exists to catch dynamically. The canonical constants live
//! in `umpa_core::eps` (`CAPACITY_EPS`, `CONG_EPS`, `GAIN_EPS`); this
//! lint flags any scientific-notation literal with a negative exponent
//! in non-test `umpa-core` code outside that module.

use crate::diag::Diagnostic;
use crate::lexer::SourceFile;

/// The canonical definition site — the one file allowed to spell the
/// values out.
const CANONICAL: &str = "crates/core/src/eps.rs";

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.rel_path.starts_with("crates/core/src/") || file.rel_path == CANONICAL {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if let Some(lit) = find_small_literal(&line.code) {
            out.push(Diagnostic::new(
                "eps-discipline",
                &file.rel_path,
                idx + 1,
                format!(
                    "inline tolerance literal `{lit}`; reference the shared constants in \
                     `umpa_core::eps` so accept rules cannot drift between call sites"
                ),
            ));
        }
    }
    out
}

/// Finds a scientific-notation float literal with a negative exponent
/// (`1e-12`, `2.5E-9`, …) spelled directly in code.
fn find_small_literal(code: &str) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            if i + 2 < bytes.len()
                && (bytes[i] == b'e' || bytes[i] == b'E')
                && bytes[i + 1] == b'-'
                && bytes[i + 2].is_ascii_digit()
            {
                let mut j = i + 2;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                return Some(&code[start..j]);
            }
        } else {
            i += 1;
        }
    }
    None
}

#[inline]
fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::find_small_literal;

    #[test]
    fn literal_detection() {
        assert_eq!(find_small_literal("if x < mc - 1e-12 {"), Some("1e-12"));
        assert_eq!(find_small_literal("let t = 2.5E-9;"), Some("2.5E-9"));
        assert_eq!(find_small_literal("free + CAPACITY_EPS >= w"), None);
        assert_eq!(find_small_literal("let big = 1e9;"), None);
        assert_eq!(find_small_literal("ver2e-1"), None); // inside ident
    }
}
