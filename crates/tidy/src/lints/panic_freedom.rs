//! `panic-freedom` — no panicking constructs in the never-panic files.
//!
//! `umpa_core::remap`, `umpa_topology::fault` and the whole of
//! `umpa_service` document a hard contract: incremental repair and
//! the serving loop **never panic** — infeasibility is a typed
//! [`RemapOutcome::Infeasible`] (the service's analog is a typed
//! [`ServiceError`]), not a crash in a serving process that just lost
//! hardware. This lint bans the panicking
//! constructs (`unwrap`/`expect`/`panic!`/`todo!`/asserts) plus a
//! heuristic for the sneakiest variant: direct slice indexing inside a
//! match arm, where a refactor of the matched shape turns a formerly
//! in-range index into a panic. `debug_assert*` stays legal — it
//! vanishes in release builds and documents invariants.

use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::lints::{find_token, path_is_one_of};

/// Files whose documented contract is "never panics". Entries ending
/// in `/` scope a whole source tree: the service's worker loop and
/// supervisor serve requests in a long-running process, so the entire
/// crate carries the contract.
const NEVER_PANIC_FILES: &[&str] = &[
    "crates/core/src/greedy.rs",
    "crates/core/src/remap.rs",
    "crates/topology/src/fault.rs",
    "crates/service/src/",
];

const PATTERNS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !path_is_one_of(file, NEVER_PANIC_FILES) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut hit = None;
        for pat in PATTERNS {
            if find_token(&line.code, pat).is_some() {
                hit = Some(format!(
                    "panicking construct `{}` in a never-panic file; return a typed \
                     error/outcome instead, or justify with an allow",
                    pat.trim_end_matches('(')
                ));
                break;
            }
        }
        if hit.is_none() {
            if let Some(col) = match_arm_index(&line.code) {
                hit = Some(format!(
                    "direct slice index in a match arm (col {col}) can panic if the matched \
                     shape changes; use `get`, or justify with an allow"
                ));
            }
        }
        if let Some(msg) = hit {
            out.push(Diagnostic::new(
                "panic-freedom",
                &file.rel_path,
                idx + 1,
                msg,
            ));
        }
    }
    out
}

/// Heuristic: after a `=>` fat arrow, an identifier immediately
/// followed by `[` is a direct (panicking) index expression.
fn match_arm_index(code: &str) -> Option<usize> {
    let arrow = code.find("=>")?;
    let bytes = code.as_bytes();
    for i in arrow + 2..bytes.len().saturating_sub(1) {
        let c = bytes[i];
        if (c.is_ascii_alphanumeric() || c == b'_') && bytes[i + 1] == b'[' {
            return Some(i + 2); // 1-based column of the bracket
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::match_arm_index;

    #[test]
    fn arm_index_heuristic() {
        assert!(match_arm_index("Some(i) => table[i as usize],").is_some());
        assert!(match_arm_index("Some(i) => table.get(i),").is_none());
        assert!(match_arm_index("let x = table[i];").is_none()); // no arm
        assert!(match_arm_index("Some(i) => (i, j),").is_none());
    }
}
