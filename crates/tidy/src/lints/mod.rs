//! The lint catalog: one module per lint plus shared text helpers.
//!
//! Every lint is a function from a lexed [`SourceFile`] to diagnostics;
//! path scoping (which files a lint examines) lives in the lint itself
//! so the engine stays a dumb loop. Lints skip `#[cfg(test)]` regions —
//! tests are allowed to allocate, panic and hash — and the engine
//! applies `tidy-allow` suppression afterwards.

pub mod determinism;
pub mod eps_discipline;
pub mod hot_path_alloc;
pub mod oncelock;
pub mod panic_freedom;

use crate::lexer::SourceFile;

/// Finds `pat` in `code` as a token: when the pattern starts with an
/// identifier character, the preceding character must not be one (so
/// `assert!(` does not match inside `debug_assert!(`, while
/// `std::collections::HashMap` still matches `HashMap`). Returns the
/// byte offset.
pub(crate) fn find_token(code: &str, pat: &str) -> Option<usize> {
    let first_is_ident = pat
        .as_bytes()
        .first()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_');
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let at = from + rel;
        let prev_ok = !first_is_ident
            || at == 0
            || !matches!(code.as_bytes()[at - 1], c if c.is_ascii_alphanumeric() || c == b'_');
        if prev_ok {
            return Some(at);
        }
        from = at + pat.len();
    }
    None
}

/// Whether the workspace-relative path matches one of `files`: an
/// entry ending in `/` is a directory prefix (scoping a whole source
/// tree, e.g. `crates/service/src/`), anything else matches exactly.
pub(crate) fn path_is_one_of(file: &SourceFile, files: &[&str]) -> bool {
    files.iter().any(|f| match f.strip_suffix('/') {
        Some(_) => file.rel_path.starts_with(f),
        None => file.rel_path == *f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_slash_entries_scope_whole_trees() {
        use crate::lexer::SourceFile;
        let file = |p: &str| SourceFile::lex(p, "fn main() {}\n");
        let scopes = &["crates/core/src/remap.rs", "crates/service/src/"];
        assert!(path_is_one_of(&file("crates/core/src/remap.rs"), scopes));
        assert!(!path_is_one_of(&file("crates/core/src/greedy.rs"), scopes));
        assert!(path_is_one_of(
            &file("crates/service/src/worker.rs"),
            scopes
        ));
        assert!(path_is_one_of(
            &file("crates/service/src/nested/deep.rs"),
            scopes
        ));
        // The prefix is the directory, not a name fragment.
        assert!(!path_is_one_of(&file("crates/service/tests/x.rs"), scopes));
        assert!(!path_is_one_of(&file("crates/service2/src/x.rs"), scopes));
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("assert!(x)", "assert!(").is_some());
        assert!(find_token("debug_assert!(x)", "assert!(").is_none());
        assert!(find_token("x.unwrap()", ".unwrap(").is_some());
        assert!(find_token("x.unwrap_or(0)", ".unwrap(").is_none());
        assert!(find_token("std::collections::HashMap::new()", "HashMap").is_some());
    }
}
