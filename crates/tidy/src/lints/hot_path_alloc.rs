//! `hot-path-alloc` — no allocating constructs in warm-path modules.
//!
//! PR 1's contract: once a `MapperScratch` is warm, the engine performs
//! zero heap allocations (enforced dynamically by the counting
//! allocator in `tests/alloc_free.rs`). This lint enforces it at the
//! source level for the modules on that path: any allocating construct
//! outside a `tidy-cold-region` fence (scratch constructors,
//! `ensure_capacity`-style growth, convenience entry points) or a
//! per-line allow is a violation — *before* a test has to catch it on
//! a path the suite happens to cover.

use crate::diag::Diagnostic;
use crate::lexer::SourceFile;
use crate::lints::{find_token, path_is_one_of};

/// The engine's warm-path modules (DESIGN.md §8/§13/§14).
const WARM_MODULES: &[&str] = &[
    "crates/core/src/greedy.rs",
    "crates/core/src/wh_refine.rs",
    "crates/core/src/cong_refine.rs",
    "crates/core/src/remap.rs",
    "crates/core/src/gain.rs",
    "crates/core/src/multilevel.rs",
];

/// Allocating constructs. `Vec::resize`/`reserve`/`extend` are absent
/// on purpose: they are the grow-on-`ensure` idiom the scratch design
/// is built on, and the counting allocator still guards their warm
/// behavior.
const PATTERNS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".collect(",
    ".collect::<",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    "Box::new(",
    "format!(",
    "String::new(",
    "String::from(",
    ".clone(",
    "HashMap::new(",
    "BTreeMap::new(",
];

/// Runs the lint over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !path_is_one_of(file, WARM_MODULES) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.in_cold {
            continue;
        }
        for pat in PATTERNS {
            if find_token(&line.code, pat).is_some() {
                out.push(Diagnostic::new(
                    "hot-path-alloc",
                    &file.rel_path,
                    idx + 1,
                    format!(
                        "allocating construct `{}` in a warm-path module; move it inside a \
                         cold-region fence or justify it with an allow",
                        pat.trim_end_matches('(')
                    ),
                ));
                break; // one diagnostic per line is enough to act on
            }
        }
    }
    out
}
