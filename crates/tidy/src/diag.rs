//! Diagnostics and the lint registry.

use std::fmt;

/// Names of every lint, in report order. Allow annotations must name
/// one of these (`bad-annotation` itself is not suppressible).
pub const LINT_NAMES: &[&str] = &[
    "hot-path-alloc",
    "determinism",
    "panic-freedom",
    "eps-discipline",
    "oncelock-invalidation",
    "bad-annotation",
];

/// One `file:line` finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (one of [`LINT_NAMES`]).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl Diagnostic {
    /// Builds a finding for `lint` at `path:line`.
    pub fn new(lint: &'static str, path: &str, line: usize, msg: String) -> Self {
        Self {
            path: path.to_string(),
            line,
            lint,
            msg,
        }
    }

    /// Builds a malformed-annotation finding.
    pub fn annotation(path: &str, line: usize, msg: String) -> Self {
        Self::new("bad-annotation", path, line, msg)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.msg
        )
    }
}
