//! `umpa-tidy` — the workspace's static invariant checker.
//!
//! rust-lang/rust keeps a `tidy` tool that enforces repo-specific
//! invariants no general linter knows about; this is ours. The engine's
//! headline properties — zero-allocation warm paths, bit-identical
//! mappings across engine configurations, never-panic incremental
//! repair, correct `OnceLock` invalidation under faults, one shared
//! epsilon per accept rule — are all enforced *dynamically* by the
//! counting allocator and the differential harnesses. Those only catch
//! a violation after someone writes one on a path the tests cover;
//! `umpa-tidy` makes the same invariants fail CI with a `file:line`
//! diagnostic the moment the pattern appears anywhere.
//!
//! The pipeline: walk every `.rs` file in the workspace, lex each with
//! the comment/string-aware [`lexer`], run the path-scoped [`lints`],
//! apply per-line `tidy-allow` suppression, report. DESIGN.md §15
//! documents the invariant catalog, the annotation grammar and how to
//! add a lint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod lints;

use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, LINT_NAMES};
pub use lexer::SourceFile;

/// Lints one source text as if it lived at `rel_path` (workspace-
/// relative, `/`-separated). This is the whole checker for one file:
/// lex, run every lint that scopes to the path, apply suppression.
/// Fixture tests drive this directly with virtual paths.
pub fn check_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::lex(rel_path, text);
    let mut diags = file.annotation_diags.clone();
    for lint in [
        lints::hot_path_alloc::check,
        lints::determinism::check,
        lints::panic_freedom::check,
        lints::eps_discipline::check,
        lints::oncelock::check,
    ] {
        for d in lint(&file) {
            let allowed = file.lines[d.line - 1].allows.contains(&d.lint);
            if !allowed {
                diags.push(d);
            }
        }
    }
    diags
}

/// Walks the workspace at `root` and lints every source file. Returns
/// diagnostics sorted by path and line for stable output.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .expect("source paths are UTF-8")
            .replace('\\', "/");
        diags.extend(check_source(&rel_str, &text));
    }
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diags)
}

/// Directories the walk never descends into: build output, VCS, and
/// this crate's deliberately-violating lint fixtures.
fn skip_dir(rel: &Path) -> bool {
    let Some(name) = rel.file_name().and_then(|n| n.to_str()) else {
        return true;
    };
    name == "target" || name.starts_with('.') || rel.ends_with("crates/tidy/fixtures")
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).expect("walk stays under root");
        if path.is_dir() {
            if !skip_dir(rel) {
                collect_sources(root, &path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
