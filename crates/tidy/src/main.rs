//! `umpa-tidy` CLI: lint the workspace, print `file:line` diagnostics
//! plus a per-lint summary, exit non-zero on any violation.
//!
//! Usage: `cargo run -p umpa-tidy --release [-- <workspace-root>]`.
//! Without an argument the root is found by walking up from the
//! current directory to the first `[workspace]` manifest, so the
//! binary works from any subdirectory and from CI's checkout root.

use std::path::PathBuf;
use std::process::ExitCode;

use umpa_tidy::{check_workspace, find_workspace_root, LINT_NAMES};

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().expect("cwd is readable");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "umpa-tidy: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let diags = match check_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("umpa-tidy: walking {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if diags.is_empty() {
        println!("umpa-tidy: workspace is tidy ({} clean)", root.display());
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    // Per-lint summary so a CI log failure is actionable at a glance.
    println!("\numpa-tidy: {} violation(s)", diags.len());
    for lint in LINT_NAMES {
        let n = diags.iter().filter(|d| d.lint == *lint).count();
        if n > 0 {
            println!("  {lint:<24} {n}");
        }
    }
    ExitCode::FAILURE
}
