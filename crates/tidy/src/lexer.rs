//! A comment/string-aware line lexer for Rust sources.
//!
//! The lints in this crate are substring checks over *code*, so the
//! lexer's job is to blank out everything that is not code — line and
//! block comments (nested), string literals (plain, raw, byte), char
//! literals — while preserving line numbers and column positions, and
//! to annotate every line with the context the lints need:
//!
//! * the brace depth and whether the line sits inside a `#[cfg(test)]`
//!   region (tests are exempt from every lint),
//! * whether the line sits inside a `tidy-cold-region` fence (exempt
//!   from the hot-path allocation lint),
//! * which lints a `tidy-allow` annotation suppresses on the line.
//!
//! Annotations live in plain `//` comments (doc comments are
//! documentation, not directives, and are never parsed):
//!
//! * an allow names one lint and must carry a parenthesized reason; it
//!   suppresses the lint on its own line when trailing code, otherwise
//!   on the next source line;
//! * a cold-region fence opens with a reason and closes with the
//!   matching end marker; fences must balance within the file.
//!
//! Malformed annotations (unknown lint, missing reason, unbalanced
//! fence, an allow that precedes no code) are themselves diagnostics,
//! reported under the `bad-annotation` lint.

use crate::diag::{Diagnostic, LINT_NAMES};

/// Fence/annotation spellings, assembled at runtime so the checker's
/// own source never contains a well-formed marker in a plain comment.
fn allow_marker() -> String {
    ["tidy", "-allow:"].concat()
}
fn cold_begin_marker() -> String {
    ["tidy", "-cold-region:"].concat()
}
fn cold_end_marker() -> String {
    ["tidy", "-end-cold-region"].concat()
}

/// One lexed source line.
pub struct Line {
    /// Code text: the raw line with comments and literal contents
    /// blanked to spaces (string/char delimiters are kept), so column
    /// positions survive for diagnostics.
    pub code: String,
    /// Text of the line's plain `//` comment, if any (doc comments are
    /// excluded — annotations are directives, not documentation).
    pub comment: Option<String>,
    /// The line is inside (or opens/closes) a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The line is inside (or opens/closes) a cold-region fence.
    pub in_cold: bool,
    /// Lints suppressed on this line by `tidy-allow` annotations.
    pub allows: Vec<&'static str>,
}

/// A lexed file: per-line context plus any annotation diagnostics.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Lexed lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Malformed-annotation diagnostics found during lexing.
    pub annotation_diags: Vec<Diagnostic>,
}

/// Cross-line lexer state.
enum State {
    /// Plain code.
    Code,
    /// Inside a block comment at the given nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`.
    RawStr(usize),
}

impl SourceFile {
    /// Lexes `text` as the file at `rel_path`.
    pub fn lex(rel_path: &str, text: &str) -> SourceFile {
        let allow_marker = allow_marker();
        let cold_begin = cold_begin_marker();
        let cold_end = cold_end_marker();

        let mut lines = Vec::new();
        let mut diags = Vec::new();
        let mut state = State::Code;
        let mut depth: u32 = 0;
        // `#[cfg(test)]` seen at this depth; armed until a `{` opens the
        // region or a `;` ends the attributed item.
        let mut test_pending: Option<u32> = None;
        // Depth the active test region closes back to.
        let mut test_depth: Option<u32> = None;
        let mut cold_active = false;
        let mut cold_open_line = 0usize;
        // (lint, line-of-annotation) waiting for the next code line.
        let mut pending_allows: Vec<(&'static str, usize)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let bytes = raw.as_bytes();
            let mut code = String::with_capacity(raw.len());
            let mut comment: Option<String> = None;
            let mut test_any = test_depth.is_some();
            let mut i = 0usize;

            while i < bytes.len() {
                match state {
                    State::Block(ref mut d) => {
                        if raw[i..].starts_with("*/") {
                            *d -= 1;
                            if *d == 0 {
                                state = State::Code;
                            }
                            code.push_str("  ");
                            i += 2;
                        } else if raw[i..].starts_with("/*") {
                            *d += 1;
                            code.push_str("  ");
                            i += 2;
                        } else {
                            push_blank(&mut code, raw, i);
                            i += char_len(raw, i);
                        }
                    }
                    State::Str => {
                        if bytes[i] == b'\\' {
                            code.push_str("  ");
                            i += 1 + char_len_at(raw, i + 1);
                        } else if bytes[i] == b'"' {
                            code.push('"');
                            state = State::Code;
                            i += 1;
                        } else {
                            push_blank(&mut code, raw, i);
                            i += char_len(raw, i);
                        }
                    }
                    State::RawStr(hashes) => {
                        if bytes[i] == b'"' && raw[i + 1..].starts_with(&"#".repeat(hashes)) {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                            state = State::Code;
                            i += 1 + hashes;
                        } else {
                            push_blank(&mut code, raw, i);
                            i += char_len(raw, i);
                        }
                    }
                    State::Code => {
                        if raw[i..].starts_with("//") {
                            let is_doc = raw[i..].starts_with("///") || raw[i..].starts_with("//!");
                            if !is_doc {
                                comment = Some(raw[i + 2..].trim().to_string());
                            }
                            while code.len() < raw.len() {
                                code.push(' ');
                            }
                            break;
                        } else if raw[i..].starts_with("/*") {
                            state = State::Block(1);
                            code.push_str("  ");
                            i += 2;
                        } else if let Some(hashes) = raw_string_open(raw, i) {
                            // `r"`, `r#"`, `br#"` … — copy the opener so
                            // columns line up, then mask the body.
                            let opener = raw[i..].find('"').unwrap() + 1;
                            code.push_str(&raw[i..i + opener]);
                            state = State::RawStr(hashes);
                            i += opener;
                        } else if bytes[i] == b'"' {
                            code.push('"');
                            state = State::Str;
                            i += 1;
                        } else if bytes[i] == b'\'' {
                            if let Some(end) = char_literal_end(raw, i) {
                                code.push('\'');
                                for _ in i + 1..end {
                                    code.push(' ');
                                }
                                code.push('\'');
                                i = end + 1;
                            } else {
                                // A lifetime — plain code.
                                code.push('\'');
                                i += 1;
                            }
                        } else if raw[i..].starts_with("#[cfg(test)]") {
                            test_pending = Some(depth);
                            code.push_str("#[cfg(test)]");
                            i += "#[cfg(test)]".len();
                        } else {
                            let c = bytes[i];
                            if c == b'{' {
                                if test_pending == Some(depth) {
                                    test_depth = Some(depth);
                                    test_pending = None;
                                }
                                depth += 1;
                                if test_depth.is_some() {
                                    test_any = true;
                                }
                            } else if c == b'}' {
                                depth = depth.saturating_sub(1);
                                if test_depth == Some(depth) {
                                    test_depth = None;
                                    test_any = true;
                                }
                            } else if c == b';' && test_pending == Some(depth) {
                                // `#[cfg(test)] use …;` — no region.
                                test_pending = None;
                            }
                            push_blank_or(&mut code, raw, i);
                            i += char_len(raw, i);
                        }
                    }
                }
            }

            // Cold-region fences and allow annotations live in the
            // line's plain comment.
            let cold_at_start = cold_active;
            let mut line_allows: Vec<&'static str> = Vec::new();
            if let Some(c) = &comment {
                if let Some(pos) = c.find(&cold_begin) {
                    let reason = c[pos + cold_begin.len()..].trim();
                    if cold_active {
                        diags.push(Diagnostic::annotation(
                            rel_path,
                            lineno,
                            format!("cold region opened twice (first at line {cold_open_line})"),
                        ));
                    } else if reason.is_empty() {
                        diags.push(Diagnostic::annotation(
                            rel_path,
                            lineno,
                            "cold-region fence needs a reason after the colon".to_string(),
                        ));
                    }
                    cold_active = true;
                    cold_open_line = lineno;
                } else if c.contains(&cold_end) {
                    if !cold_active {
                        diags.push(Diagnostic::annotation(
                            rel_path,
                            lineno,
                            "cold-region end marker without an open fence".to_string(),
                        ));
                    }
                    cold_active = false;
                } else if let Some(pos) = c.find(&allow_marker) {
                    let rest = c[pos + allow_marker.len()..].trim();
                    match parse_allow(rest) {
                        Ok(lint) => line_allows.push(lint),
                        Err(msg) => {
                            diags.push(Diagnostic::annotation(rel_path, lineno, msg));
                        }
                    }
                }
            }

            let has_code = !code.trim().is_empty();
            let mut allows = Vec::new();
            if has_code {
                allows.extend(pending_allows.drain(..).map(|(l, _)| l));
                allows.extend(line_allows);
            } else {
                pending_allows.extend(line_allows.into_iter().map(|l| (l, lineno)));
            }

            lines.push(Line {
                code,
                comment,
                in_test: test_any,
                in_cold: cold_at_start || cold_active,
                allows,
            });
        }

        if cold_active {
            diags.push(Diagnostic::annotation(
                rel_path,
                cold_open_line,
                "cold region never closed before end of file".to_string(),
            ));
        }
        for (lint, lineno) in pending_allows {
            diags.push(Diagnostic::annotation(
                rel_path,
                lineno,
                format!("allow for `{lint}` precedes no code line"),
            ));
        }

        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            annotation_diags: diags,
        }
    }
}

/// Parses the tail of an allow annotation: `<lint> (<reason>)`.
fn parse_allow(rest: &str) -> Result<&'static str, String> {
    let (name, tail) = match rest.find('(') {
        Some(p) => (rest[..p].trim(), &rest[p..]),
        None => (rest.trim(), ""),
    };
    let Some(&lint) = LINT_NAMES.iter().find(|&&l| l == name) else {
        return Err(format!(
            "unknown lint `{name}` in allow annotation (known: {})",
            LINT_NAMES.join(", ")
        ));
    };
    let reason = tail
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "allow for `{lint}` needs a parenthesized reason: `({lint} is wrong here because …)`"
        ));
    }
    Ok(lint)
}

/// Whether `raw[i..]` opens a raw string (`r"`, `r#"`, `br##"` …);
/// returns the number of `#` in the delimiter.
fn raw_string_open(raw: &str, i: usize) -> Option<usize> {
    if i > 0 && is_ident_char(raw.as_bytes()[i - 1]) {
        return None; // an identifier ending in r/b, not a literal prefix
    }
    let bytes = raw.as_bytes();
    let mut j = i;
    let mut saw_r = false;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        saw_r |= bytes[j] == b'r';
        j += 1;
    }
    if !saw_r {
        return None;
    }
    let hashes = bytes[j..].iter().take_while(|&&c| c == b'#').count();
    j += hashes;
    (j < bytes.len() && bytes[j] == b'"').then_some(hashes)
}

/// Whether a `'` at `i` opens a char literal; returns the index of the
/// closing quote. A lifetime (`'a`, `'static`) returns `None`.
fn char_literal_end(raw: &str, i: usize) -> Option<usize> {
    let bytes = raw.as_bytes();
    if i + 1 >= bytes.len() {
        return None;
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2 + char_len_at(raw, i + 2);
        while j < bytes.len() && bytes[j] != b'\'' {
            j += char_len(raw, j);
        }
        return (j < bytes.len()).then_some(j);
    }
    let after = i + 1 + char_len(raw, i + 1);
    (after < bytes.len() && bytes[after] == b'\'').then_some(after)
}

#[inline]
fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// UTF-8 length of the char starting at byte `i`.
#[inline]
fn char_len(raw: &str, i: usize) -> usize {
    raw[i..].chars().next().map_or(1, char::len_utf8)
}

/// Like [`char_len`] but safe when `i` is past the end.
#[inline]
fn char_len_at(raw: &str, i: usize) -> usize {
    if i >= raw.len() {
        0
    } else {
        char_len(raw, i)
    }
}

/// Pushes one blank per byte of the char at `i` (keeps columns).
#[inline]
fn push_blank(code: &mut String, raw: &str, i: usize) {
    for _ in 0..char_len(raw, i) {
        code.push(' ');
    }
}

/// Copies the char at `i` into the code text.
#[inline]
fn push_blank_or(code: &mut String, raw: &str, i: usize) {
    let n = char_len(raw, i);
    code.push_str(&raw[i..i + n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(text: &str) -> SourceFile {
        SourceFile::lex("crates/x/src/lib.rs", text)
    }

    #[test]
    fn line_comments_are_blanked_but_kept_as_comment_text() {
        let f = lex("let x = 1; // Vec::new() here is commentary\n");
        assert!(!f.lines[0].code.contains("Vec::new"));
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(f.lines[0].comment.as_deref().unwrap().contains("Vec::new"));
    }

    #[test]
    fn doc_comments_are_not_annotation_comments() {
        let f = lex("/// docs with Vec::new()\n//! inner docs\nfn f() {}\n");
        assert!(f.lines[0].comment.is_none());
        assert!(f.lines[1].comment.is_none());
        assert!(!f.lines[0].code.contains("Vec::new"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let f = lex("/* open\n  still /* nested */ inside\n done */ let y = 2;\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].code.trim().is_empty());
        assert_eq!(f.lines[2].code.trim(), "let y = 2;");
    }

    #[test]
    fn string_contents_are_masked_including_comment_markers() {
        let f = lex("let s = \"// not a comment, Vec::new()\"; let t = 1;\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("Vec::new"));
        assert!(!code.contains("//"));
        assert!(code.contains("let t = 1;"));
        assert!(f.lines[0].comment.is_none());
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let f = lex(r#"let s = "a \" b"; let u = 3;"#);
        assert!(f.lines[0].code.contains("let u = 3;"));
        assert!(!f.lines[0].code.contains(" b\""));
    }

    #[test]
    fn raw_strings_span_lines_and_mask_contents() {
        // `r#"…"#` spans three lines; a bare `"` inside does not close
        // it, the `"#` on the last line does.
        let f = lex("let s = r#\"line \"one\"\nVec::new()\n\"#; let v = 4;\n");
        assert!(!f.lines[0].code.contains("one"));
        assert!(!f.lines[1].code.contains("Vec::new"));
        assert!(f.lines[2].code.contains("let v = 4;"));
    }

    #[test]
    fn raw_string_with_more_hashes_ignores_single_hash_close() {
        let f = lex("let s = r##\"has \"# inside\"##; let w = 5;\n");
        assert!(f.lines[0].code.contains("let w = 5;"));
        assert!(!f.lines[0].code.contains("inside"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = lex("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\''; }\n");
        // The brace char literal must not skew depth: the fn body closes.
        assert!(f.lines[0].code.contains("'a"));
        assert!(!f.lines[0].code.contains("'{'"));
        let g = lex("fn g() {}\nfn h() {}\n");
        assert!(!g.lines[1].in_test);
    }

    #[test]
    fn cfg_test_region_is_tracked_by_brace_depth() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x(); }\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_a_use_item_does_not_open_a_region() {
        let f = lex("#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cold_fences_mark_lines_and_must_balance() {
        let marker_begin = ["// tidy", "-cold-region: setup"].concat();
        let marker_end = ["// tidy", "-end-cold-region"].concat();
        let src = format!(
            "fn f() {{\n{marker_begin}\nlet v = alloc();\n{marker_end}\nlet w = hot();\n}}\n"
        );
        let f = lex(&src);
        assert!(f.annotation_diags.is_empty());
        assert!(!f.lines[0].in_cold);
        assert!(f.lines[2].in_cold);
        assert!(f.lines[3].in_cold);
        assert!(!f.lines[4].in_cold);

        let unbalanced = format!("{marker_begin}\nlet v = 1;\n");
        let f = SourceFile::lex("crates/x/src/lib.rs", &unbalanced);
        assert_eq!(f.annotation_diags.len(), 1);
    }

    #[test]
    fn fence_without_reason_is_flagged() {
        let src = [
            "// tidy",
            "-cold-region:\nlet v = 1;\n// tidy",
            "-end-cold-region\n",
        ]
        .concat();
        let f = lex(&src);
        assert_eq!(f.annotation_diags.len(), 1);
    }

    #[test]
    fn allow_attaches_to_own_or_next_code_line() {
        let trailing = ["let x = 1; // tidy", "-allow: determinism (test shim)"].concat();
        let f = lex(&trailing);
        assert_eq!(f.lines[0].allows, vec!["determinism"]);

        let standalone = ["// tidy", "-allow: determinism (test shim)\n\nlet x = 1;\n"].concat();
        let f = lex(&standalone);
        assert!(f.lines[0].allows.is_empty());
        assert_eq!(f.lines[2].allows, vec!["determinism"]);
    }

    #[test]
    fn allow_needs_known_lint_and_reason() {
        let unknown = ["// tidy", "-allow: no-such-lint (why)\nlet x = 1;\n"].concat();
        let f = lex(&unknown);
        assert_eq!(f.annotation_diags.len(), 1);

        let no_reason = ["// tidy", "-allow: determinism\nlet x = 1;\n"].concat();
        let f = lex(&no_reason);
        assert_eq!(f.annotation_diags.len(), 1);

        let dangling = ["// tidy", "-allow: determinism (why)\n"].concat();
        let f = lex(&dangling);
        assert_eq!(f.annotation_diags.len(), 1);
    }
}
