//! The workspace lints clean: the same invariant CI enforces, runnable
//! locally as part of the ordinary test suite. If this fails, either
//! fix the violation or annotate it with a reasoned `tidy-allow`.

use std::path::Path;

use umpa_tidy::{check_workspace, find_workspace_root};

#[test]
fn workspace_is_tidy() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/tidy lives under the workspace root");
    let diags = check_workspace(&root).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "umpa-tidy found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
