//! Per-lint fixture tests: each fixture under `fixtures/` carries a
//! deliberate violation (marked `// BAD`) next to clean, fenced,
//! test-exempt and allow-annotated variants of the same construct. The
//! fixtures are linted as text under virtual workspace paths — they are
//! never compiled, and the workspace walker skips the directory so the
//! self-clean test stays green.

use umpa_tidy::check_source;

/// 1-based line number of the first line containing `needle`, so the
/// assertions track the fixture text instead of hand-counted numbers.
fn line_of(text: &str, needle: &str) -> usize {
    text.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("fixture lost its marker {needle:?}"))
        + 1
}

fn render(diags: &[umpa_tidy::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn hot_path_alloc_fixture() {
    let text = include_str!("../fixtures/hot_alloc.rs");
    let diags = check_source("crates/core/src/greedy.rs", text);
    assert_eq!(diags.len(), 1, "{}", render(&diags));
    assert_eq!(diags[0].lint, "hot-path-alloc");
    assert_eq!(diags[0].line, line_of(text, "vec![0u32; n]"));
}

#[test]
fn hot_path_alloc_only_fires_in_warm_modules() {
    let text = include_str!("../fixtures/hot_alloc.rs");
    let diags = check_source("crates/core/src/metrics.rs", text);
    assert!(
        diags.iter().all(|d| d.lint != "hot-path-alloc"),
        "{}",
        render(&diags)
    );
}

#[test]
fn determinism_fixture() {
    let text = include_str!("../fixtures/determinism.rs");
    let diags = check_source("crates/ds/src/fixture.rs", text);
    assert_eq!(diags.len(), 1, "{}", render(&diags));
    assert_eq!(diags[0].lint, "determinism");
    assert_eq!(
        diags[0].line,
        line_of(text, "use std::collections::HashMap;")
    );
}

#[test]
fn panic_freedom_fixture() {
    let text = include_str!("../fixtures/panic_freedom.rs");
    let diags = check_source("crates/core/src/remap.rs", text);
    assert_eq!(diags.len(), 2, "{}", render(&diags));
    assert!(diags.iter().all(|d| d.lint == "panic-freedom"));
    assert_eq!(diags[0].line, line_of(text, ".unwrap()"));
    assert_eq!(diags[1].line, line_of(text, "table[i]"));
}

#[test]
fn panic_freedom_scopes_the_whole_service_tree() {
    let text = include_str!("../fixtures/panic_freedom.rs");
    // Any file under crates/service/src/ carries the never-panic
    // contract via the trailing-slash prefix entry.
    let diags = check_source("crates/service/src/worker.rs", text);
    assert_eq!(diags.len(), 2, "{}", render(&diags));
    assert!(diags.iter().all(|d| d.lint == "panic-freedom"));
    let diags = check_source("crates/service/src/nested/module.rs", text);
    assert_eq!(diags.len(), 2, "{}", render(&diags));
    // The service's tests tree is not scoped — tests may assert.
    let diags = check_source("crates/service/tests/soak.rs", text);
    assert!(
        diags.iter().all(|d| d.lint != "panic-freedom"),
        "{}",
        render(&diags)
    );
}

#[test]
fn determinism_scopes_the_service_tree() {
    let text = include_str!("../fixtures/determinism.rs");
    let diags = check_source("crates/service/src/supervisor.rs", text);
    assert_eq!(diags.len(), 1, "{}", render(&diags));
    assert_eq!(diags[0].lint, "determinism");
    assert_eq!(
        diags[0].line,
        line_of(text, "use std::collections::HashMap;")
    );
}

#[test]
fn eps_discipline_fixture() {
    let text = include_str!("../fixtures/eps.rs");
    let diags = check_source("crates/core/src/fixture.rs", text);
    assert_eq!(diags.len(), 1, "{}", render(&diags));
    assert_eq!(diags[0].lint, "eps-discipline");
    assert_eq!(diags[0].line, line_of(text, "gain > 1e-9"));
}

#[test]
fn oncelock_fixture_catches_missing_reset() {
    let text = include_str!("../fixtures/oncelock_bad.rs");
    let diags = check_source("crates/topology/src/machine.rs", text);
    assert_eq!(diags.len(), 1, "{}", render(&diags));
    assert_eq!(diags[0].lint, "oncelock-invalidation");
    assert_eq!(diags[0].line, line_of(text, "route_cache: OnceLock<u32>,"));
    assert!(diags[0].msg.contains("route_cache"), "{}", diags[0].msg);
}

#[test]
fn oncelock_fixture_accepts_all_reset_forms() {
    let text = include_str!("../fixtures/oncelock_good.rs");
    let diags = check_source("crates/topology/src/machine.rs", text);
    assert!(diags.is_empty(), "{}", render(&diags));
}

#[test]
fn bad_annotations_are_diagnosed_not_ignored() {
    let text = include_str!("../fixtures/bad_annotation.rs");
    let diags = check_source("crates/analysis/src/fixture.rs", text);
    assert_eq!(diags.len(), 2, "{}", render(&diags));
    assert!(diags.iter().all(|d| d.lint == "bad-annotation"));
    assert_eq!(diags[0].line, line_of(text, "no-such-lint"));
    assert_eq!(diags[1].line, line_of(text, "tidy-allow: determinism"));
}

#[test]
fn frame_parser_fixture_catches_panicking_decode_paths() {
    let text = include_str!("../fixtures/frame_parser.rs");
    // Under the durability subsystem's own path both contracts apply:
    // decode paths must neither panic on torn input nor hash-iterate.
    let diags = check_source("crates/service/src/journal.rs", text);
    assert_eq!(diags.len(), 4, "{}", render(&diags));
    let panics: Vec<_> = diags.iter().filter(|d| d.lint == "panic-freedom").collect();
    assert_eq!(panics.len(), 3, "{}", render(&diags));
    assert_eq!(panics[0].line, line_of(text, ".try_into().unwrap()"));
    assert_eq!(panics[1].line, line_of(text, "bytes[8..8 + len].to_vec()"));
    assert_eq!(panics[2].line, line_of(text, "panic!(\"torn frame\")"));
    let det: Vec<_> = diags.iter().filter(|d| d.lint == "determinism").collect();
    assert_eq!(det.len(), 1, "{}", render(&diags));
    assert_eq!(det[0].line, line_of(text, "HashSet::new()"));
}

#[test]
fn frame_parser_fixture_clean_form_and_tests_pass() {
    let text = include_str!("../fixtures/frame_parser.rs");
    let diags = check_source("crates/service/src/journal.rs", text);
    // Every diagnostic sits in the two BAD functions; the typed-error
    // parser and the #[cfg(test)] assertions are clean.
    let clean_from = line_of(text, "pub fn parse_frame(");
    assert!(
        diags.iter().all(|d| d.line < clean_from),
        "{}",
        render(&diags)
    );
    // Outside the scoped trees the same text is not linted at all.
    let diags = check_source("crates/bench/src/bin/fixture.rs", text);
    assert!(diags.is_empty(), "{}", render(&diags));
}
