// Fixture for the panic-freedom lint. Linted under a virtual
// never-panic path by tests/fixtures.rs; never compiled.

pub fn repair(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap(); // BAD: panicking construct
    *first
}

pub fn arm(v: Option<usize>, table: &[u32]) -> u32 {
    match v {
        Some(i) => table[i], // BAD: match-arm slice index
        None => 0,
    }
}

pub fn checked(xs: &[u32]) -> u32 {
    debug_assert!(!xs.is_empty()); // legal: vanishes in release
    xs.first().copied().unwrap_or(0)
}

pub fn annotated(xs: &[u32]) -> u32 {
    // tidy-allow: panic-freedom (caller validates non-emptiness first)
    xs.first().copied().expect("nonempty")
}
