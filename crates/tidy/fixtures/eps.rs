// Fixture for the eps-discipline lint. Linted under a virtual
// umpa-core path by tests/fixtures.rs; never compiled.

pub fn accept(gain: f64) -> bool {
    gain > 1e-9 // BAD: inline tolerance literal
}

pub fn accept_shared(gain: f64, gain_eps: f64) -> bool {
    gain > gain_eps
}

pub fn scaled(x: f64) -> f64 {
    x * 1e6 // positive exponent: not a tolerance
}

pub fn annotated(x: f64) -> bool {
    // tidy-allow: eps-discipline (unit conversion factor, not an accept tolerance)
    x < 2.5e-3
}
