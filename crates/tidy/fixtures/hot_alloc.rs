// Fixture for the hot-path-alloc lint. Linted under a virtual
// warm-module path by tests/fixtures.rs; never compiled.

pub fn warm(n: usize) -> usize {
    let v = vec![0u32; n]; // BAD: allocation outside any fence
    v.len()
}

// tidy-cold-region: scratch construction happens once per run
pub fn cold() -> Vec<u32> {
    Vec::with_capacity(8)
}
// tidy-end-cold-region

pub fn annotated() -> Vec<u32> {
    // tidy-allow: hot-path-alloc (convenience entry point, measured cold)
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        let _ = vec![1, 2, 3];
    }
}
