// Fixture for the oncelock-invalidation lint: `route_cache` is
// deliberately omitted from every fault-path function. Linted under
// the virtual machine.rs path by tests/fixtures.rs; never compiled.

use std::sync::OnceLock;

pub struct Machine {
    oracle: OnceLock<u32>,
    route_cache: OnceLock<u32>, // BAD: never invalidated below
    inv_bw: OnceLock<u32>,
}

impl Machine {
    pub fn degrade_link(&mut self) {
        if let Some(v) = self.inv_bw.get_mut() {
            *v += 1;
        }
    }

    pub fn rebuild_after_failure_change(&mut self) {
        self.oracle = OnceLock::new();
    }
}
