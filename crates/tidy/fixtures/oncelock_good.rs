// Fixture for the oncelock-invalidation lint: every cache is
// invalidated on some fault-path function, via all three accepted
// forms (reassign, take, get_mut). Never compiled.

use std::sync::OnceLock;

pub struct Machine {
    oracle: OnceLock<u32>,
    route_cache: OnceLock<u32>,
    inv_bw: OnceLock<u32>,
}

impl Machine {
    pub fn degrade_link(&mut self) {
        if let Some(v) = self.inv_bw.get_mut() {
            *v += 1;
        }
    }

    pub fn clear_faults(&mut self) {
        let _ = self.route_cache.take();
    }

    pub fn rebuild_after_failure_change(&mut self) {
        self.oracle = OnceLock::new();
        self.route_cache = OnceLock::new();
    }
}
