// Fixture for annotation-grammar diagnostics. Never compiled.

pub fn unknown_lint() -> u32 {
    // tidy-allow: no-such-lint (misspelled lint names must not silently suppress)
    1
}

pub fn missing_reason() -> u32 {
    // tidy-allow: determinism
    2
}
