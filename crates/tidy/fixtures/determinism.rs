// Fixture for the determinism lint. Linted under a virtual
// deterministic-crate path by tests/fixtures.rs; never compiled.

use std::collections::BTreeMap;
use std::collections::HashMap; // BAD: seeded iteration order

pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

pub fn timed() {
    // tidy-allow: determinism (wall clock feeds reporting only)
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_hash() {
        let _ = HashSet::<u32>::new();
    }
}
