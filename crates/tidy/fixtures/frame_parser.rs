// Fixture: a journal-style length-prefixed frame parser, in the shape
// the durability subsystem's decode paths must NOT take (panicking
// slicing/unwraps, per-process hash state) next to the clean
// typed-error form they must. Linted under the virtual path
// crates/service/src/journal.rs by tests/fixtures.rs; never compiled.

pub enum FrameError {
    Truncated,
    BadChecksum,
}

/// The panicking strawman: every line here is a crash waiting for a
/// torn tail.
pub fn parse_frame_bad(bytes: &[u8]) -> (u64, Vec<u8>) {
    let head: [u8; 4] = bytes[..4].try_into().unwrap(); // BAD: unwrap on torn input
    let len = u32::from_le_bytes(head) as usize;
    match bytes.get(4) {
        Some(_) => (len as u64, bytes[8..8 + len].to_vec()), // BAD: match-arm slice index
        None => panic!("torn frame"), // BAD: panic on corrupt input
    }
}

/// Per-process hash state in a decode path loses replay determinism.
pub fn dedup_seqs_bad(seqs: &[u64]) -> usize {
    let mut seen = std::collections::HashSet::new(); // BAD: seeded iteration order
    seqs.iter().filter(|s| seen.insert(**s)).count()
}

/// The clean form: bounds-checked reads, typed errors, no panics —
/// corrupt bytes come back as `FrameError`, never a crash.
pub fn parse_frame(bytes: &[u8]) -> Result<(u64, Vec<u8>), FrameError> {
    let head = bytes
        .get(..4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .ok_or(FrameError::Truncated)?;
    let len = u32::from_le_bytes(head) as usize;
    let payload = bytes.get(8..8 + len).ok_or(FrameError::Truncated)?;
    let crc = bytes
        .get(4..8)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
        .ok_or(FrameError::Truncated)?;
    if crc == 0 {
        return Err(FrameError::BadChecksum);
    }
    Ok((len as u64, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_input_is_a_typed_error() {
        // Tests are exempt: asserting here is the point.
        assert!(parse_frame(&[1, 0]).is_err());
    }
}
