//! Store-and-forward discrete-event network simulation.
//!
//! Model, per message `(s, t, bytes)` between nodes `Γ(s)` and `Γ(t)`:
//!
//! 1. the sender NIC serializes its outgoing messages FIFO: each costs
//!    `overhead + bytes / nic_bw`;
//! 2. the message hops its static route; every directed link is a FIFO
//!    server with service time `bytes / bw(link)` plus the per-hop
//!    latency (store-and-forward at message granularity);
//! 3. the receiver NIC drains arrivals FIFO at `overhead + bytes /
//!    nic_bw`.
//!
//! Everything is deterministic given the seed; optional multiplicative
//! noise on service times models competing jobs. Contention emerges
//! naturally: messages sharing a link queue behind each other, so the
//! completion time grows with exactly the congestion the MC/MMC metrics
//! count, while per-message overheads make message counts (TH/AMC
//! territory) dominate when messages are small.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_graph::TaskGraph;
use umpa_topology::Machine;

/// Simulator parameters.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// Bytes per unit of task-graph edge volume (a "word"; 8 = f64).
    pub bytes_per_word: f64,
    /// Extra multiplier on message sizes (the paper's 4K / 256K scales).
    pub scale: f64,
    /// Per-message software overhead at each endpoint, µs.
    pub overhead_us: f64,
    /// Relative service-time noise amplitude (uniform ±noise).
    pub noise: f64,
    /// Noise seed (vary per repetition).
    pub seed: u64,
    /// Packet size in bytes for wormhole-style pipelining. `None` =
    /// store-and-forward at message granularity (each hop holds the
    /// whole message). With packets, a long message overlaps its own
    /// hops: makespan ≈ transfer + hops·packet-time instead of
    /// hops·transfer. Chunk count per message is capped at 64 to bound
    /// event counts.
    pub packet_bytes: Option<f64>,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            bytes_per_word: 8.0,
            scale: 1.0,
            overhead_us: 1.0,
            noise: 0.0,
            seed: 0,
            packet_bytes: None,
        }
    }
}

/// Simulation output.
#[derive(Clone, Debug)]
pub struct DesResult {
    /// Time until the last message is drained, µs.
    pub makespan_us: f64,
    /// Number of simulated messages.
    pub messages: usize,
    /// Total bytes moved over the network (excludes node-local pairs).
    pub network_bytes: f64,
}

/// A pending message (or packet chunk) in flight.
struct Msg {
    /// Remaining route (link ids, reversed so `pop` advances).
    route_rev: Vec<u32>,
    bytes: f64,
    /// Endpoint software overhead carried by this chunk (the full
    /// per-message overhead divided across its chunks).
    overhead: f64,
    dst_task: u32,
}

/// FIFO server availability times.
struct Servers {
    free_at: Vec<f64>,
}

impl Servers {
    fn new(n: usize) -> Self {
        Self {
            free_at: vec![0.0; n],
        }
    }

    /// Serves a job arriving at `t` with service time `s`; returns the
    /// completion time.
    fn serve(&mut self, idx: usize, t: f64, s: f64) -> f64 {
        let start = self.free_at[idx].max(t);
        let done = start + s;
        self.free_at[idx] = done;
        done
    }
}

/// Runs the simulation for `tg` under `mapping` (node id per task).
///
/// # Examples
///
/// ```
/// use umpa_graph::TaskGraph;
/// use umpa_netsim::des::{simulate, DesConfig};
/// use umpa_topology::MachineConfig;
///
/// let machine = MachineConfig::small(&[8], 1, 1).build();
/// let tg = TaskGraph::from_messages(2, [(0, 1, 1000.0)], None);
/// let near = simulate(&machine, &tg, &[0, 1], &DesConfig::default());
/// let far = simulate(&machine, &tg, &[0, 4], &DesConfig::default());
/// assert!(far.makespan_us > near.makespan_us);
/// ```
pub fn simulate(machine: &Machine, tg: &TaskGraph, mapping: &[u32], cfg: &DesConfig) -> DesResult {
    assert_eq!(mapping.len(), tg.num_tasks());
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut jitter = move |base: f64| -> f64 {
        if cfg.noise > 0.0 {
            base * (1.0 + rng.gen_range(-cfg.noise..=cfg.noise))
        } else {
            base
        }
    };
    // Collect messages sorted by (sender, receiver) for deterministic
    // NIC queueing (MPI ranks post sends in rank order).
    let mut msgs: Vec<(u32, u32, f64)> = tg.messages().collect();
    msgs.sort_unstable_by_key(|a| (a.0, a.1));
    // Injection/drain serialize per MPI *process* (Gemini FMA gives each
    // process its own injection pipeline; the shared HT link is far
    // faster than the torus links, so the torus — not the NIC — is the
    // modelled bottleneck, matching the paper's observed behaviour).
    let mut send_nic = Servers::new(tg.num_tasks());
    let mut recv_nic = Servers::new(tg.num_tasks());
    let mut links = Servers::new(machine.num_links());
    let nic_bw = machine.nic_bw() * 1000.0; // bytes per µs
    let hop_lat = machine.hop_latency_us();
    let base_lat = machine.base_latency_us();
    // Event queue keyed by time; (time, seq) gives deterministic order.
    let mut queue: std::collections::BinaryHeap<QEntry> = std::collections::BinaryHeap::new();
    let mut seq = 0u64;
    let mut pool: Vec<Msg> = Vec::with_capacity(msgs.len());
    let mut network_bytes = 0.0;
    for &(s, t, vol) in &msgs {
        let bytes = vol * cfg.bytes_per_word * cfg.scale;
        let (a, b) = (mapping[s as usize], mapping[t as usize]);
        let mut route = Vec::new();
        machine.route_links(a, b, &mut route);
        if !route.is_empty() {
            network_bytes += bytes;
        }
        route.reverse();
        // Wormhole-style chunking: split into packets so a message can
        // overlap its own hops. Overhead is amortized over chunks.
        let chunks = match cfg.packet_bytes {
            Some(p) if p > 0.0 && bytes > p => ((bytes / p).ceil() as usize).min(64),
            _ => 1,
        };
        let chunk_bytes = bytes / chunks as f64;
        let chunk_overhead = cfg.overhead_us / chunks as f64;
        for _ in 0..chunks {
            // Sender serialization (same-node messages skip the network
            // but still pay the software overhead on both ends).
            let inj = jitter(chunk_overhead + chunk_bytes / nic_bw);
            let ready = send_nic.serve(s as usize, 0.0, inj) + base_lat;
            let id = pool.len();
            pool.push(Msg {
                route_rev: route.clone(),
                bytes: chunk_bytes,
                overhead: chunk_overhead,
                dst_task: t,
            });
            queue.push(QEntry {
                time: ready,
                seq,
                msg: id,
            });
            seq += 1;
        }
    }
    let mut makespan = 0.0f64;
    while let Some(QEntry { time, msg, .. }) = queue.pop() {
        let next_link = pool[msg].route_rev.pop();
        match next_link {
            Some(l) => {
                let bw = machine.link_bandwidth(l) * 1000.0; // bytes/µs
                let service = jitter(pool[msg].bytes / bw + hop_lat);
                let done = links.serve(l as usize, time, service);
                queue.push(QEntry {
                    time: done,
                    seq,
                    msg,
                });
                seq += 1;
            }
            None => {
                // Arrived: the receiving process drains it. Chunked
                // messages pay the amortized per-chunk overhead so the
                // total per-message overhead is preserved.
                let drain = jitter(pool[msg].overhead + pool[msg].bytes / nic_bw);
                let done = recv_nic.serve(pool[msg].dst_task as usize, time, drain);
                makespan = makespan.max(done);
            }
        }
    }
    DesResult {
        makespan_us: makespan,
        messages: msgs.len(),
        network_bytes,
    }
}

/// Min-heap entry ordered by `(time, seq)`.
struct QEntry {
    time: f64,
    seq: u64,
    msg: usize,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::MachineConfig;

    fn machine() -> Machine {
        MachineConfig::small(&[8], 1, 1).build()
    }

    #[test]
    fn empty_graph_takes_no_time() {
        let m = machine();
        let tg = TaskGraph::from_messages(2, [], None);
        let r = simulate(&m, &tg, &[0, 1], &DesConfig::default());
        assert_eq!(r.makespan_us, 0.0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn single_message_time_decomposes() {
        let m = machine();
        let tg = TaskGraph::from_messages(2, [(0, 1, 100.0)], None);
        let cfg = DesConfig::default();
        let r = simulate(&m, &tg, &[0, 1], &cfg);
        let bytes = 100.0 * 8.0;
        let nic = m.nic_bw() * 1000.0;
        let expect = (cfg.overhead_us + bytes / nic) // inject
            + m.base_latency_us()
            + (bytes / (m.link_bandwidth(0) * 1000.0) + m.hop_latency_us())
            + (cfg.overhead_us + bytes / nic); // drain
        assert!(
            (r.makespan_us - expect).abs() < 1e-9,
            "got {} want {expect}",
            r.makespan_us
        );
        assert_eq!(r.network_bytes, bytes);
    }

    #[test]
    fn farther_placement_takes_longer() {
        let m = machine();
        let tg = TaskGraph::from_messages(2, [(0, 1, 1000.0)], None);
        let near = simulate(&m, &tg, &[0, 1], &DesConfig::default()).makespan_us;
        let far = simulate(&m, &tg, &[0, 4], &DesConfig::default()).makespan_us;
        assert!(far > near);
    }

    #[test]
    fn contention_slows_shared_links() {
        let m = machine();
        // Two bulky messages; placements that share a link vs. disjoint.
        let tg = TaskGraph::from_messages(4, [(0, 1, 50_000.0), (2, 3, 50_000.0)], None);
        let disjoint = simulate(&m, &tg, &[0, 1, 4, 5], &DesConfig::default()).makespan_us;
        // 0->1->2 and 1->2->3 share link 1->2? Place both flows across
        // the same link: (0 -> 2) and (1 -> 2)? Use: tasks at 0,2 and 1,2
        // not allowed (capacity). Flows 0->2 (via 1) and 1->3 (via 2):
        // share link 1->2.
        let shared = simulate(&m, &tg, &[0, 2, 1, 3], &DesConfig::default()).makespan_us;
        assert!(
            shared > disjoint,
            "shared {shared} should exceed disjoint {disjoint}"
        );
    }

    #[test]
    fn message_count_dominates_when_tiny() {
        let m = machine();
        // 10 tiny messages from one sender vs 1 tiny message: sender
        // overhead serializes.
        let many = TaskGraph::from_messages(11, (1..=10u32).map(|i| (0, i, 1.0)), None);
        let one = TaskGraph::from_messages(2, [(0, 1, 10.0)], None);
        let map_many: Vec<u32> = (0..11u32).map(|i| i % 8).collect();
        let t_many = simulate(&m, &many, &map_many, &DesConfig::default()).makespan_us;
        let t_one = simulate(&m, &one, &[0, 1], &DesConfig::default()).makespan_us;
        // 10 injections serialize at ≈1 µs overhead each, while the
        // single message pays ≈3.3 µs total — expect ≳3× separation.
        assert!(t_many > 3.0 * t_one, "many-small {t_many} vs one {t_one}");
    }

    #[test]
    fn colocated_messages_skip_the_network() {
        let m = MachineConfig::small(&[4], 2, 2).build();
        let tg = TaskGraph::from_messages(2, [(0, 1, 1000.0)], None);
        let r = simulate(&m, &tg, &[0, 1], &DesConfig::default());
        assert_eq!(r.network_bytes, 0.0);
        assert!(r.makespan_us > 0.0); // still pays overheads
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let m = machine();
        let tg = TaskGraph::from_messages(3, [(0, 1, 500.0), (1, 2, 500.0)], None);
        let cfg = DesConfig {
            noise: 0.05,
            seed: 9,
            ..DesConfig::default()
        };
        let a = simulate(&m, &tg, &[0, 1, 2], &cfg).makespan_us;
        let b = simulate(&m, &tg, &[0, 1, 2], &cfg).makespan_us;
        assert_eq!(a, b);
        let clean = simulate(&m, &tg, &[0, 1, 2], &DesConfig::default()).makespan_us;
        assert!((a - clean).abs() / clean < 0.15);
    }

    #[test]
    fn packet_pipelining_overlaps_hops() {
        let m = machine();
        // One large message over a 4-hop route: store-and-forward pays
        // 4 full transfers; wormhole chunks overlap them.
        let tg = TaskGraph::from_messages(2, [(0, 1, 100_000.0)], None);
        let saf = simulate(&m, &tg, &[0, 4], &DesConfig::default()).makespan_us;
        let worm = simulate(
            &m,
            &tg,
            &[0, 4],
            &DesConfig {
                packet_bytes: Some(100_000.0 * 8.0 / 32.0),
                ..DesConfig::default()
            },
        )
        .makespan_us;
        assert!(
            worm < 0.5 * saf,
            "wormhole {worm} should be well under store-and-forward {saf}"
        );
    }

    #[test]
    fn packet_mode_preserves_total_overhead_for_small_messages() {
        let m = machine();
        // Messages smaller than the packet size must behave identically.
        let tg = TaskGraph::from_messages(2, [(0, 1, 10.0)], None);
        let a = simulate(&m, &tg, &[0, 2], &DesConfig::default()).makespan_us;
        let b = simulate(
            &m,
            &tg,
            &[0, 2],
            &DesConfig {
                packet_bytes: Some(1_000_000.0),
                ..DesConfig::default()
            },
        )
        .makespan_us;
        assert_eq!(a, b);
    }

    #[test]
    fn scale_multiplies_volume_effects() {
        let m = machine();
        let tg = TaskGraph::from_messages(2, [(0, 1, 1000.0)], None);
        let small = simulate(&m, &tg, &[0, 4], &DesConfig::default()).makespan_us;
        let big = simulate(
            &m,
            &tg,
            &[0, 4],
            &DesConfig {
                scale: 64.0,
                ..DesConfig::default()
            },
        )
        .makespan_us;
        assert!(big > 10.0 * small);
    }
}
