//! Fast α–β contention bound on the communication time.
//!
//! Used by parameter sweeps where the event-driven simulator would be
//! too slow. The bound combines the three budget terms any BSP-style
//! exchange must pay:
//!
//! * the most congested link must move all its traffic:
//!   `max_e traffic(e)/bw(e)` — the `MC` metric in seconds;
//! * every NIC must inject/drain its bytes and pay per-message
//!   overhead;
//! * the longest route's latency.
//!
//! The max of those plus the overhead term tracks the DES results
//! closely on both volume-bound and message-bound patterns.

use umpa_graph::TaskGraph;
use umpa_topology::Machine;

use crate::des::DesConfig;

/// Reconstructs the per-channel byte loads of a mapped task graph by
/// routing every message along the machine's static route — the link
/// picture the DES and the analytic bound share. `loads[l]` is the
/// bytes crossing channel `l`, i.e. `cfg.bytes_per_word × cfg.scale`
/// times the volume traffic `umpa_core::metrics` accounts to the same
/// link — the identity `tests/simulator.rs` cross-checks for direct
/// and multilevel mappings alike.
pub fn link_loads(machine: &Machine, tg: &TaskGraph, mapping: &[u32], cfg: &DesConfig) -> Vec<f64> {
    assert_eq!(mapping.len(), tg.num_tasks());
    let mut traffic = vec![0.0f64; machine.num_links()];
    let mut links: Vec<u32> = Vec::new();
    for (s, t, vol) in tg.messages() {
        let bytes = vol * cfg.bytes_per_word * cfg.scale;
        let (a, b) = (mapping[s as usize], mapping[t as usize]);
        links.clear();
        machine.route_links(a, b, &mut links);
        for &l in &links {
            traffic[l as usize] += bytes;
        }
    }
    traffic
}

/// Lower-bound estimate of the comm-phase time in µs.
pub fn analytic_comm_time(
    machine: &Machine,
    tg: &TaskGraph,
    mapping: &[u32],
    cfg: &DesConfig,
) -> f64 {
    assert_eq!(mapping.len(), tg.num_tasks());
    let nl = machine.num_links();
    let nt = tg.num_tasks();
    let traffic = link_loads(machine, tg, mapping, cfg);
    // Per-task injection/drain (matching the DES endpoint model).
    let mut task_send = vec![0.0f64; nt];
    let mut task_recv = vec![0.0f64; nt];
    let mut task_send_msgs = vec![0u32; nt];
    let mut task_recv_msgs = vec![0u32; nt];
    let mut max_hops = 0u32;
    for (s, t, vol) in tg.messages() {
        let bytes = vol * cfg.bytes_per_word * cfg.scale;
        let (a, b) = (mapping[s as usize], mapping[t as usize]);
        task_send[s as usize] += bytes;
        task_recv[t as usize] += bytes;
        task_send_msgs[s as usize] += 1;
        task_recv_msgs[t as usize] += 1;
        max_hops = max_hops.max(machine.hops(a, b));
    }
    let link_term = (0..nl)
        .map(|l| traffic[l] / (machine.link_bandwidth(l as u32) * 1000.0))
        .fold(0.0f64, f64::max);
    let nic_bw = machine.nic_bw() * 1000.0;
    let nic_term = (0..nt)
        .map(|n| {
            (task_send[n] / nic_bw + cfg.overhead_us * f64::from(task_send_msgs[n]))
                .max(task_recv[n] / nic_bw + cfg.overhead_us * f64::from(task_recv_msgs[n]))
        })
        .fold(0.0f64, f64::max);
    let latency_term = machine.path_latency_us(max_hops);
    link_term.max(nic_term) + latency_term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate;
    use umpa_topology::MachineConfig;

    #[test]
    fn bounds_the_des_from_below_approximately() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let tg = TaskGraph::from_messages(
            6,
            [
                (0, 3, 4000.0),
                (1, 4, 4000.0),
                (2, 5, 4000.0),
                (3, 0, 1000.0),
            ],
            None,
        );
        let mapping: Vec<u32> = (0..6).collect();
        let cfg = DesConfig::default();
        let a = analytic_comm_time(&m, &tg, &mapping, &cfg);
        let d = simulate(&m, &tg, &mapping, &cfg).makespan_us;
        assert!(a <= d * 1.05, "analytic {a} should not exceed DES {d}");
        assert!(a >= d * 0.2, "analytic {a} too loose vs DES {d}");
    }

    #[test]
    fn ranks_congested_placements_worse() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let tg = TaskGraph::from_messages(4, [(0, 1, 50_000.0), (2, 3, 50_000.0)], None);
        let cfg = DesConfig::default();
        let disjoint = analytic_comm_time(&m, &tg, &[0, 1, 4, 5], &cfg);
        let shared = analytic_comm_time(&m, &tg, &[0, 2, 1, 3], &cfg);
        assert!(shared > disjoint);
    }

    #[test]
    fn empty_pattern_costs_only_base_latency() {
        let m = MachineConfig::small(&[4], 1, 1).build();
        let tg = TaskGraph::from_messages(2, [], None);
        let t = analytic_comm_time(&m, &tg, &[0, 1], &DesConfig::default());
        assert!((t - m.path_latency_us(0)).abs() < 1e-9);
    }
}
