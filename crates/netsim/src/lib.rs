//! `umpa-netsim` — the execution substrate standing in for Hopper runs.
//!
//! The paper measures two applications on the real machine: a synthetic
//! **communication-only** kernel ("all the transfers are initialized at
//! the same time where each processor follows the pattern in the
//! corresponding communication graph", Section IV-C) and a **Trilinos
//! SpMV** (Section IV-D). Neither a Cray XE6 nor MPI is available here,
//! so this crate simulates both on the modelled torus:
//!
//! * [`des`] — a deterministic store-and-forward **discrete-event
//!   simulator**: every message is serialized by its sender NIC, then
//!   traverses its static route link by link, queueing FIFO behind
//!   other messages on each link (contention!), and is finally drained
//!   by the receiver NIC. Per-message overheads make many-small-message
//!   patterns latency-bound while large volumes are bandwidth-bound —
//!   the two regimes the paper's regression analysis distinguishes;
//! * [`analytic`] — a fast α–β contention bound used for quick sweeps;
//! * [`apps`] — the two applications: `comm_only` (with the paper's
//!   message-size scaling) and `spmv` (compute + comm per iteration,
//!   repeated);
//! * noise injection emulates "outside factors (e.g., network traffic
//!   and overhead from competing jobs)".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod apps;
pub mod des;

pub use analytic::{analytic_comm_time, link_loads};
pub use apps::{comm_only_time, spmv_time, AppConfig};
pub use des::{DesConfig, DesResult};

/// Commonly used items.
pub mod prelude {
    pub use crate::analytic::{analytic_comm_time, link_loads};
    pub use crate::apps::{comm_only_time, spmv_time, AppConfig};
    pub use crate::des::{simulate, DesConfig, DesResult};
}
