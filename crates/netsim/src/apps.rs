//! The two applications of the paper's evaluation.
//!
//! * [`comm_only_time`] — Section IV-C's synthetic kernel: "no
//!   computation is performed, and all the transfers are initialized at
//!   the same time"; message sizes are scaled (the paper uses 4K for
//!   cage15 and 256K for rgg) and each configuration is repeated to
//!   average out noise;
//! * [`spmv_time`] — Section IV-D's Tpetra-style SpMV: per iteration,
//!   every node computes on its rows (time ∝ local nonzeros) and then
//!   the expand communication runs; the pattern is iteration-invariant,
//!   so one simulated exchange is scaled by the iteration count.

use umpa_graph::TaskGraph;
use umpa_topology::Machine;

use crate::des::{simulate, DesConfig};

/// Application-level simulation parameters.
#[derive(Clone, Debug)]
pub struct AppConfig {
    /// Network-level simulation parameters.
    pub des: DesConfig,
    /// Repetitions (the paper runs each configuration 5 times).
    pub repetitions: u32,
    /// Compute speed for SpMV: µs per nonzero on one processor.
    pub us_per_nnz: f64,
}

impl Default for AppConfig {
    fn default() -> Self {
        Self {
            des: DesConfig::default(),
            repetitions: 5,
            us_per_nnz: 2.0e-3,
        }
    }
}

/// Statistics over repetitions.
#[derive(Clone, Copy, Debug)]
pub struct TimeStats {
    /// Mean time, µs.
    pub mean_us: f64,
    /// Standard deviation, µs.
    pub std_us: f64,
}

fn stats(samples: &[f64]) -> TimeStats {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    TimeStats {
        mean_us: mean,
        std_us: var.sqrt(),
    }
}

/// Simulates the communication-only application; returns mean/std over
/// the configured repetitions (each with a distinct noise seed).
pub fn comm_only_time(
    machine: &Machine,
    tg: &TaskGraph,
    mapping: &[u32],
    cfg: &AppConfig,
) -> TimeStats {
    let samples: Vec<f64> = (0..cfg.repetitions.max(1))
        .map(|rep| {
            let des = DesConfig {
                seed: cfg.des.seed.wrapping_add(u64::from(rep)),
                ..cfg.des.clone()
            };
            simulate(machine, tg, mapping, &des).makespan_us
        })
        .collect();
    stats(&samples)
}

/// Simulates `iterations` of SpMV; `task_loads[t]` is the nonzero count
/// of task `t`'s rows. Per iteration the slowest node's compute time
/// (its tasks share the node's processors but each processor runs one
/// task, so the node's compute time is its *max* task load) adds to the
/// communication makespan.
pub fn spmv_time(
    machine: &Machine,
    tg: &TaskGraph,
    mapping: &[u32],
    task_loads: &[f64],
    iterations: u32,
    cfg: &AppConfig,
) -> TimeStats {
    assert_eq!(task_loads.len(), tg.num_tasks());
    // Max task load per node: tasks on one node run on distinct cores.
    let mut node_compute = vec![0.0f64; machine.num_nodes()];
    for (t, &node) in mapping.iter().enumerate() {
        let c = task_loads[t] * cfg.us_per_nnz;
        let slot = &mut node_compute[node as usize];
        *slot = slot.max(c);
    }
    let compute = node_compute.iter().cloned().fold(0.0f64, f64::max);
    let samples: Vec<f64> = (0..cfg.repetitions.max(1))
        .map(|rep| {
            let des = DesConfig {
                seed: cfg.des.seed.wrapping_add(u64::from(rep)),
                ..cfg.des.clone()
            };
            let comm = simulate(machine, tg, mapping, &des).makespan_us;
            f64::from(iterations) * (compute + comm)
        })
        .collect();
    stats(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::MachineConfig;

    fn setup() -> (Machine, TaskGraph, Vec<u32>) {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let tg =
            TaskGraph::from_messages(4, [(0, 1, 1000.0), (1, 2, 1000.0), (2, 3, 1000.0)], None);
        (m, tg, vec![0, 1, 2, 3])
    }

    #[test]
    fn comm_only_averages_repetitions() {
        let (m, tg, mapping) = setup();
        let mut cfg = AppConfig::default();
        cfg.des.noise = 0.05;
        let s = comm_only_time(&m, &tg, &mapping, &cfg);
        assert!(s.mean_us > 0.0);
        assert!(s.std_us > 0.0, "noise should produce variance");
        assert!(s.std_us < 0.2 * s.mean_us);
    }

    #[test]
    fn zero_noise_has_zero_std() {
        let (m, tg, mapping) = setup();
        let s = comm_only_time(&m, &tg, &mapping, &AppConfig::default());
        assert_eq!(s.std_us, 0.0);
    }

    #[test]
    fn spmv_scales_with_iterations() {
        let (m, tg, mapping) = setup();
        let loads = vec![5000.0; 4];
        let cfg = AppConfig::default();
        let t100 = spmv_time(&m, &tg, &mapping, &loads, 100, &cfg);
        let t500 = spmv_time(&m, &tg, &mapping, &loads, 500, &cfg);
        assert!((t500.mean_us / t100.mean_us - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spmv_includes_compute_term() {
        let (m, tg, mapping) = setup();
        let cfg = AppConfig::default();
        let light = spmv_time(&m, &tg, &mapping, &[0.0; 4], 10, &cfg);
        let heavy = spmv_time(&m, &tg, &mapping, &[1.0e6; 4], 10, &cfg);
        assert!(heavy.mean_us > light.mean_us + 10.0 * 1.0e6 * cfg.us_per_nnz * 0.99);
    }

    #[test]
    fn better_mapping_gives_faster_comm_only() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let tg = TaskGraph::from_messages(
            4,
            [(0, 1, 50_000.0), (1, 2, 50_000.0), (2, 3, 50_000.0)],
            None,
        );
        let cfg = AppConfig::default();
        let chain = comm_only_time(&m, &tg, &[0, 1, 2, 3], &cfg);
        let spread = comm_only_time(&m, &tg, &[0, 4, 1, 5], &cfg);
        assert!(chain.mean_us < spread.mean_us);
    }
}
