//! Flat slot→item buckets with O(1) move and zero steady-state
//! allocation.
//!
//! The refinement algorithms maintain "which tasks live on each
//! allocation slot" and move tasks between slots thousands of times per
//! run. The obvious `Vec<Vec<u32>>` representation allocates one vector
//! per slot per run and pays O(k) `retain` on every departure. A
//! [`SlotBuckets`] stores the same relation as three flat arrays — an
//! intrusive doubly-linked list per slot over a shared `next`/`prev`
//! pool — so `insert`, `remove` and `move` are O(1), iteration order
//! matches `Vec::push` order (append at tail), and a warm instance is
//! reused across runs without touching the allocator.

/// Sentinel for "no item / no slot".
const NONE: u32 = u32::MAX;

/// Buckets of items `0..num_items` over slots `0..num_slots`.
///
/// Each item lives in at most one bucket. Iteration yields items in
/// insertion (tail-append) order, matching the `Vec<Vec<_>>` semantics
/// the mapping algorithms were written against.
///
/// # Examples
///
/// ```
/// use umpa_ds::SlotBuckets;
/// let mut b = SlotBuckets::new();
/// b.reset(2, 4);
/// b.insert(0, 3);
/// b.insert(0, 1);
/// b.insert(1, 2);
/// assert_eq!(b.iter(0).collect::<Vec<_>>(), vec![3, 1]);
/// b.remove(0, 3);
/// b.insert(1, 3);
/// assert_eq!(b.iter(1).collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlotBuckets {
    head: Vec<u32>,
    tail: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Slot currently holding each item (`NONE` = unplaced).
    slot_of: Vec<u32>,
}

impl SlotBuckets {
    /// Creates an empty registry; call [`reset`](Self::reset) to size it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all buckets and sizes the registry for `num_slots` slots
    /// and `num_items` items, reusing allocations when large enough.
    /// O(num_slots + num_items), allocation-free once warm.
    pub fn reset(&mut self, num_slots: usize, num_items: usize) {
        self.head.clear();
        self.head.resize(num_slots, NONE);
        self.tail.clear();
        self.tail.resize(num_slots, NONE);
        self.next.clear();
        self.next.resize(num_items, NONE);
        self.prev.clear();
        self.prev.resize(num_items, NONE);
        self.slot_of.clear();
        self.slot_of.resize(num_items, NONE);
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.head.len()
    }

    /// Number of addressable items.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.slot_of.len()
    }

    /// The slot currently holding `item`, if any.
    #[inline]
    pub fn slot_of(&self, item: u32) -> Option<u32> {
        let s = self.slot_of[item as usize];
        (s != NONE).then_some(s)
    }

    /// Appends `item` to `slot`'s bucket. Panics if already placed.
    pub fn insert(&mut self, slot: usize, item: u32) {
        let i = item as usize;
        assert_eq!(
            self.slot_of[i], NONE,
            "SlotBuckets::insert: item {item} already placed"
        );
        self.slot_of[i] = slot as u32;
        self.next[i] = NONE;
        let t = self.tail[slot];
        self.prev[i] = t;
        if t == NONE {
            self.head[slot] = item;
        } else {
            self.next[t as usize] = item;
        }
        self.tail[slot] = item;
    }

    /// Unlinks `item` from `slot`'s bucket in O(1). Panics if `item` is
    /// not in that bucket.
    pub fn remove(&mut self, slot: usize, item: u32) {
        let i = item as usize;
        assert_eq!(
            self.slot_of[i], slot as u32,
            "SlotBuckets::remove: item {item} not on slot {slot}"
        );
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NONE {
            self.head[slot] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail[slot] = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.slot_of[i] = NONE;
        self.next[i] = NONE;
        self.prev[i] = NONE;
    }

    /// Moves `item` from `from` to the tail of `to` in O(1).
    pub fn relocate(&mut self, from: usize, to: usize, item: u32) {
        self.remove(from, item);
        self.insert(to, item);
    }

    /// Items in `slot`, in insertion order.
    pub fn iter(&self, slot: usize) -> SlotIter<'_> {
        SlotIter {
            buckets: self,
            at: self.head[slot],
        }
    }

    /// Copies `slot`'s items into `out` (cleared first) — for scans that
    /// mutate the registry mid-iteration. Allocation-free once `out` is
    /// warm.
    pub fn collect_into(&self, slot: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.iter(slot));
    }

    /// Number of items in `slot` (O(k)).
    pub fn len_of(&self, slot: usize) -> usize {
        self.iter(slot).count()
    }
}

/// Iterator over one bucket's items.
pub struct SlotIter<'a> {
    buckets: &'a SlotBuckets,
    at: u32,
}

impl Iterator for SlotIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.at == NONE {
            return None;
        }
        let item = self.at;
        self.at = self.buckets.next[item as usize];
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_preserves_push_order() {
        let mut b = SlotBuckets::new();
        b.reset(3, 6);
        for item in [5, 0, 3] {
            b.insert(1, item);
        }
        assert_eq!(b.iter(1).collect::<Vec<_>>(), vec![5, 0, 3]);
        assert_eq!(b.iter(0).count(), 0);
        assert_eq!(b.len_of(1), 3);
    }

    #[test]
    fn remove_head_middle_tail() {
        let mut b = SlotBuckets::new();
        b.reset(1, 5);
        for item in 0..5 {
            b.insert(0, item);
        }
        b.remove(0, 0); // head
        b.remove(0, 2); // middle
        b.remove(0, 4); // tail
        assert_eq!(b.iter(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(b.slot_of(0), None);
        assert_eq!(b.slot_of(1), Some(0));
    }

    #[test]
    fn relocate_appends_at_destination_tail() {
        let mut b = SlotBuckets::new();
        b.reset(2, 4);
        b.insert(0, 0);
        b.insert(0, 1);
        b.insert(1, 2);
        b.relocate(0, 1, 0);
        assert_eq!(b.iter(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.iter(1).collect::<Vec<_>>(), vec![2, 0]);
    }

    #[test]
    fn reset_reuses_and_resizes() {
        let mut b = SlotBuckets::new();
        b.reset(2, 3);
        b.insert(0, 2);
        b.reset(4, 8);
        assert_eq!(b.num_slots(), 4);
        assert_eq!(b.num_items(), 8);
        assert_eq!(b.slot_of(2), None);
        b.insert(3, 7);
        assert_eq!(b.iter(3).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn collect_into_reuses_buffer() {
        let mut b = SlotBuckets::new();
        b.reset(1, 3);
        b.insert(0, 1);
        b.insert(0, 2);
        let mut buf = vec![9, 9, 9, 9];
        b.collect_into(0, &mut buf);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_insert_panics() {
        let mut b = SlotBuckets::new();
        b.reset(2, 2);
        b.insert(0, 1);
        b.insert(1, 1);
    }

    #[test]
    fn model_check_against_vec_of_vecs() {
        // Deterministic op soup vs the reference representation.
        let (slots, items) = (4usize, 16u32);
        let mut b = SlotBuckets::new();
        b.reset(slots, items as usize);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); slots];
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..2000 {
            let item = (rnd() as u32) % items;
            let to = rnd() % slots;
            match b.slot_of(item) {
                None => {
                    b.insert(to, item);
                    model[to].push(item);
                }
                Some(from) => {
                    b.relocate(from as usize, to, item);
                    model[from as usize].retain(|&x| x != item);
                    model[to].push(item);
                }
            }
            for (s, expected) in model.iter().enumerate() {
                assert_eq!(b.iter(s).collect::<Vec<_>>(), *expected);
            }
        }
    }
}
