//! `umpa-ds` — low-level data structures shared by the mapping algorithms.
//!
//! The three algorithms of the paper are heap-driven:
//!
//! * Algorithm 1 keeps the task→mapped-set connectivity in a max-heap
//!   (`conn`) with *increase-key* updates,
//! * Algorithm 2 keeps per-task incurred weighted hops in a max-heap
//!   (`whHeap`) with arbitrary key updates,
//! * Algorithm 3 keeps per-link congestion in a max-heap (`congHeap`)
//!   whose keys are virtually perturbed and rolled back while probing
//!   candidate swaps.
//!
//! All of those need an **indexed** binary heap: `O(log n)` push/pop and
//! `O(log n)` change-key addressed by a dense integer id. That structure
//! is [`IndexedMaxHeap`]. The crate also provides a fixed-capacity bitset
//! ([`FixedBitSet`]), an epoch-stamped visit marker ([`EpochMarker`]) that
//! lets BFS workspaces be reused without `O(n)` clears, flat slot→task
//! buckets with O(1) moves ([`SlotBuckets`]) backing the refinement
//! algorithms' residency tracking, and a [`UnionFind`] used by
//! matching/component code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod epoch;
pub mod heap;
pub mod slots;
pub mod unionfind;

pub use bitset::FixedBitSet;
pub use epoch::EpochMarker;
pub use heap::IndexedMaxHeap;
pub use slots::SlotBuckets;
pub use unionfind::UnionFind;
