//! Epoch-stamped visit markers.
//!
//! The mapping algorithms run thousands of BFS traversals over the same
//! machine graph (one per `GETBESTNODE` call, one per refinement swap
//! probe). Clearing a `visited: Vec<bool>` between traversals would cost
//! `O(|Vm|)` each time and dominate the run. An [`EpochMarker`] instead
//! stamps entries with a generation counter: bumping the generation
//! invalidates every mark in `O(1)`.

/// Reusable `O(1)`-reset visited marker for ids `0..len`.
#[derive(Clone, Debug)]
pub struct EpochMarker {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochMarker {
    /// Creates a marker for ids `0..len`, all unmarked.
    pub fn new(len: usize) -> Self {
        Self {
            stamp: vec![0; len],
            epoch: 1,
        }
    }

    /// Number of addressable ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the marker has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Unmarks everything in `O(1)` (amortized; a wraparound triggers a
    /// full clear once every `u32::MAX` resets).
    pub fn reset(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Marks `id`; returns whether it was already marked this epoch.
    #[inline]
    pub fn mark(&mut self, id: usize) -> bool {
        let was = self.stamp[id] == self.epoch;
        self.stamp[id] = self.epoch;
        was
    }

    /// Whether `id` is marked in the current epoch.
    #[inline]
    pub fn is_marked(&self, id: usize) -> bool {
        self.stamp[id] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut m = EpochMarker::new(10);
        assert!(!m.mark(3));
        assert!(m.mark(3));
        assert!(m.is_marked(3));
        assert!(!m.is_marked(4));
    }

    #[test]
    fn reset_clears_in_constant_time() {
        let mut m = EpochMarker::new(5);
        m.mark(0);
        m.mark(4);
        m.reset();
        assert!(!m.is_marked(0));
        assert!(!m.is_marked(4));
        assert!(!m.mark(0));
    }

    #[test]
    fn survives_many_resets() {
        let mut m = EpochMarker::new(2);
        for _ in 0..10_000 {
            m.mark(1);
            m.reset();
        }
        assert!(!m.is_marked(1));
    }
}
