//! Epoch-stamped visit markers.
//!
//! The mapping algorithms run thousands of BFS traversals over the same
//! machine graph (one per `GETBESTNODE` call, one per refinement swap
//! probe). Clearing a `visited: Vec<bool>` between traversals would cost
//! `O(|Vm|)` each time and dominate the run. An [`EpochMarker`] instead
//! stamps entries with a generation counter: bumping the generation
//! invalidates every mark in `O(1)`.

/// Reusable `O(1)`-reset visited marker for ids `0..len`.
#[derive(Clone, Debug)]
pub struct EpochMarker {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Default for EpochMarker {
    /// A zero-capacity marker; grow it with
    /// [`ensure_len`](Self::ensure_len).
    fn default() -> Self {
        Self::new(0)
    }
}

impl EpochMarker {
    /// Creates a marker for ids `0..len`, all unmarked.
    pub fn new(len: usize) -> Self {
        Self {
            stamp: vec![0; len],
            epoch: 1,
        }
    }

    /// Number of addressable ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the marker has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Unmarks everything in `O(1)` (amortized; a wraparound triggers a
    /// full clear once every `u32::MAX` resets).
    pub fn reset(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Grows the marker to cover ids `0..len` (never shrinks), keeping
    /// current marks. New ids arrive unmarked: stamps start at 0 and the
    /// epoch is always ≥ 1.
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.stamp.len() {
            self.stamp.resize(len, 0);
        }
    }

    /// Test-only override of the internal epoch counter, so the
    /// `u32::MAX` wraparound path is reachable without four billion
    /// `reset` calls. Existing marks at the old epoch are invalidated
    /// unless the new epoch equals it.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        assert!(epoch >= 1, "epoch 0 would alias freshly zeroed stamps");
        self.epoch = epoch;
    }

    /// Marks `id`; returns whether it was already marked this epoch.
    #[inline]
    pub fn mark(&mut self, id: usize) -> bool {
        let was = self.stamp[id] == self.epoch;
        self.stamp[id] = self.epoch;
        was
    }

    /// Whether `id` is marked in the current epoch.
    #[inline]
    pub fn is_marked(&self, id: usize) -> bool {
        self.stamp[id] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut m = EpochMarker::new(10);
        assert!(!m.mark(3));
        assert!(m.mark(3));
        assert!(m.is_marked(3));
        assert!(!m.is_marked(4));
    }

    #[test]
    fn reset_clears_in_constant_time() {
        let mut m = EpochMarker::new(5);
        m.mark(0);
        m.mark(4);
        m.reset();
        assert!(!m.is_marked(0));
        assert!(!m.is_marked(4));
        assert!(!m.mark(0));
    }

    #[test]
    fn wraparound_triggers_the_full_clear() {
        // Regression for the documented u32::MAX wraparound: `reset`
        // must fall back to a full clear so stale stamps from ancient
        // epochs cannot alias the recycled epoch value 1.
        let mut m = EpochMarker::new(4);
        m.mark(0); // stamp[0] = 1 — the epoch value reused after wrap
        m.force_epoch(u32::MAX);
        m.mark(2); // stamp[2] = u32::MAX
        assert!(m.is_marked(2));
        m.reset(); // checked_add overflows → fill(0), epoch = 1
                   // Nothing marked: neither the pre-wrap stamp at u32::MAX nor
                   // the ancient stamp equal to the recycled epoch 1.
        for id in 0..4 {
            assert!(!m.is_marked(id), "stale stamp aliased id {id} after wrap");
        }
        // The marker remains fully functional post-wrap.
        assert!(!m.mark(0));
        assert!(m.mark(0));
        m.reset();
        assert!(!m.is_marked(0));
    }

    #[test]
    fn ensure_len_grows_without_false_marks() {
        let mut m = EpochMarker::new(2);
        m.mark(1);
        m.ensure_len(6);
        assert_eq!(m.len(), 6);
        assert!(m.is_marked(1));
        for id in 2..6 {
            assert!(!m.is_marked(id));
        }
        m.ensure_len(3); // never shrinks
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn survives_many_resets() {
        let mut m = EpochMarker::new(2);
        for _ in 0..10_000 {
            m.mark(1);
            m.reset();
        }
        assert!(!m.is_marked(1));
    }
}
