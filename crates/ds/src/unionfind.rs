//! Union–find (disjoint set union) with path halving and union by size.
//!
//! Used by the coarsening matcher and connected-component routines in
//! `umpa-graph`/`umpa-partition`.

/// A disjoint-set forest over ids `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.set_count(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
        assert_eq!(uf.size_of(3), 4);
        assert_eq!(uf.size_of(5), 1);
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.set_count(), 1);
    }
}
