//! A fixed-capacity bitset over `usize` indices.
//!
//! Used for allocated-node membership, BFS frontier membership and
//! partition boundary flags where a `Vec<bool>` would waste cache lines.

/// A fixed-capacity bitset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates a bitset for indices `0..len`, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let prev = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        prev
    }

    /// Clears bit `i`; returns the previous value.
    #[inline]
    pub fn unset(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let prev = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        prev
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bit indices of a [`FixedBitSet`].
pub struct Ones<'a> {
    set: &'a FixedBitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset_roundtrip() {
        let mut bs = FixedBitSet::new(130);
        assert!(!bs.set(0));
        assert!(!bs.set(63));
        assert!(!bs.set(64));
        assert!(!bs.set(129));
        assert!(bs.set(64));
        assert!(bs.get(129));
        assert!(!bs.get(128));
        assert!(bs.unset(63));
        assert!(!bs.get(63));
        assert_eq!(bs.count_ones(), 3);
    }

    #[test]
    fn ones_iterates_ascending_across_words() {
        let mut bs = FixedBitSet::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            bs.set(i);
        }
        let got: Vec<usize> = bs.ones().collect();
        assert_eq!(got, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn clear_resets_all() {
        let mut bs = FixedBitSet::new(70);
        bs.set(1);
        bs.set(69);
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.ones().next(), None);
    }

    #[test]
    fn empty_bitset_is_sane() {
        let bs = FixedBitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.ones().count(), 0);
    }
}
