//! Indexed binary max-heap with `O(log n)` change-key.
//!
//! Items are dense integer ids `0..capacity`; each id carries an `f64`
//! key. The heap stores the position of every id so that keys can be
//! changed (raised *or* lowered) in `O(log n)` without rebuilds — the
//! operation the paper's `conn.update`, `whHeap` neighbour updates and
//! `congHeap` virtual-swap probes all rely on.
//!
//! Ties are broken by id (smaller id wins) so every operation is fully
//! deterministic; the mapping heuristics are sensitive to pop order and
//! reproducibility across runs is required by the experiment harness.

/// Sentinel meaning "id is not currently in the heap".
const ABSENT: u32 = u32::MAX;

/// An indexed binary max-heap over ids `0..capacity` with `f64` keys.
///
/// # Examples
///
/// ```
/// use umpa_ds::IndexedMaxHeap;
/// let mut h = IndexedMaxHeap::new(4);
/// h.push(0, 1.0);
/// h.push(2, 5.0);
/// h.push(3, 3.0);
/// h.change_key(0, 9.0);
/// assert_eq!(h.pop(), Some((0, 9.0)));
/// assert_eq!(h.pop(), Some((2, 5.0)));
/// assert_eq!(h.pop(), Some((3, 3.0)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct IndexedMaxHeap {
    /// Heap-ordered array of ids.
    heap: Vec<u32>,
    /// `pos[id]` = index of `id` inside `heap`, or `ABSENT`.
    pos: Vec<u32>,
    /// `key[id]` = current key of `id` (valid only while present).
    key: Vec<f64>,
}

impl Default for IndexedMaxHeap {
    /// An empty zero-capacity heap; grow it with [`reset`](Self::reset).
    fn default() -> Self {
        Self::new(0)
    }
}

impl IndexedMaxHeap {
    /// Creates an empty heap able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            pos: vec![ABSENT; capacity],
            key: vec![0.0; capacity],
        }
    }

    /// Number of ids currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no ids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Maximum id + 1 this heap accepts.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.pos.len()
    }

    /// Whether `id` is currently in the heap.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.pos[id as usize] != ABSENT
    }

    /// Current key of `id`, if present.
    #[inline]
    pub fn key_of(&self, id: u32) -> Option<f64> {
        self.contains(id).then(|| self.key[id as usize])
    }

    /// Inserts `id` with `key`. Panics if `id` is already present.
    pub fn push(&mut self, id: u32, key: f64) {
        assert!(
            !self.contains(id),
            "IndexedMaxHeap::push: id {id} already present"
        );
        self.key[id as usize] = key;
        let at = self.heap.len();
        self.heap.push(id);
        self.pos[id as usize] = at as u32;
        self.sift_up(at);
    }

    /// Inserts `id` or overwrites its key if already present.
    pub fn push_or_update(&mut self, id: u32, key: f64) {
        if self.contains(id) {
            self.change_key(id, key);
        } else {
            self.push(id, key);
        }
    }

    /// The max-key entry without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(u32, f64)> {
        self.heap.first().map(|&id| (id, self.key[id as usize]))
    }

    /// Removes and returns the max-key entry.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        let &top = self.heap.first()?;
        let out = (top, self.key[top as usize]);
        self.remove(top);
        Some(out)
    }

    /// Sets a new key for a present `id`, restoring heap order.
    pub fn change_key(&mut self, id: u32, key: f64) {
        let at = self.pos[id as usize];
        assert!(
            at != ABSENT,
            "IndexedMaxHeap::change_key: id {id} not present"
        );
        let old = self.key[id as usize];
        self.key[id as usize] = key;
        let at = at as usize;
        if Self::before(key, id, old, id) {
            self.sift_up(at);
        } else {
            self.sift_down(at);
        }
    }

    /// Adds `delta` to the key of `id` (inserting with key `delta` if
    /// absent) — the paper's `conn.update(t, c)` accumulation.
    pub fn add_to_key(&mut self, id: u32, delta: f64) {
        if self.contains(id) {
            let k = self.key[id as usize] + delta;
            self.change_key(id, k);
        } else {
            self.push(id, delta);
        }
    }

    /// Removes `id` if present; returns its key.
    pub fn remove(&mut self, id: u32) -> Option<f64> {
        let at = self.pos[id as usize];
        if at == ABSENT {
            return None;
        }
        let at = at as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(at, last);
        let moved = self.heap[at];
        self.pos[moved as usize] = at as u32;
        self.heap.pop();
        self.pos[id as usize] = ABSENT;
        if at < self.heap.len() {
            // Restore order for the element swapped into `at`.
            self.sift_up(at);
            self.sift_down(self.pos[moved as usize] as usize);
        }
        Some(self.key[id as usize])
    }

    /// Drops every entry, keeping allocations.
    pub fn clear(&mut self) {
        for &id in &self.heap {
            self.pos[id as usize] = ABSENT;
        }
        self.heap.clear();
    }

    /// Empties the heap and guarantees room for ids `0..capacity`,
    /// reusing the existing allocations whenever they are large enough.
    /// The workhorse of the scratch-reuse architecture: a warm heap
    /// serves any number of runs without touching the allocator.
    pub fn reset(&mut self, capacity: usize) {
        self.clear();
        if capacity > self.pos.len() {
            self.pos.resize(capacity, ABSENT);
            self.key.resize(capacity, 0.0);
            self.heap.reserve(capacity);
        }
    }

    /// Rebuilds the heap to hold exactly `ids` (which must be
    /// distinct, each `< capacity`) with `key_of(id)` keys, via Floyd's
    /// bottom-up heapify — `O(|ids|)` against `O(|ids| log |ids|)`
    /// worst-case (and a measurably smaller constant than) sequential
    /// [`push`](Self::push) calls. The bulk-load path for sparse
    /// universes — e.g. the congestion engine's `congHeap`, where only
    /// links that carry traffic need entries and the rest are implicit
    /// zeros.
    ///
    /// The internal *layout* may differ from the same content built by
    /// pushes, but every observable result — `peek`, the `pop`
    /// sequence, `change_key`, `max_excluding` — depends only on the
    /// (key, id) set and the heap invariant, so callers cannot tell
    /// the difference.
    pub fn rebuild_sparse(
        &mut self,
        capacity: usize,
        ids: &[u32],
        mut key_of: impl FnMut(u32) -> f64,
    ) {
        self.clear();
        if capacity > self.pos.len() {
            self.pos.resize(capacity, ABSENT);
            self.key.resize(capacity, 0.0);
        }
        self.heap.clear();
        self.heap.extend_from_slice(ids);
        for (i, &id) in ids.iter().enumerate() {
            debug_assert_eq!(self.pos[id as usize], ABSENT, "duplicate id {id}");
            self.key[id as usize] = key_of(id);
            self.pos[id as usize] = i as u32;
        }
        for at in (0..ids.len() / 2).rev() {
            self.sift_down(at);
        }
    }

    /// Iterates `(id, key)` pairs in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.heap.iter().map(move |&id| (id, self.key[id as usize]))
    }

    /// The maximum entry among ids for which `excluded` is `false`,
    /// **without mutating the heap** — the read-only half of a virtual
    /// key perturbation. A root-to-leaf descent prunes at every
    /// non-excluded node (its subtree cannot beat it) and at every
    /// excluded node whose key is already strictly below the best found
    /// (heap order bounds its subtree), so the walk visits
    /// `O(|excluded|)` nodes. Ties resolve toward the smaller id, like
    /// [`peek`](Self::peek). Returns `None` when every present id is
    /// excluded (or the heap is empty).
    pub fn max_excluding(&self, mut excluded: impl FnMut(u32) -> bool) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        if !self.heap.is_empty() {
            self.max_excluding_from(0, &mut excluded, &mut best);
        }
        best
    }

    /// Recursive descent of [`max_excluding`](Self::max_excluding);
    /// depth is bounded by the heap height (`O(log n)`).
    fn max_excluding_from(
        &self,
        at: usize,
        excluded: &mut impl FnMut(u32) -> bool,
        best: &mut Option<(u32, f64)>,
    ) {
        let id = self.heap[at];
        let key = self.key[id as usize];
        if !excluded(id) {
            let better = match *best {
                Some((bid, bk)) => Self::before(key, id, bk, bid),
                None => true,
            };
            if better {
                *best = Some((id, key));
            }
            return; // children cannot beat their parent
        }
        if let Some((_, bk)) = *best {
            if key < bk {
                return; // the whole subtree is keyed below `best`
            }
        }
        let l = 2 * at + 1;
        if l < self.heap.len() {
            self.max_excluding_from(l, excluded, best);
        }
        let r = l + 1;
        if r < self.heap.len() {
            self.max_excluding_from(r, excluded, best);
        }
    }

    /// Strict ordering: does (ka, ia) come before (kb, ib) in a max-heap?
    /// Larger key first; ties broken toward the smaller id.
    #[inline]
    fn before(ka: f64, ia: u32, kb: f64, ib: u32) -> bool {
        ka > kb || (ka == kb && ia < ib)
    }

    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            let (c, p) = (self.heap[at], self.heap[parent]);
            if Self::before(self.key[c as usize], c, self.key[p as usize], p) {
                self.heap.swap(at, parent);
                self.pos[c as usize] = parent as u32;
                self.pos[p as usize] = at as u32;
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * at + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut best = l;
            if r < n {
                let (lid, rid) = (self.heap[l], self.heap[r]);
                if Self::before(self.key[rid as usize], rid, self.key[lid as usize], lid) {
                    best = r;
                }
            }
            let (cid, bid) = (self.heap[at], self.heap[best]);
            if Self::before(self.key[bid as usize], bid, self.key[cid as usize], cid) {
                self.heap.swap(at, best);
                self.pos[cid as usize] = best as u32;
                self.pos[bid as usize] = at as u32;
                at = best;
            } else {
                break;
            }
        }
    }

    /// Debug invariant check: heap order and position consistency.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        for (i, &id) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[id as usize] as usize, i, "pos out of sync");
            if i > 0 {
                let p = self.heap[(i - 1) / 2];
                assert!(
                    !Self::before(self.key[id as usize], id, self.key[p as usize], p),
                    "heap order violated at index {i}"
                );
            }
        }
        let present = self.pos.iter().filter(|&&p| p != ABSENT).count();
        assert_eq!(present, self.heap.len(), "pos table leaks entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_orders_by_key_desc() {
        let mut h = IndexedMaxHeap::new(8);
        for (id, k) in [(0u32, 3.0), (1, 7.0), (2, 1.0), (3, 5.0)] {
            h.push(id, k);
        }
        h.assert_invariants();
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(i, _)| i)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        let mut h = IndexedMaxHeap::new(8);
        h.push(5, 2.0);
        h.push(1, 2.0);
        h.push(3, 2.0);
        assert_eq!(h.pop().unwrap().0, 1);
        assert_eq!(h.pop().unwrap().0, 3);
        assert_eq!(h.pop().unwrap().0, 5);
    }

    #[test]
    fn change_key_raises_and_lowers() {
        let mut h = IndexedMaxHeap::new(4);
        h.push(0, 1.0);
        h.push(1, 2.0);
        h.push(2, 3.0);
        h.change_key(0, 10.0);
        h.assert_invariants();
        assert_eq!(h.peek(), Some((0, 10.0)));
        h.change_key(0, 0.5);
        h.assert_invariants();
        assert_eq!(h.peek(), Some((2, 3.0)));
    }

    #[test]
    fn add_to_key_accumulates_like_conn_update() {
        let mut h = IndexedMaxHeap::new(4);
        h.add_to_key(2, 1.5);
        h.add_to_key(2, 2.5);
        h.add_to_key(1, 3.0);
        assert_eq!(h.pop(), Some((2, 4.0)));
        assert_eq!(h.pop(), Some((1, 3.0)));
    }

    #[test]
    fn remove_middle_keeps_order() {
        let mut h = IndexedMaxHeap::new(16);
        for id in 0..10u32 {
            h.push(id, f64::from(id * 7 % 10));
        }
        assert_eq!(h.remove(4), Some(8.0));
        assert!(!h.contains(4));
        h.assert_invariants();
        let mut last = f64::INFINITY;
        while let Some((_, k)) = h.pop() {
            assert!(k <= last);
            last = k;
        }
    }

    #[test]
    fn clear_resets_but_allows_reuse() {
        let mut h = IndexedMaxHeap::new(4);
        h.push(0, 1.0);
        h.push(3, 2.0);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0));
        h.push(0, 5.0);
        assert_eq!(h.pop(), Some((0, 5.0)));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_push_panics() {
        let mut h = IndexedMaxHeap::new(2);
        h.push(0, 1.0);
        h.push(0, 2.0);
    }

    #[test]
    fn key_of_and_contains_reflect_state() {
        let mut h = IndexedMaxHeap::new(4);
        assert_eq!(h.key_of(1), None);
        h.push(1, 4.5);
        assert_eq!(h.key_of(1), Some(4.5));
        h.pop();
        assert_eq!(h.key_of(1), None);
    }

    #[test]
    fn max_excluding_matches_a_filtered_scan_on_every_subset() {
        // Ties on purpose (keys are id % 3) so the smaller-id rule is
        // exercised; every subset of 6 ids is checked against a linear
        // reference scan, and the heap must come through untouched.
        let mut h = IndexedMaxHeap::new(8);
        for id in 0..6u32 {
            h.push(id, f64::from(id % 3));
        }
        let snapshot: Vec<(u32, f64)> = h.iter().collect();
        for mask in 0u32..64 {
            let got = h.max_excluding(|id| mask & (1 << id) != 0);
            let want = (0..6u32)
                .filter(|id| mask & (1 << id) == 0)
                .map(|id| (id, f64::from(id % 3)))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
            assert_eq!(got, want, "mask {mask:#b}");
        }
        h.assert_invariants();
        assert_eq!(h.iter().collect::<Vec<_>>(), snapshot, "heap mutated");
    }

    #[test]
    fn rebuild_sparse_matches_pushes_of_the_subset() {
        let ids = [9u32, 2, 14, 5, 11];
        let key = |id: u32| f64::from(id % 4);
        let mut pushed = IndexedMaxHeap::new(16);
        for &id in &ids {
            pushed.push(id, key(id));
        }
        let mut rebuilt = IndexedMaxHeap::new(0);
        rebuilt.rebuild_sparse(16, &ids, key);
        rebuilt.assert_invariants();
        assert_eq!(rebuilt.len(), 5);
        assert!(!rebuilt.contains(0));
        loop {
            let (a, b) = (pushed.pop(), rebuilt.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rebuild_sparse_covers_the_dense_universe_too() {
        // A dense 0..n id list with ties (keys are id % 3): the pop
        // sequence — the full observable order, smaller id first on
        // ties — must match sequential pushes, and a rebuild after use
        // resets cleanly.
        let dense: Vec<u32> = (0..33).collect();
        let key = |id: u32| f64::from(id % 3);
        let mut pushed = IndexedMaxHeap::new(33);
        for &id in &dense {
            pushed.push(id, key(id));
        }
        let mut rebuilt = IndexedMaxHeap::new(4); // grows on rebuild
        rebuilt.rebuild_sparse(33, &dense, key);
        rebuilt.assert_invariants();
        assert_eq!(rebuilt.max_excluding(|_| false), rebuilt.peek());
        loop {
            let (a, b) = (pushed.pop(), rebuilt.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        rebuilt.rebuild_sparse(5, &[0, 3], |id| -f64::from(id));
        rebuilt.assert_invariants();
        assert_eq!(rebuilt.peek(), Some((0, 0.0)));
        assert!(!rebuilt.contains(7));
    }

    #[test]
    fn max_excluding_empty_and_fully_excluded() {
        let mut h = IndexedMaxHeap::new(4);
        assert_eq!(h.max_excluding(|_| false), None);
        h.push(1, 2.0);
        h.push(2, 3.0);
        assert_eq!(h.max_excluding(|_| true), None);
        assert_eq!(h.max_excluding(|id| id == 2), Some((1, 2.0)));
    }

    #[test]
    fn push_or_update_overwrites() {
        let mut h = IndexedMaxHeap::new(4);
        h.push_or_update(2, 1.0);
        h.push_or_update(2, 9.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(), Some((2, 9.0)));
    }
}
