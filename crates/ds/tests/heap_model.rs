//! Property test: `IndexedMaxHeap` against a `BTreeMap` reference model
//! under arbitrary operation sequences (the DESIGN.md §7 invariant).

use proptest::prelude::*;
use std::collections::BTreeMap;
use umpa_ds::IndexedMaxHeap;

#[derive(Clone, Debug)]
enum Op {
    Push(u32, u32),
    Pop,
    ChangeKey(u32, u32),
    AddToKey(u32, i32),
    Remove(u32),
}

fn op_strategy(ids: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ids, 0u32..1000).prop_map(|(i, k)| Op::Push(i, k)),
        Just(Op::Pop),
        (0..ids, 0u32..1000).prop_map(|(i, k)| Op::ChangeKey(i, k)),
        (0..ids, -50i32..50).prop_map(|(i, d)| Op::AddToKey(i, d)),
        (0..ids).prop_map(Op::Remove),
    ]
}

/// Reference model: id → key map; max = (highest key, lowest id).
#[derive(Default)]
struct Model {
    map: BTreeMap<u32, f64>,
}

impl Model {
    fn max(&self) -> Option<(u32, f64)> {
        self.map
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap()
                    .then(b.0.cmp(a.0)) // ties → smaller id first
            })
            .map(|(&i, &k)| (i, k))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_matches_reference_model(ops in prop::collection::vec(op_strategy(16), 1..120)) {
        let mut heap = IndexedMaxHeap::new(16);
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Push(i, k) => {
                    if !model.map.contains_key(&i) {
                        heap.push(i, f64::from(k));
                        model.map.insert(i, f64::from(k));
                    }
                }
                Op::Pop => {
                    let got = heap.pop();
                    let want = model.max();
                    prop_assert_eq!(got, want);
                    if let Some((i, _)) = want {
                        model.map.remove(&i);
                    }
                }
                Op::ChangeKey(i, k) => {
                    if model.map.contains_key(&i) {
                        heap.change_key(i, f64::from(k));
                        model.map.insert(i, f64::from(k));
                    }
                }
                Op::AddToKey(i, d) => {
                    heap.add_to_key(i, f64::from(d));
                    *model.map.entry(i).or_insert(0.0) += f64::from(d);
                }
                Op::Remove(i) => {
                    let got = heap.remove(i);
                    let want = model.map.remove(&i);
                    prop_assert_eq!(got, want);
                }
            }
            // Continuous agreement on size and top.
            prop_assert_eq!(heap.len(), model.map.len());
            prop_assert_eq!(heap.peek(), model.max());
            heap.assert_invariants();
        }
    }
}
