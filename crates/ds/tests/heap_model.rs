//! Property test: `IndexedMaxHeap` against a `BTreeMap` reference model
//! under arbitrary operation sequences (the DESIGN.md §7 invariant).
//!
//! `proptest` is unavailable offline; the operation sequences are drawn
//! from the workspace's seeded ChaCha8 generator instead — 256
//! deterministic cases of up to 120 operations over 16 ids.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use umpa_ds::IndexedMaxHeap;

#[derive(Clone, Debug)]
enum Op {
    Push(u32, u32),
    Pop,
    ChangeKey(u32, u32),
    AddToKey(u32, i32),
    Remove(u32),
}

fn random_op(rng: &mut ChaCha8Rng, ids: u32) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Push(rng.gen_range(0..ids), rng.gen_range(0..1000u32)),
        1 => Op::Pop,
        2 => Op::ChangeKey(rng.gen_range(0..ids), rng.gen_range(0..1000u32)),
        3 => Op::AddToKey(rng.gen_range(0..ids), rng.gen_range(-50..50i32)),
        _ => Op::Remove(rng.gen_range(0..ids)),
    }
}

/// Reference model: id → key map; max = (highest key, lowest id).
#[derive(Default)]
struct Model {
    map: BTreeMap<u32, f64>,
}

impl Model {
    fn max(&self) -> Option<(u32, f64)> {
        self.map
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)) // ties → smaller id first
            })
            .map(|(&i, &k)| (i, k))
    }
}

#[test]
fn heap_matches_reference_model() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4EA9);
    for case in 0..256 {
        let n_ops = rng.gen_range(1..120usize);
        let mut heap = IndexedMaxHeap::new(16);
        let mut model = Model::default();
        for step in 0..n_ops {
            let op = random_op(&mut rng, 16);
            match op {
                Op::Push(i, k) => {
                    model.map.entry(i).or_insert_with(|| {
                        heap.push(i, f64::from(k));
                        f64::from(k)
                    });
                }
                Op::Pop => {
                    let got = heap.pop();
                    let want = model.max();
                    assert_eq!(got, want, "case {case} step {step}");
                    if let Some((i, _)) = want {
                        model.map.remove(&i);
                    }
                }
                Op::ChangeKey(i, k) => {
                    if model.map.contains_key(&i) {
                        heap.change_key(i, f64::from(k));
                        model.map.insert(i, f64::from(k));
                    }
                }
                Op::AddToKey(i, d) => {
                    heap.add_to_key(i, f64::from(d));
                    *model.map.entry(i).or_insert(0.0) += f64::from(d);
                }
                Op::Remove(i) => {
                    let got = heap.remove(i);
                    let want = model.map.remove(&i);
                    assert_eq!(got, want, "case {case} step {step}");
                }
            }
            // Continuous agreement on size and top.
            assert_eq!(heap.len(), model.map.len(), "case {case} step {step}");
            assert_eq!(heap.peek(), model.max(), "case {case} step {step}");
            heap.assert_invariants();
        }
    }
}
