//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! crate the workspace vendors this minimal, dependency-free
//! implementation: [`RngCore`]/[`Rng`] with `gen_range` over integer and
//! float ranges, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates). Streams are
//! deterministic and platform-independent, which is all the experiment
//! harness requires; they do **not** bit-match the real `rand` crate.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float element types).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample of the standard distribution for `T` (`f64` in
    /// `[0, 1)`, fair `bool`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

/// Types with a "standard" uniform distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// SplitMix64 — the test suite's cheap seed-stream generator.
#[cfg(test)]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm(7);
        for _ in 0..1000 {
            let a: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&b));
            let c: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Sm(3));
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = Sm(11);
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }
}
