//! Offline shim for `rand_chacha`: a genuine ChaCha (8-round) keystream
//! generator implementing the workspace `rand` shim's [`RngCore`] and
//! [`SeedableRng`] traits. Deterministic and platform-independent; the
//! stream does not bit-match the real `rand_chacha` crate (which is fine
//! — the workspace only needs reproducibility against itself).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    at: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // Two rounds per iteration: column then diagonal.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(init) {
            *o = o.wrapping_add(i);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.at = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64,
        // mirroring rand's seed_from_u64 approach.
        let mut state = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            state = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            if pair.len() > 1 {
                pair[1] = (z >> 32) as u32;
            }
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            at: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.at >= 16 {
            self.refill();
        }
        let w = self.buf[self.at];
        self.at += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn sampling_compiles_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: u32 = rng.gen_range(0..10);
        assert!(x < 10);
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // Counter advances one block per 16 words.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_eq!(rng.counter, 1);
        let _ = rng.next_u32();
        assert_eq!(rng.counter, 2);
        // A keystream block is not constant.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
