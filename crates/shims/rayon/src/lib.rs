//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! The build environment has no registry access, so this crate provides
//! `par_iter()` / `par_chunks()` with `map(...).collect()` on slices,
//! executed on `std::thread::scope` threads (one contiguous chunk per
//! hardware thread). Results are collected **in input order**, so any
//! reduction over them is deterministic regardless of thread timing —
//! the property the mapping engine's lowest-WH-wins reductions rely on.
//!
//! The API is call-compatible with real rayon for the patterns used
//! here; swapping the real crate back in requires no source changes.

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads to fan out over for `n` items.
fn threads_for(n: usize) -> usize {
    let hw = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// Order-preserving parallel map over a slice: splits `items` into one
/// contiguous chunk per worker, maps each chunk on its own scoped
/// thread, and concatenates the per-chunk outputs in input order.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

/// `par_iter()` entry point on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `par_chunks()` entry point on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous sub-slices of length `size`.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "par_chunks: chunk size must be non-zero");
        ParChunks { items: self, size }
    }
}

/// Borrowing parallel iterator (`slice.par_iter()`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; `f` runs on worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel flat-map; each produced collection is flattened into the
    /// output in input order.
    pub fn flat_map<I, F>(self, f: F) -> ParFlatMap<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        ParFlatMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator awaiting `collect()`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map and gathers results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_ordered_vec(par_map_slice(self.items, |t| (self.f)(t)))
    }
}

/// A flat-mapped parallel iterator awaiting `collect()`.
pub struct ParFlatMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, I, F> ParFlatMap<'a, T, F>
where
    T: Sync,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(&'a T) -> I + Sync,
{
    /// Executes the flat-map and gathers results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<I::Item>,
    {
        let nested: Vec<Vec<I::Item>> =
            par_map_slice(self.items, |t| (self.f)(t).into_iter().collect());
        C::from_ordered_vec(nested.into_iter().flatten().collect())
    }
}

/// Parallel iterator over sub-slices (`slice.par_chunks(k)`).
pub struct ParChunks<'a, T> {
    items: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Parallel map over each chunk.
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            items: self.items,
            size: self.size,
            f,
        }
    }
}

/// A mapped chunk iterator awaiting `collect()`.
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Executes the map, one scoped thread per chunk, in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        let f = &self.f;
        let chunks: Vec<&[T]> = self.items.chunks(self.size).collect();
        let results = if chunks.len() <= 1 {
            chunks.into_iter().map(f).collect()
        } else {
            let mut out: Vec<R> = Vec::with_capacity(chunks.len());
            thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|part| s.spawn(move || f(part)))
                    .collect();
                for h in handles {
                    out.push(h.join().expect("rayon shim worker panicked"));
                }
            });
            out
        };
        C::from_ordered_vec(results)
    }
}

/// Collection targets for `collect()` (the `Vec` subset).
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

/// Re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::par_map_slice;
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), v.iter().sum::<u32>());
        assert_eq!(sums[0], (0..10).sum::<u32>());
    }

    #[test]
    fn helper_matches_sequential() {
        let v: Vec<i64> = (0..257).collect();
        assert_eq!(
            par_map_slice(&v, |&x| x * x),
            v.iter().map(|&x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let outer: Vec<u32> = (0..8).collect();
        let out: Vec<Vec<u32>> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<u32> = (0..16).collect();
                inner.par_iter().map(|&j| i * 100 + j).collect()
            })
            .collect();
        assert_eq!(out[3][5], 305);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
