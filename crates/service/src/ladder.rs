//! The deadline degradation ladder.
//!
//! Each request carries a time budget (deadline minus time already
//! spent queued). The ladder picks the best mapper the budget can
//! afford, stepping down `cong_refine → wh_refine → greedy-only →
//! projection` (i.e. `GreedyMc → GreedyWh → Greedy → Def` through
//! [`MapperKind::degrade`]) when the budget is tight or the queue is
//! deep — so overload degrades *quality*, never latency. Rung costs
//! are learned online: an EWMA of observed service times per rung,
//! seeded with conservative priors so the first requests under a tight
//! deadline degrade rather than gamble.

use std::sync::atomic::{AtomicU64, Ordering};

use umpa_core::MapperKind;

use crate::config::ServiceConfig;

/// Which rung of the degradation ladder served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LadderRung {
    /// Greedy + WH refinement + congestion refinement (top quality).
    Full,
    /// Greedy + WH refinement.
    Refined,
    /// Greedy placement only.
    GreedyOnly,
    /// Rank projection (`DEF`) — the always-affordable floor.
    Projection,
}

impl LadderRung {
    /// Number of rungs.
    pub const COUNT: usize = 4;

    /// Dense index for per-rung counters (`Full` = 0 … `Projection` = 3).
    pub fn index(self) -> usize {
        match self {
            LadderRung::Full => 0,
            LadderRung::Refined => 1,
            LadderRung::GreedyOnly => 2,
            LadderRung::Projection => 3,
        }
    }

    /// The rung a mapper kind belongs to.
    pub fn of(kind: MapperKind) -> Self {
        match kind {
            MapperKind::GreedyMc | MapperKind::GreedyMmc => LadderRung::Full,
            MapperKind::GreedyWh => LadderRung::Refined,
            MapperKind::Greedy | MapperKind::Tmap | MapperKind::Smap => LadderRung::GreedyOnly,
            MapperKind::Def => LadderRung::Projection,
        }
    }

    /// Stable snake_case label (bench metric suffixes).
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Full => "full",
            LadderRung::Refined => "refined",
            LadderRung::GreedyOnly => "greedy",
            LadderRung::Projection => "projection",
        }
    }

    /// All rungs, top to bottom.
    pub fn all() -> [LadderRung; Self::COUNT] {
        [
            LadderRung::Full,
            LadderRung::Refined,
            LadderRung::GreedyOnly,
            LadderRung::Projection,
        ]
    }
}

/// Online per-rung cost model: EWMA of observed service nanoseconds,
/// lock-free (a lost update under a store race just delays the
/// estimate by one observation).
#[derive(Debug)]
pub(crate) struct CostModel {
    est_ns: [AtomicU64; LadderRung::COUNT],
}

/// Conservative priors (ns) before any observation: roughly the
/// default-preset cost of each rung, erring high so cold-start
/// requests under tight deadlines step down instead of missing.
const SEED_NS: [u64; LadderRung::COUNT] = [4_000_000, 1_500_000, 600_000, 60_000];

impl CostModel {
    pub(crate) fn seeded() -> Self {
        Self {
            est_ns: SEED_NS.map(AtomicU64::new),
        }
    }

    /// Folds an observed service time into the rung's estimate
    /// (`new = 3/4·old + 1/4·obs`).
    pub(crate) fn observe(&self, rung: LadderRung, ns: u64) {
        let cell = &self.est_ns[rung.index()];
        let old = cell.load(Ordering::Relaxed);
        cell.store(old - old / 4 + ns / 4, Ordering::Relaxed);
    }

    /// Current estimate for a rung, nanoseconds.
    pub(crate) fn estimate_ns(&self, rung: LadderRung) -> u64 {
        self.est_ns[rung.index()].load(Ordering::Relaxed)
    }
}

/// Picks the mapper that serves a request: start from the requested
/// kind, shed one rung under queue pressure, then keep degrading while
/// the (safety-padded) cost estimate exceeds the remaining budget.
/// `Def` always serves — the ladder never rejects.
pub(crate) fn select_kind(
    requested: MapperKind,
    budget_ns: u64,
    queue_depth: usize,
    cfg: &ServiceConfig,
    costs: &CostModel,
) -> MapperKind {
    let mut kind = requested;
    if queue_depth >= cfg.pressure_depth.max(1) {
        if let Some(down) = kind.degrade() {
            kind = down;
        }
    }
    loop {
        let padded = (costs.estimate_ns(LadderRung::of(kind)) as f64 * cfg.safety_factor) as u64;
        if padded <= budget_ns {
            return kind;
        }
        match kind.degrade() {
            Some(down) => kind = down,
            None => return kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            pressure_depth: 8,
            safety_factor: 2.0,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn generous_budget_keeps_the_requested_kind() {
        let costs = CostModel::seeded();
        let k = select_kind(MapperKind::GreedyMc, u64::MAX, 0, &cfg(), &costs);
        assert_eq!(k, MapperKind::GreedyMc);
    }

    #[test]
    fn tight_budget_walks_down_to_projection() {
        let costs = CostModel::seeded();
        let k = select_kind(MapperKind::GreedyMc, 1_000, 0, &cfg(), &costs);
        assert_eq!(k, MapperKind::Def);
        // A budget affording greedy (600 µs seed × 2 safety) but not WH.
        let k = select_kind(MapperKind::GreedyMc, 1_400_000, 0, &cfg(), &costs);
        assert_eq!(k, MapperKind::Greedy);
    }

    #[test]
    fn queue_pressure_sheds_one_extra_rung() {
        let costs = CostModel::seeded();
        let k = select_kind(MapperKind::GreedyMc, u64::MAX, 8, &cfg(), &costs);
        assert_eq!(k, MapperKind::GreedyWh);
        // Projection cannot degrade further.
        let k = select_kind(MapperKind::Def, u64::MAX, 8, &cfg(), &costs);
        assert_eq!(k, MapperKind::Def);
    }

    #[test]
    fn ewma_learns_observed_costs() {
        let costs = CostModel::seeded();
        let before = costs.estimate_ns(LadderRung::Full);
        for _ in 0..64 {
            costs.observe(LadderRung::Full, 100_000);
        }
        let after = costs.estimate_ns(LadderRung::Full);
        assert!(after < before / 4, "estimate should converge down: {after}");
        // A cheap observed Full rung now fits a budget it did not fit
        // cold.
        let k = select_kind(MapperKind::GreedyMc, 1_000_000, 0, &cfg(), &costs);
        assert_eq!(k, MapperKind::GreedyMc);
    }

    #[test]
    fn cold_estimates_are_the_seed_priors_and_one_observation_folds_in() {
        let costs = CostModel::seeded();
        for (rung, seed) in LadderRung::all().into_iter().zip(SEED_NS) {
            assert_eq!(costs.estimate_ns(rung), seed, "{}", rung.label());
        }
        // First observation folds at the EWMA weight, not a hard reset:
        // new = seed - seed/4 + obs/4.
        costs.observe(LadderRung::Full, 100_000);
        assert_eq!(
            costs.estimate_ns(LadderRung::Full),
            4_000_000 - 4_000_000 / 4 + 100_000 / 4
        );
    }

    #[test]
    fn pathological_service_times_never_wrap_the_estimate() {
        // Repeated worst-case observations drive the EWMA toward
        // u64::MAX; `old - old/4 + ns/4` must stay in range at the
        // fixed point (debug builds panic on wrap, so this test proves
        // it). The ladder keeps serving off the saturated estimate.
        let costs = CostModel::seeded();
        let mut prev = costs.estimate_ns(LadderRung::Projection);
        for _ in 0..256 {
            costs.observe(LadderRung::Projection, u64::MAX);
            let est = costs.estimate_ns(LadderRung::Projection);
            assert!(est >= prev, "saturating estimate regressed: {est} < {prev}");
            prev = est;
        }
        assert!(
            prev > u64::MAX / 2,
            "estimate should approach the observations"
        );
        let k = select_kind(MapperKind::Def, 1_000, 0, &cfg(), &costs);
        assert_eq!(k, MapperKind::Def);
    }

    #[test]
    fn ladder_serves_the_floor_when_every_rung_exceeds_the_budget() {
        // Learn expensive costs into every rung, then ask with a budget
        // none of them fits: the walk must bottom out at Def — the
        // ladder never rejects — instead of looping or panicking.
        let costs = CostModel::seeded();
        for rung in LadderRung::all() {
            for _ in 0..64 {
                costs.observe(rung, 10_000_000_000);
            }
        }
        for budget in [0, 1, 1_000_000] {
            let k = select_kind(MapperKind::GreedyMc, budget, 0, &cfg(), &costs);
            assert_eq!(k, MapperKind::Def, "budget {budget}");
        }
    }

    #[test]
    fn rung_indices_are_dense_and_labels_stable() {
        let mut seen = [false; LadderRung::COUNT];
        for r in LadderRung::all() {
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(LadderRung::of(MapperKind::GreedyMmc), LadderRung::Full);
        assert_eq!(LadderRung::Projection.label(), "projection");
    }
}
