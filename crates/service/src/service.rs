//! The long-running [`MappingService`]: shared state, bounded
//! admission, churn repair with bounded-backoff retry, and the drift
//! supervisor's trigger points.
//!
//! Concurrency shape: one `RwLock` around the machine/allocation/job
//! state. Map requests are read-locked (many in flight at once, they
//! never mutate); churn repair, retries and supervisor polish are
//! write-locked. Admission is a bounded `sync_channel` plus an atomic
//! depth counter — `try_send` full means the caller gets
//! [`Submit::Rejected`] with the observed depth, never an unbounded
//! queue. Lock poisoning is absorbed with `into_inner`: a panicked
//! request (already isolated by the worker's `catch_unwind`) must not
//! wedge the service.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;

use umpa_core::greedy::weighted_hops;
use umpa_core::{
    apply_events, map_tasks_with, remap_incremental, ChurnEvent, MapperScratch, RemapDrift,
    RemapOutcome,
};
use umpa_graph::TaskGraph;
use umpa_topology::{Allocation, Machine};

use crate::clock::ServiceClock;
use crate::config::ServiceConfig;
use crate::journal::{Durability, JournalRecord};
use crate::ladder::CostModel;
use crate::recovery;
use crate::request::{Envelope, MapJob, MapTicket, RepairReport, ServiceError, Submit};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::supervisor::{PolishOutcome, Supervisor};
use crate::worker;

/// An infeasible repair awaiting capacity: retried on a bounded
/// exponential backoff by idle workers, and immediately by any later
/// churn application.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingRepair {
    pub attempts: u32,
    pub next_due_ns: u64,
}

/// The resident application whose live mapping the service repairs
/// through churn.
pub(crate) struct ResidentJob {
    pub tasks: Arc<TaskGraph>,
    pub mapping: Vec<u32>,
    pub drift: RemapDrift,
    pub pending: Option<PendingRepair>,
    pub supervisor: Supervisor,
    /// Warm scratch for repairs/polish; lives under the write lock.
    pub scratch: MapperScratch,
}

/// Everything behind the lock.
pub(crate) struct SharedState {
    pub machine: Machine,
    pub alloc: Allocation,
    pub job: Option<ResidentJob>,
}

/// Shared between the handle and the workers.
pub(crate) struct ServiceInner {
    pub cfg: ServiceConfig,
    pub clock: ServiceClock,
    pub state: RwLock<SharedState>,
    /// Current admission-queue depth.
    pub depth: AtomicUsize,
    /// When the pending repair's next timed retry is due
    /// (`u64::MAX` = no timed retry scheduled) — lets idle workers
    /// check without touching the lock.
    pub pending_due_ns: AtomicU64,
    pub costs: CostModel,
    pub stats: ServiceStats,
    /// Write-ahead durability sink (DESIGN.md §18); `None` while
    /// durability is off — including during recovery replay, which
    /// must not re-journal the frames it replays. Only ever locked
    /// while the state write lock is held, so frame order is
    /// execution order.
    pub journal: Mutex<Option<Durability>>,
}

impl ServiceInner {
    pub(crate) fn read_state(&self) -> RwLockReadGuard<'_, SharedState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn write_state(&self) -> RwLockWriteGuard<'_, SharedState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one record to the write-ahead journal (callers hold
    /// the state write lock and append **before** mutating, so an
    /// acked mutation is always on disk first). Durability failures —
    /// a full disk, or the chaos harness's injected crash — are
    /// counted and absorbed: the service keeps serving from memory.
    pub(crate) fn journal_append(&self, rec: &JournalRecord) {
        let mut guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let Some(journal) = guard.as_mut() else {
            return;
        };
        match journal.append(rec) {
            Ok(info) => {
                self.stats.journal_appends.fetch_add(1, Ordering::AcqRel);
                self.stats
                    .journal_bytes
                    .fetch_add(info.bytes, Ordering::AcqRel);
            }
            Err(_) => {
                self.stats.journal_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Writes a checksummed snapshot of the post-mutation state when
    /// the frame ration has elapsed. Called at the tail of every
    /// journaled operation, still under the write lock, so the
    /// snapshot is consistent with the journal watermark it records.
    pub(crate) fn maybe_snapshot(&self, st: &SharedState) {
        let mut guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let Some(journal) = guard.as_mut() else {
            return;
        };
        if !journal.should_snapshot() {
            return;
        }
        let payload = recovery::encode_snapshot_payload(st, journal.last_seq());
        match journal.write_snapshot(&payload) {
            Ok(()) => {
                self.stats.snapshots_written.fetch_add(1, Ordering::AcqRel);
            }
            Err(_) => {
                self.stats.journal_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    fn note_polish(&self, out: &PolishOutcome, report: &mut RepairReport) {
        if out.checked {
            self.stats.drift_checks.fetch_add(1, Ordering::AcqRel);
        }
        if out.polished {
            self.stats.polishes.fetch_add(1, Ordering::AcqRel);
        }
        if out.adopted {
            self.stats.baseline_adoptions.fetch_add(1, Ordering::AcqRel);
        }
        report.drift_checked = out.checked;
        report.polished = out.polished;
        report.adopted_baseline = out.adopted;
    }

    /// Applies churn events and repairs the resident job. Always
    /// attempts the repair (even past the retry budget): new events
    /// may have restored capacity, which is exactly how an exhausted
    /// repair converges.
    pub(crate) fn apply_churn(&self, events: &[ChurnEvent]) -> RepairReport {
        let mut report = RepairReport {
            applied_events: events.len(),
            ..RepairReport::default()
        };
        let mut st = self.write_state();
        self.journal_append(&JournalRecord::Churn(events.to_vec()));
        let SharedState {
            machine,
            alloc,
            job,
        } = &mut *st;
        let Some(job) = job.as_mut() else {
            apply_events(machine, alloc, events);
            report.fully_placed = true;
            self.maybe_snapshot(&st);
            return report;
        };
        let was_pending = job.pending.is_some();
        if was_pending {
            self.stats.retries.fetch_add(1, Ordering::AcqRel);
        }
        let outcome = remap_incremental(
            &job.tasks,
            machine,
            alloc,
            &mut job.mapping,
            events,
            &self.cfg.remap,
            &mut job.scratch,
        );
        self.settle_repair(machine, alloc, job, outcome, &mut report);
        self.maybe_snapshot(&st);
        report
    }

    /// Retries a pending infeasible repair if its backoff elapsed
    /// (`force` skips the due/attempt gate — the `retry_now` test
    /// hook). Returns `None` when there was nothing to do.
    pub(crate) fn retry_pending(&self, force: bool) -> Option<RepairReport> {
        let now = self.clock.now_ns();
        if !force && self.pending_due_ns.load(Ordering::Acquire) > now {
            return None;
        }
        let mut st = self.write_state();
        {
            let job = st.job.as_mut()?;
            let due = match &job.pending {
                Some(p) if force => Some(*p),
                Some(p) if p.attempts < self.cfg.retry.max_attempts && p.next_due_ns <= now => {
                    Some(*p)
                }
                _ => None,
            };
            due?;
        }
        // The retry will run: journal it so replay re-executes it at
        // the same point in the op sequence.
        self.journal_append(&JournalRecord::Retry);
        let SharedState {
            machine,
            alloc,
            job,
        } = &mut *st;
        let job = job.as_mut()?;
        self.stats.retries.fetch_add(1, Ordering::AcqRel);
        let mut report = RepairReport::default();
        let outcome = remap_incremental(
            &job.tasks,
            machine,
            alloc,
            &mut job.mapping,
            &[],
            &self.cfg.remap,
            &mut job.scratch,
        );
        self.settle_repair(machine, alloc, job, outcome, &mut report);
        self.maybe_snapshot(&st);
        Some(report)
    }

    /// Publishes the resident job's cumulative drift into the atomic
    /// stats mirror (readable without the state lock).
    pub(crate) fn mirror_drift(&self, drift: &RemapDrift) {
        self.stats
            .drift_repairs
            .store(drift.repairs, Ordering::Release);
        self.stats
            .drift_displaced_total
            .store(drift.displaced_total, Ordering::Release);
        self.stats
            .drift_wh_delta_bits
            .store(drift.wh_delta_total.to_bits(), Ordering::Release);
        self.stats
            .drift_wh_last_bits
            .store(drift.wh_last.to_bits(), Ordering::Release);
    }

    /// Common post-repair bookkeeping: drift stats and the supervisor
    /// on success, backoff scheduling (or the typed exhaustion error)
    /// on continued infeasibility.
    fn settle_repair(
        &self,
        machine: &mut Machine,
        alloc: &mut Allocation,
        job: &mut ResidentJob,
        outcome: RemapOutcome,
        report: &mut RepairReport,
    ) {
        match outcome {
            RemapOutcome::Repaired(stats) => {
                job.pending = None;
                self.pending_due_ns.store(u64::MAX, Ordering::Release);
                job.drift.note(&stats);
                self.stats.repairs.fetch_add(1, Ordering::AcqRel);
                self.mirror_drift(&job.drift);
                report.fully_placed = true;
                report.displaced = stats.displaced;
                let ResidentJob {
                    tasks,
                    mapping,
                    supervisor,
                    scratch,
                    ..
                } = job;
                let polish = supervisor.after_repair(
                    &self.cfg.supervisor,
                    &self.cfg.pipeline,
                    tasks,
                    machine,
                    alloc,
                    mapping,
                    scratch,
                    false,
                );
                self.note_polish(&polish, report);
            }
            RemapOutcome::Infeasible { unplaced } => {
                self.stats.infeasible.fetch_add(1, Ordering::AcqRel);
                report.fully_placed = false;
                report.unplaced = unplaced.len();
                let pending = job.pending.get_or_insert(PendingRepair {
                    attempts: 0,
                    next_due_ns: 0,
                });
                pending.attempts += 1;
                if pending.attempts >= self.cfg.retry.max_attempts {
                    // Typed give-up: timed retries stop, but any later
                    // capacity-restoring event still re-attempts.
                    self.stats.retry_exhausted.fetch_add(1, Ordering::AcqRel);
                    self.pending_due_ns.store(u64::MAX, Ordering::Release);
                    report.error = Some(ServiceError::RepairExhausted {
                        unplaced: unplaced.len(),
                        attempts: pending.attempts,
                    });
                } else {
                    let due = self
                        .clock
                        .now_ns()
                        .saturating_add(self.cfg.retry.backoff_ns(pending.attempts));
                    pending.next_due_ns = due;
                    self.pending_due_ns.store(due, Ordering::Release);
                }
            }
        }
    }

    /// Installs (or replaces) the resident job; the write-lock core of
    /// [`MappingService::install_job`], shared with recovery replay
    /// (which re-runs the same from-scratch map deterministically).
    pub(crate) fn install_job(&self, tasks: Arc<TaskGraph>) -> f64 {
        let mut scratch = MapperScratch::new();
        let mut st = self.write_state();
        self.journal_append(&JournalRecord::install(&tasks));
        let outcome = map_tasks_with(
            &tasks,
            &st.machine,
            &st.alloc,
            self.cfg.mapper,
            &self.cfg.pipeline,
            &mut scratch,
        );
        let wh = weighted_hops(&tasks, &st.machine, &outcome.fine_mapping);
        st.job = Some(ResidentJob {
            tasks,
            mapping: outcome.fine_mapping,
            drift: RemapDrift::default(),
            pending: None,
            supervisor: Supervisor::default(),
            scratch,
        });
        self.pending_due_ns.store(u64::MAX, Ordering::Release);
        self.maybe_snapshot(&st);
        wh
    }

    /// Forced supervisor pass; the write-lock core of
    /// [`MappingService::polish_now`], shared with recovery replay.
    pub(crate) fn polish_now(&self) -> RepairReport {
        let mut report = RepairReport::default();
        let mut st = self.write_state();
        if st.job.is_none() {
            return report;
        }
        self.journal_append(&JournalRecord::Polish);
        let SharedState {
            machine,
            alloc,
            job,
        } = &mut *st;
        let Some(job) = job.as_mut() else {
            return report;
        };
        report.unplaced = job.mapping.iter().filter(|&&n| n == u32::MAX).count();
        report.fully_placed = report.unplaced == 0;
        let ResidentJob {
            tasks,
            mapping,
            supervisor,
            scratch,
            ..
        } = job;
        let polish = supervisor.after_repair(
            &self.cfg.supervisor,
            &self.cfg.pipeline,
            tasks,
            machine,
            alloc,
            mapping,
            scratch,
            true,
        );
        self.note_polish(&polish, &mut report);
        self.maybe_snapshot(&st);
        report
    }
}

/// The always-on mapping service. Dropping (or [`shutdown`]) drains
/// the admission queue, replies to every accepted request, and joins
/// the workers.
///
/// [`shutdown`]: MappingService::shutdown
pub struct MappingService {
    inner: Arc<ServiceInner>,
    tx: Option<SyncSender<Envelope>>,
    /// Keeps the queue's receive side alive even with zero workers,
    /// so a consumerless service buffers up to capacity and sheds
    /// beyond it (the backpressure tests) instead of seeing a
    /// disconnected channel.
    _rx: Arc<Mutex<Receiver<Envelope>>>,
    workers: Vec<JoinHandle<()>>,
}

impl MappingService {
    /// Starts the service on the wall clock.
    pub fn new(machine: Machine, alloc: Allocation, cfg: ServiceConfig) -> Self {
        Self::with_clock(machine, alloc, cfg, ServiceClock::monotonic())
    }

    /// Starts the service on an explicit clock (tests use
    /// [`ServiceClock::manual`]).
    pub fn with_clock(
        machine: Machine,
        alloc: Allocation,
        cfg: ServiceConfig,
        clock: ServiceClock,
    ) -> Self {
        let inner = Self::build_inner(machine, alloc, cfg, clock);
        if let Some(dur_cfg) = inner.cfg.durability.clone() {
            // A brand-new service starts a fresh history. Failures are
            // availability-first: counted, and the service runs
            // non-durable rather than not at all.
            match Durability::create(&dur_cfg) {
                Ok(journal) => {
                    *inner.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(journal);
                }
                Err(_) => {
                    inner.stats.journal_errors.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        Self::start(inner)
    }

    /// Builds the shared inner state with no workers, no admission
    /// channel and no journal attached — the common base of
    /// [`MappingService::with_clock`] and crash recovery (which must
    /// replay the journal before any worker can race a timed retry).
    pub(crate) fn build_inner(
        machine: Machine,
        alloc: Allocation,
        cfg: ServiceConfig,
        clock: ServiceClock,
    ) -> Arc<ServiceInner> {
        Arc::new(ServiceInner {
            cfg,
            clock,
            state: RwLock::new(SharedState {
                machine,
                alloc,
                job: None,
            }),
            depth: AtomicUsize::new(0),
            pending_due_ns: AtomicU64::new(u64::MAX),
            costs: CostModel::seeded(),
            stats: ServiceStats::default(),
            journal: Mutex::new(None),
        })
    }

    /// Opens the admission channel and spawns the worker pool over a
    /// fully initialized inner state.
    pub(crate) fn start(inner: Arc<ServiceInner>) -> Self {
        let capacity = inner.cfg.queue_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel(capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = worker::spawn(&inner, &rx);
        Self {
            inner,
            tx: Some(tx),
            _rx: rx,
            workers,
        }
    }

    /// Installs (or replaces) the resident job: maps it from scratch
    /// with the service's top-rung mapper and returns the initial WH.
    /// Subsequent churn repairs and the drift supervisor operate on
    /// this job's live mapping.
    pub fn install_job(&self, tasks: Arc<TaskGraph>) -> f64 {
        self.inner.install_job(tasks)
    }

    /// Submits a map request through the bounded admission queue.
    pub fn submit_map(&self, job: MapJob) -> Submit<MapTicket> {
        let submitted_ns = self.inner.clock.now_ns();
        let (reply, rx) = mpsc::channel();
        self.admit(
            Envelope::Map {
                job,
                submitted_ns,
                reply,
            },
            rx,
        )
    }

    /// Submits a request whose service deliberately panics — the
    /// isolation-test hook proving workers survive poisoned work.
    #[doc(hidden)]
    pub fn submit_poison(&self) -> Submit<MapTicket> {
        let (reply, rx) = mpsc::channel();
        self.admit(Envelope::Poison { reply }, rx)
    }

    /// Closes the admission intake without draining or joining — the
    /// backpressure-test hook for the post-shutdown rejection path,
    /// where queued work is still in flight when a submit arrives.
    #[doc(hidden)]
    pub fn close_intake(&mut self) {
        self.tx = None;
    }

    fn admit(
        &self,
        env: Envelope,
        rx: mpsc::Receiver<Result<crate::MapReply, ServiceError>>,
    ) -> Submit<MapTicket> {
        let inner = &self.inner;
        let Some(tx) = &self.tx else {
            // Post-shutdown rejections still report the depth actually
            // observed at rejection time — in-flight work may not have
            // drained yet, and callers size their backoff on this.
            let queue_depth = inner.depth.load(Ordering::Acquire);
            inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
            return Submit::Rejected { queue_depth };
        };
        let depth = inner.depth.load(Ordering::Acquire);
        if depth >= inner.cfg.queue_capacity.max(1) {
            inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
            return Submit::Rejected { queue_depth: depth };
        }
        // Count the slot *before* sending: a worker may dequeue (and
        // decrement) the envelope before this thread runs again.
        let now_depth = inner.depth.fetch_add(1, Ordering::AcqRel) + 1;
        match tx.try_send(env) {
            Ok(()) => {
                inner.stats.note_depth(now_depth);
                inner.stats.accepted.fetch_add(1, Ordering::AcqRel);
                Submit::Accepted(MapTicket { rx })
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                let observed = inner.depth.fetch_sub(1, Ordering::AcqRel) - 1;
                inner.stats.rejected.fetch_add(1, Ordering::AcqRel);
                Submit::Rejected {
                    queue_depth: observed,
                }
            }
        }
    }

    /// Applies churn to the shared machine/allocation and repairs the
    /// resident job (synchronously, on the caller's thread — churn is
    /// the infrastructure feed, not client admission). See
    /// [`RepairReport`].
    pub fn apply_churn(&self, events: &[ChurnEvent]) -> RepairReport {
        self.inner.apply_churn(events)
    }

    /// Forces an immediate retry of a pending infeasible repair,
    /// ignoring the backoff gate. `None` when nothing is pending.
    pub fn retry_now(&self) -> Option<RepairReport> {
        self.inner.retry_pending(true)
    }

    /// Forces a drift-supervisor pass on the resident job regardless
    /// of the `check_every` ration.
    pub fn polish_now(&self) -> RepairReport {
        self.inner.polish_now()
    }

    /// Panics a writer while it holds the state `RwLock`, poisoning
    /// it — the robustness-test hook proving the `into_inner`
    /// absorption path keeps `submit_map` / `apply_churn` serving
    /// afterwards. The panic is caught here; only the poison escapes.
    #[doc(hidden)]
    pub fn poison_state_lock(&self) {
        let inner = Arc::clone(&self.inner);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = inner.write_state();
            // tidy-allow: panic-freedom (deliberate poison for the lock-absorption test; caught by the catch_unwind above)
            panic!("deliberate state-lock poisoning (test hook)");
        }));
    }

    /// Weighted hops of the resident job's live mapping; `None`
    /// without a job or while tasks are unplaced.
    pub fn live_wh(&self) -> Option<f64> {
        let st = self.inner.read_state();
        let job = st.job.as_ref()?;
        if job.mapping.contains(&u32::MAX) {
            return None;
        }
        Some(weighted_hops(&job.tasks, &st.machine, &job.mapping))
    }

    /// Cumulative repair-drift statistics of the resident job.
    pub fn drift(&self) -> Option<RemapDrift> {
        self.inner.read_state().job.as_ref().map(|j| j.drift)
    }

    /// A copy of the resident job's live mapping (`u32::MAX` =
    /// unplaced).
    pub fn live_mapping(&self) -> Option<Vec<u32>> {
        self.inner
            .read_state()
            .job
            .as_ref()
            .map(|j| j.mapping.clone())
    }

    /// Runs `f` against the shared machine/allocation under the read
    /// lock (e.g. to compute a from-scratch comparison in tests).
    pub fn with_state<R>(&self, f: impl FnOnce(&Machine, &Allocation) -> R) -> R {
        let st = self.inner.read_state();
        f(&st.machine, &st.alloc)
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.depth.load(Ordering::Acquire)
    }

    /// Nanoseconds on the service clock.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Drains the queue (replying to every accepted request), joins
    /// the workers, and returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.finish();
        self.inner.stats.snapshot()
    }

    fn finish(&mut self) {
        self.tx = None; // workers drain the queue, then see Disconnected
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MappingService {
    fn drop(&mut self) {
        self.finish();
    }
}
