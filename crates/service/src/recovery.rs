//! Deterministic crash recovery: snapshot load, torn-tail truncation,
//! journal replay (DESIGN.md §18).
//!
//! [`MappingService::recover`] rebuilds a service from its durability
//! directory: it loads the newest *valid* snapshot (`snapshot.bin`,
//! falling back to the rotated `snapshot.old.bin`, falling back to
//! genesis — the machine/allocation the caller passes in), truncates
//! any torn or corrupt journal tail in place, and replays the
//! surviving frame suffix through the same engine entry points an
//! uninterrupted run uses (`install` → from-scratch map, `churn` →
//! `remap_incremental`, `retry`/`polish` → the identical write-lock
//! paths). Because every replayed step is deterministic — CSR rebuild
//! is a bit-exact fixed point, repair is scratch-warmth-independent,
//! and the supervisor baseline is a pure function of the fault state
//! it is keyed on — the recovered resident job is **bit-identical**
//! to the uninterrupted run over the surviving operation prefix: same
//! mapping words, same `RemapDrift` bits, same fault mask.
//!
//! Corrupt input is *never* a panic: checksum failures truncate
//! (reported via [`RecoveryReport`]), structural failures inside
//! checksum-valid bytes surface as a typed [`RecoveryError`].

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use umpa_core::{ChurnEvent, MapperScratch};
use umpa_topology::{Allocation, FaultSnapshot, Machine};

use crate::clock::ServiceClock;
use crate::config::ServiceConfig;
use crate::journal::{
    self, decode_task_graph_parts, encode_task_graph, journal_path, read_snapshot, scan_journal,
    snapshot_old_path, snapshot_path, Cursor, Durability, JournalRecord, SnapshotRead,
    FORMAT_VERSION, HEADER_LEN, JOURNAL_MAGIC,
};
use crate::service::{MappingService, PendingRepair, ResidentJob, SharedState};
use crate::supervisor::Supervisor;

/// Why recovery could not complete. Torn tails and corrupt snapshots
/// are *not* errors — they are expected crash artifacts, truncated or
/// skipped and reported in [`RecoveryReport`]. These are the
/// unrecoverable cases.
#[derive(Debug)]
pub enum RecoveryError {
    /// `ServiceConfig::durability` was `None` — there is nothing to
    /// recover from.
    NotConfigured,
    /// An I/O operation on the durability directory failed.
    Io {
        /// Which operation failed (static description).
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The journal file exists but is not ours (wrong magic or
    /// version): refusing to truncate or replay a foreign file.
    ForeignJournal,
    /// A frame passed its CRC but its payload failed structural
    /// decoding — a format/version defect, not storage corruption
    /// (storage corruption fails the CRC and truncates instead).
    CorruptRecord {
        /// Sequence number of the offending frame.
        seq: u64,
    },
    /// A decoded record references entities this machine does not
    /// have (e.g. a link id past the topology) — the journal belongs
    /// to a different machine shape.
    InvalidReplay {
        /// Sequence number of the offending frame.
        seq: u64,
        /// What failed validation (static description).
        context: &'static str,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NotConfigured => write!(f, "recovery: durability is not configured"),
            RecoveryError::Io { context, source } => {
                write!(f, "recovery io ({context}): {source}")
            }
            RecoveryError::ForeignJournal => write!(f, "recovery: journal magic/version mismatch"),
            RecoveryError::CorruptRecord { seq } => {
                write!(f, "recovery: frame {seq} is checksum-valid but undecodable")
            }
            RecoveryError::InvalidReplay { seq, context } => {
                write!(
                    f,
                    "recovery: frame {seq} does not fit this machine ({context})"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<journal::JournalError> for RecoveryError {
    fn from(e: journal::JournalError) -> Self {
        match e {
            journal::JournalError::Io { context, source } => RecoveryError::Io { context, source },
            journal::JournalError::ForeignFile { .. } => RecoveryError::ForeignJournal,
            // The crash switch only fires on writes; reads never see it.
            journal::JournalError::Crashed => RecoveryError::Io {
                context: "crashed sink",
                source: std::io::Error::other("injected crash"),
            },
        }
    }
}

/// Which snapshot recovery restored from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotSource {
    /// No usable snapshot: recovery started from the genesis
    /// machine/allocation and replayed the whole journal.
    #[default]
    Genesis,
    /// `snapshot.bin`, the newest snapshot.
    Primary,
    /// `snapshot.old.bin`, the rotated fallback (the newest snapshot
    /// was missing or corrupt).
    Fallback,
}

/// What recovery found and did — the harness's window into truncation
/// and replay, so a bad frame is never *silently* accepted or dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Snapshot the state was restored from.
    pub snapshot_source: SnapshotSource,
    /// Journal sequence number the snapshot covered (0 = genesis).
    pub snapshot_seq: u64,
    /// Snapshot files present but rejected (bad checksum or failed
    /// validation against this machine).
    pub corrupt_snapshots: usize,
    /// Frames replayed through the engine (sequence > snapshot).
    pub frames_replayed: usize,
    /// Valid frames skipped because the snapshot already covered them.
    pub frames_skipped: usize,
    /// Sequence number of the last surviving frame (or the snapshot
    /// watermark if the journal had none) — the recovered history's
    /// length, which the chaos harness uses to build its reference run.
    pub last_seq: u64,
    /// Torn/corrupt tail bytes truncated from the journal. Nonzero
    /// whenever a crash or corruption cut a frame short.
    pub truncated_bytes: u64,
    /// Whether a resident job survived recovery.
    pub had_job: bool,
}

// ---------------------------------------------------------------------------
// Snapshot payload codec
// ---------------------------------------------------------------------------

/// Serializes the post-mutation service state for a snapshot:
/// `(covers_seq, FaultSnapshot, Allocation, resident job)` with every
/// `f64` as raw bits. Called under the state write lock.
pub(crate) fn encode_snapshot_payload(st: &SharedState, covers_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    journal::put_u64(&mut out, covers_seq);
    st.machine.fault_snapshot().encode_into(&mut out);
    let nodes = st.alloc.nodes();
    journal::put_u32(&mut out, nodes.len() as u32);
    for &n in nodes {
        journal::put_u32(&mut out, n);
    }
    let procs = st.alloc.procs_all();
    journal::put_u32(&mut out, procs.len() as u32);
    for &p in procs {
        journal::put_u32(&mut out, p);
    }
    match &st.job {
        None => out.push(0),
        Some(job) => {
            out.push(1);
            encode_task_graph(&job.tasks, &mut out);
            journal::put_u64(&mut out, job.mapping.len() as u64);
            for &node in &job.mapping {
                journal::put_u32(&mut out, node);
            }
            journal::put_u64(&mut out, job.drift.repairs);
            journal::put_u64(&mut out, job.drift.displaced_total);
            journal::put_f64(&mut out, job.drift.wh_delta_total);
            journal::put_f64(&mut out, job.drift.wh_last);
            match &job.pending {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    journal::put_u32(&mut out, p.attempts);
                }
            }
            journal::put_u32(&mut out, job.supervisor.repairs_since_check());
        }
    }
    out
}

/// Decoded snapshot, not yet validated against a machine.
struct SnapshotState {
    covers_seq: u64,
    fault: FaultSnapshot,
    alloc_nodes: Vec<u32>,
    alloc_procs: Vec<u32>,
    job: Option<SnapshotJob>,
}

struct SnapshotJob {
    graph: journal::TaskGraphParts,
    mapping: Vec<u32>,
    drift_repairs: u64,
    drift_displaced: u64,
    drift_wh_delta: f64,
    drift_wh_last: f64,
    pending_attempts: Option<u32>,
    repairs_since_check: u32,
}

fn decode_snapshot_payload(bytes: &[u8]) -> Option<SnapshotState> {
    let mut cur = Cursor::new(bytes);
    let covers_seq = cur.u64()?;
    let fault_bytes = bytes.get(8..)?;
    let (fault, used) = FaultSnapshot::decode(fault_bytes)?;
    let mut cur = Cursor::new(bytes.get(8 + used..)?);
    let n_nodes = cur.u32()? as usize;
    let mut alloc_nodes = Vec::with_capacity(n_nodes.min(1 << 20));
    for _ in 0..n_nodes {
        alloc_nodes.push(cur.u32()?);
    }
    let n_procs = cur.u32()? as usize;
    if n_procs != n_nodes {
        return None;
    }
    let mut alloc_procs = Vec::with_capacity(n_procs.min(1 << 20));
    for _ in 0..n_procs {
        alloc_procs.push(cur.u32()?);
    }
    let job = match cur.u8()? {
        0 => None,
        1 => {
            let graph = decode_task_graph_parts(&mut cur)?;
            let map_len = usize::try_from(cur.u64()?).ok()?;
            if map_len != graph.num_tasks {
                return None;
            }
            let mut mapping = Vec::with_capacity(map_len.min(1 << 24));
            for _ in 0..map_len {
                mapping.push(cur.u32()?);
            }
            let drift_repairs = cur.u64()?;
            let drift_displaced = cur.u64()?;
            let drift_wh_delta = cur.f64_bits()?;
            let drift_wh_last = cur.f64_bits()?;
            if !drift_wh_delta.is_finite() || !drift_wh_last.is_finite() {
                return None;
            }
            let pending_attempts = match cur.u8()? {
                0 => None,
                1 => Some(cur.u32()?),
                _ => return None,
            };
            let repairs_since_check = cur.u32()?;
            Some(SnapshotJob {
                graph,
                mapping,
                drift_repairs,
                drift_displaced,
                drift_wh_delta,
                drift_wh_last,
                pending_attempts,
                repairs_since_check,
            })
        }
        _ => return None,
    };
    if !cur.is_empty() {
        return None;
    }
    Some(SnapshotState {
        covers_seq,
        fault,
        alloc_nodes,
        alloc_procs,
        job,
    })
}

/// Validates a decoded snapshot against the genesis machine (pure —
/// nothing is mutated until every check passes, so a late failure can
/// still fall back to the next snapshot in the chain).
fn validate_snapshot(state: &SnapshotState, machine: &Machine) -> bool {
    if !state.fault.is_valid_for(machine) {
        return false;
    }
    let num_nodes = machine.num_nodes();
    let mut seen = vec![false; num_nodes];
    for &n in &state.alloc_nodes {
        let Some(slot) = seen.get_mut(n as usize) else {
            return false;
        };
        if *slot {
            return false; // duplicate node
        }
        *slot = true;
    }
    if let Some(job) = &state.job {
        for &node in &job.mapping {
            if node != u32::MAX && (node as usize) >= num_nodes {
                return false;
            }
        }
    }
    true
}

fn restore_job(job: SnapshotJob) -> ResidentJob {
    let drift = umpa_core::RemapDrift {
        repairs: job.drift_repairs,
        displaced_total: job.drift_displaced,
        wh_delta_total: job.drift_wh_delta,
        wh_last: job.drift_wh_last,
    };
    ResidentJob {
        tasks: Arc::new(job.graph.build()),
        mapping: job.mapping,
        drift,
        pending: job.pending_attempts.map(|attempts| PendingRepair {
            attempts,
            // The pre-crash deadline is meaningless on the new clock:
            // an armed pending repair is due immediately.
            next_due_ns: 0,
        }),
        supervisor: Supervisor::restored(job.repairs_since_check),
        scratch: MapperScratch::new(),
    }
}

// ---------------------------------------------------------------------------
// Recovery driver
// ---------------------------------------------------------------------------

fn validate_events(
    events: &[ChurnEvent],
    num_physical_links: u32,
    seq: u64,
) -> Result<(), RecoveryError> {
    for ev in events {
        if let ChurnEvent::LinkDegraded { link, .. } = ev {
            if *link >= num_physical_links {
                return Err(RecoveryError::InvalidReplay {
                    seq,
                    context: "link id past this topology",
                });
            }
        }
    }
    Ok(())
}

impl MappingService {
    /// Recovers a service from its durability directory
    /// (`cfg.durability`) on the wall clock. `machine` and `alloc`
    /// are the *genesis* arguments the original service was built
    /// with: snapshots store only the fault mask and allocation
    /// membership, which are re-imposed on the pristine machine
    /// through the same `degrade_link` path an uninterrupted run
    /// takes.
    ///
    /// The recovered resident job (mapping, drift, fault state,
    /// allocation) is bit-identical to an uninterrupted run over the
    /// surviving operation prefix (`RecoveryReport::last_seq`).
    /// Journaling then resumes on the surviving file, so repeated
    /// crash/recover cycles compose.
    pub fn recover(
        machine: Machine,
        alloc: Allocation,
        cfg: ServiceConfig,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        Self::recover_with_clock(machine, alloc, cfg, ServiceClock::monotonic())
    }

    /// [`MappingService::recover`] on an explicit clock.
    pub fn recover_with_clock(
        mut machine: Machine,
        alloc: Allocation,
        cfg: ServiceConfig,
        clock: ServiceClock,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let Some(dur_cfg) = cfg.durability.clone() else {
            return Err(RecoveryError::NotConfigured);
        };
        let mut report = RecoveryReport::default();
        let mut alloc = alloc;
        let mut restored: Option<ResidentJob> = None;

        // 1. Newest valid snapshot wins: primary, then the rotated
        //    fallback, then genesis. "Valid" = checksum AND structural
        //    validation against this machine; nothing is applied until
        //    both pass.
        let chain = [
            (snapshot_path(&dur_cfg.dir), SnapshotSource::Primary),
            (snapshot_old_path(&dur_cfg.dir), SnapshotSource::Fallback),
        ];
        for (path, source) in chain {
            match read_snapshot(&path)? {
                SnapshotRead::Missing => continue,
                SnapshotRead::Corrupt => {
                    report.corrupt_snapshots += 1;
                    continue;
                }
                SnapshotRead::Valid(payload) => {
                    let Some(state) = decode_snapshot_payload(&payload) else {
                        report.corrupt_snapshots += 1;
                        continue;
                    };
                    if !validate_snapshot(&state, &machine) {
                        report.corrupt_snapshots += 1;
                        continue;
                    }
                    if !machine.apply_fault_snapshot(&state.fault) {
                        report.corrupt_snapshots += 1;
                        continue;
                    }
                    let mut rebuilt = Allocation::from_nodes(
                        &machine,
                        state.alloc_nodes,
                        machine.procs_per_node(),
                    );
                    rebuilt.set_procs(state.alloc_procs);
                    alloc = rebuilt;
                    restored = state.job.map(restore_job);
                    report.snapshot_seq = state.covers_seq;
                    report.snapshot_source = source;
                    break;
                }
            }
        }

        // 2. Scan the journal; truncate any torn/corrupt tail in
        //    place so the file ends on the last checksum-valid frame.
        let jpath = journal_path(&dur_cfg.dir);
        let (frames, valid_len, file_len) = match scan_journal(&jpath)? {
            Some(scan) => (scan.frames, scan.valid_len, scan.file_len),
            None => {
                // No journal at all (the snapshot carries everything):
                // start a fresh one so appends can resume.
                let mut f = OpenOptions::new()
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&jpath)
                    .map_err(|source| RecoveryError::Io {
                        context: "create journal",
                        source,
                    })?;
                f.write_all(JOURNAL_MAGIC)
                    .and_then(|()| f.write_all(&FORMAT_VERSION.to_le_bytes()))
                    .map_err(|source| RecoveryError::Io {
                        context: "write journal header",
                        source,
                    })?;
                (Vec::new(), HEADER_LEN, HEADER_LEN)
            }
        };
        if valid_len < file_len {
            report.truncated_bytes = file_len - valid_len;
            let f = OpenOptions::new()
                .write(true)
                .open(&jpath)
                .map_err(|source| RecoveryError::Io {
                    context: "open journal for truncation",
                    source,
                })?;
            f.set_len(valid_len.max(HEADER_LEN))
                .map_err(|source| RecoveryError::Io {
                    context: "truncate torn tail",
                    source,
                })?;
            if valid_len < HEADER_LEN {
                // Even the header was torn: rewrite it.
                let mut f = OpenOptions::new()
                    .write(true)
                    .truncate(true)
                    .open(&jpath)
                    .map_err(|source| RecoveryError::Io {
                        context: "rewrite journal header",
                        source,
                    })?;
                f.write_all(JOURNAL_MAGIC)
                    .and_then(|()| f.write_all(&FORMAT_VERSION.to_le_bytes()))
                    .map_err(|source| RecoveryError::Io {
                        context: "rewrite journal header",
                        source,
                    })?;
            }
        }

        // 3. Decode and validate the replay suffix up front (pure):
        //    a checksum-valid but undecodable frame is a typed error,
        //    never a panic or a silent skip.
        let covers_seq = report.snapshot_seq;
        let num_phys = machine.topology().num_physical_links() as u32;
        let mut last_seq = covers_seq;
        let mut replay = Vec::new();
        for (seq, payload) in &frames {
            last_seq = last_seq.max(*seq);
            if *seq <= covers_seq {
                report.frames_skipped += 1;
                continue;
            }
            let Some(rec) = JournalRecord::decode(payload) else {
                return Err(RecoveryError::CorruptRecord { seq: *seq });
            };
            if let JournalRecord::Churn(events) = &rec {
                validate_events(events, num_phys, *seq)?;
            }
            replay.push(rec);
        }
        report.last_seq = last_seq;

        // 4. Assemble the inner state (no workers yet — a timed retry
        //    racing the replay would fork history) and re-run the
        //    suffix through the real operation paths. The journal stays
        //    detached during replay so nothing is re-journaled.
        let inner = Self::build_inner(machine, alloc, cfg, clock);
        {
            let mut st = inner.write_state();
            st.job = restored;
            if let Some(job) = &st.job {
                inner.mirror_drift(&job.drift);
                if job.pending.is_some() {
                    inner.pending_due_ns.store(0, Ordering::Release);
                }
            }
        }
        for rec in replay {
            match rec {
                JournalRecord::Install {
                    num_tasks,
                    messages,
                    weights,
                } => {
                    let parts = journal::TaskGraphParts {
                        num_tasks,
                        messages,
                        weights,
                    };
                    inner.install_job(Arc::new(parts.build()));
                }
                JournalRecord::Churn(events) => {
                    inner.apply_churn(&events);
                }
                JournalRecord::Retry => {
                    inner.retry_pending(true);
                }
                JournalRecord::Polish => {
                    inner.polish_now();
                }
            }
            report.frames_replayed += 1;
        }
        report.had_job = inner.read_state().job.is_some();

        // 5. Resume journaling on the surviving file and open for
        //    business.
        match Durability::resume(&dur_cfg, last_seq + 1, report.frames_replayed as u64) {
            Ok(journal) => {
                *inner.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(journal);
            }
            Err(_) => {
                inner.stats.journal_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
        Ok((Self::start(inner), report))
    }
}
