//! Worker threads: drain the admission queue, serve requests behind
//! `catch_unwind`, and run retry housekeeping while idle.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use umpa_core::{map_tasks_with, MapperScratch};

use crate::ladder::{select_kind, LadderRung};
use crate::request::{Envelope, MapReply, ServiceError};
use crate::service::ServiceInner;

/// Idle poll period: how often a blocked worker wakes to check the
/// retry schedule and the shutdown signal.
const POLL: Duration = Duration::from_micros(500);

/// Spawns `cfg.workers` threads sharing the queue receiver. Each
/// worker owns a warm [`MapperScratch`], so steady-state serving does
/// not allocate. The caller keeps its own handle on the shared
/// receiver so a `workers: 0` service still buffers (and bounds) the
/// queue instead of seeing a disconnected channel.
pub(crate) fn spawn(
    inner: &Arc<ServiceInner>,
    rx: &Arc<Mutex<Receiver<Envelope>>>,
) -> Vec<JoinHandle<()>> {
    (0..inner.cfg.workers)
        .map(|_| {
            let inner = Arc::clone(inner);
            let rx = Arc::clone(rx);
            thread::spawn(move || worker_loop(&inner, &rx))
        })
        .collect()
}

fn worker_loop(inner: &ServiceInner, rx: &Mutex<Receiver<Envelope>>) {
    let mut scratch = MapperScratch::new();
    loop {
        // Hold the receiver lock only for the dequeue itself, so
        // sibling workers can pick up the next request while this one
        // serves.
        let msg = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(POLL)
        };
        match msg {
            Ok(env) => {
                inner.depth.fetch_sub(1, Ordering::AcqRel);
                serve(inner, env, &mut scratch);
                inner.retry_pending(false);
            }
            Err(RecvTimeoutError::Timeout) => {
                inner.retry_pending(false);
            }
            // Queue drained and the service handle dropped: exit.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Serves one envelope. The mapping computation runs inside
/// `catch_unwind`: a panicking request is answered with a typed
/// [`ServiceError::Panicked`] and the worker keeps serving.
fn serve(inner: &ServiceInner, env: Envelope, scratch: &mut MapperScratch) {
    match env {
        Envelope::Map {
            job,
            submitted_ns,
            reply,
        } => {
            let picked_ns = inner.clock.now_ns();
            let queue_ns = picked_ns.saturating_sub(submitted_ns);
            let deadline_ns = job.deadline_ns.unwrap_or(inner.cfg.default_deadline_ns);
            let budget_ns = deadline_ns.saturating_sub(queue_ns);
            let requested = job.kind.unwrap_or(inner.cfg.mapper);
            let depth = inner.depth.load(Ordering::Acquire);
            let kind = select_kind(requested, budget_ns, depth, &inner.cfg, &inner.costs);
            let rung = LadderRung::of(kind);
            let tasks = job.tasks;
            let computed = catch_unwind(AssertUnwindSafe(|| {
                let st = inner.read_state();
                map_tasks_with(
                    &tasks,
                    &st.machine,
                    &st.alloc,
                    kind,
                    &inner.cfg.pipeline,
                    scratch,
                )
                .fine_mapping
            }));
            let done_ns = inner.clock.now_ns();
            let service_ns = done_ns.saturating_sub(picked_ns);
            let total_ns = done_ns.saturating_sub(submitted_ns);
            match computed {
                Ok(mapping) => {
                    inner.costs.observe(rung, service_ns);
                    inner.stats.served_by_rung[rung.index()].fetch_add(1, Ordering::AcqRel);
                    if total_ns > deadline_ns {
                        inner.stats.deadline_misses.fetch_add(1, Ordering::AcqRel);
                    }
                    let _ = reply.send(Ok(MapReply {
                        mapping,
                        served_with: kind,
                        rung,
                        queue_ns,
                        service_ns,
                        total_ns,
                        deadline_ns,
                    }));
                }
                Err(_) => {
                    inner.stats.panics.fetch_add(1, Ordering::AcqRel);
                    let _ = reply.send(Err(ServiceError::Panicked));
                }
            }
        }
        Envelope::Poison { reply } => {
            let poisoned: Result<(), _> = catch_unwind(|| {
                // tidy-allow: panic-freedom (deliberate: the isolation test's poisoned request; caught on the line above)
                panic!("poisoned request (isolation test)");
            });
            debug_assert!(poisoned.is_err());
            inner.stats.panics.fetch_add(1, Ordering::AcqRel);
            let _ = reply.send(Err(ServiceError::Panicked));
        }
    }
}
