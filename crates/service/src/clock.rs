//! Service time source.
//!
//! Every deadline, backoff and latency in the service is measured
//! against one [`ServiceClock`] so tests can substitute a manually
//! advanced counter for the wall clock: the ladder, the retry
//! scheduler and the latency stats then become fully deterministic
//! (seed + event stream ⇒ same decisions), which is what the
//! determinism soak asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic nanosecond source: the wall clock in production, a shared
/// counter under test.
#[derive(Clone, Debug)]
pub enum ServiceClock {
    /// Wall time relative to the service's start instant.
    Monotonic(Instant),
    /// A manually advanced counter (see [`ManualClock`]).
    Manual(Arc<AtomicU64>),
}

impl ServiceClock {
    /// The production clock.
    pub fn monotonic() -> Self {
        // tidy-allow: determinism (the one wall-clock anchor of the service; tests swap in ServiceClock::manual)
        ServiceClock::Monotonic(Instant::now())
    }

    /// A test clock starting at 0 ns, advanced through the returned
    /// handle.
    pub fn manual() -> (Self, ManualClock) {
        let cell = Arc::new(AtomicU64::new(0));
        (
            ServiceClock::Manual(Arc::clone(&cell)),
            ManualClock { cell },
        )
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            ServiceClock::Monotonic(origin) => origin.elapsed().as_nanos() as u64,
            ServiceClock::Manual(cell) => cell.load(Ordering::Acquire),
        }
    }
}

/// Handle advancing a [`ServiceClock::Manual`] clock.
#[derive(Clone, Debug)]
pub struct ManualClock {
    cell: Arc<AtomicU64>,
}

impl ManualClock {
    /// Moves the clock forward by `ns`.
    pub fn advance_ns(&self, ns: u64) {
        self.cell.fetch_add(ns, Ordering::AcqRel);
    }

    /// Current reading, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let (clock, handle) = ServiceClock::manual();
        assert_eq!(clock.now_ns(), 0);
        handle.advance_ns(250);
        handle.advance_ns(250);
        assert_eq!(clock.now_ns(), 500);
        assert_eq!(handle.now_ns(), 500);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = ServiceClock::monotonic();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
