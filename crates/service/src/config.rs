//! Service configuration: admission, deadlines, retry, supervision and
//! durability policies.

use std::path::PathBuf;

use umpa_core::{MapperKind, PipelineConfig, RemapConfig};

use crate::journal::CrashSwitch;

/// Crash-safety settings (DESIGN.md §18): where the write-ahead churn
/// journal and checksummed snapshots live, and how often state is
/// snapshotted. Durability is opt-in
/// (`ServiceConfig::durability: Option<_>`) and entirely off the
/// map-request hot path — only churn/commit mutations append frames.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding `journal.bin`, `snapshot.bin` and
    /// `snapshot.old.bin`. Created if absent.
    pub dir: PathBuf,
    /// Appended frames between snapshots (`0` = journal only, never
    /// snapshot). Snapshots bound recovery *replay* time; the journal
    /// itself is append-only and grows with churn volume.
    pub snapshot_every: u64,
    /// `fsync` the journal after every frame (durability against OS
    /// crashes, not just process death). Off by default: the frame is
    /// flushed to the OS either way.
    pub fsync: bool,
    /// Deterministic crash injection for the chaos harness
    /// (`tests/recovery.rs`); `None` in production.
    #[doc(hidden)]
    pub crash: Option<CrashSwitch>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default snapshot ration.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 64,
            fsync: false,
            crash: None,
        }
    }
}

/// Bounded-backoff policy for transient `Infeasible` repairs: how
/// often (and how long) the service keeps retrying displaced work
/// before surfacing a typed [`ServiceError::RepairExhausted`]
/// (see [`crate::ServiceError`]).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Give up (typed error, never a panic) after this many attempts.
    /// Capacity-restoring events (`NodesAdded`) still re-arm the
    /// repair afterwards.
    pub max_attempts: u32,
    /// Backoff before the first timed retry, nanoseconds.
    pub base_backoff_ns: u64,
    /// Backoff cap; attempts double the delay up to here.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff_ns: 1_000_000,  // 1 ms
            max_backoff_ns: 100_000_000, // 100 ms
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (1-based), doubling from the
    /// base and saturating at the cap.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.base_backoff_ns
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ns)
    }
}

/// Churn-drift supervisor policy: when to compare the live (repaired)
/// mapping against a from-scratch baseline, and how hard to push it
/// back under the drift bound.
#[derive(Clone, Debug)]
pub struct SupervisorPolicy {
    /// Repairs between drift checks (`K`). The check itself may cost a
    /// from-scratch baseline re-map, so it is rationed.
    pub check_every: u32,
    /// Tolerated live-vs-baseline WH drift (`0.15` = 15 %); above it
    /// the supervisor polishes, and adopts the baseline outright if
    /// polish alone cannot close the gap.
    pub max_drift: f64,
    /// Follow the WH polish with a congestion polish (Algorithm 3,
    /// volume variant).
    pub cong_polish: bool,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            check_every: 16,
            max_drift: 0.15,
            cong_polish: true,
        }
    }
}

/// Full service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads consuming the admission queue. `0` is legal (no
    /// consumers — submissions queue up to capacity, then shed), which
    /// the backpressure tests rely on.
    pub workers: usize,
    /// Admission-queue bound: submissions beyond this depth are shed
    /// with [`Submit::Rejected`](crate::Submit::Rejected) instead of
    /// growing the queue.
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry their own, nanoseconds
    /// (admission to response).
    pub default_deadline_ns: u64,
    /// Top rung of the degradation ladder — the mapper a request gets
    /// when its budget allows (requests may override per-job).
    pub mapper: MapperKind,
    /// Queue depth at which the ladder sheds one extra rung even when
    /// the time budget would allow more (overload degrades quality,
    /// not latency).
    pub pressure_depth: usize,
    /// Multiplier on the rung cost estimate when checking it against
    /// the remaining budget (headroom for estimate error).
    pub safety_factor: f64,
    /// Two-phase pipeline settings used by every rung.
    pub pipeline: PipelineConfig,
    /// Incremental-repair settings for churn events.
    pub remap: RemapConfig,
    /// Infeasible-repair retry policy.
    pub retry: RetryPolicy,
    /// Drift-supervisor policy.
    pub supervisor: SupervisorPolicy,
    /// Crash-safe durability (write-ahead journal + snapshots);
    /// `None` (the default) keeps all state in memory.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            default_deadline_ns: 50_000_000, // 50 ms
            mapper: MapperKind::GreedyMc,
            pressure_depth: 32,
            safety_factor: 2.0,
            pipeline: PipelineConfig::default(),
            remap: RemapConfig::default(),
            retry: RetryPolicy::default(),
            supervisor: SupervisorPolicy::default(),
            durability: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ns: 1_000,
            max_backoff_ns: 6_000,
        };
        assert_eq!(p.backoff_ns(1), 1_000);
        assert_eq!(p.backoff_ns(2), 2_000);
        assert_eq!(p.backoff_ns(3), 4_000);
        assert_eq!(p.backoff_ns(4), 6_000); // capped
        assert_eq!(p.backoff_ns(64), 6_000); // shift clamped, no overflow
    }
}
