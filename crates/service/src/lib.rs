//! `umpa-service` — the always-on mapping service shell.
//!
//! The paper's premise is that topology-aware mapping is cheap enough
//! to run *online*, at job-launch time. This crate supplies the
//! long-running shell that premise implies (std-only, no async
//! runtime): a [`MappingService`] owning the shared machine /
//! allocation / resident-job state, with three robustness layers on
//! top of the `umpa-core` engine:
//!
//! * **Bounded admission with explicit backpressure** — map requests
//!   enter through a `sync_channel` of fixed capacity consumed by
//!   worker threads (each with a warm [`MapperScratch`] pool); when
//!   the queue is full the submitter gets
//!   [`Submit::Rejected`]` { queue_depth }`, never unbounded growth.
//! * **Per-request deadlines with a degradation ladder** — each
//!   request carries a time budget; when the budget is tight or the
//!   queue is deep the service steps down
//!   `cong_refine → wh_refine → greedy-only → projection`
//!   ([`LadderRung`]), recording which rung served the request, so
//!   overload degrades quality instead of latency. Panicking requests
//!   are isolated with `catch_unwind` and answered with a typed
//!   [`ServiceError::Panicked`].
//! * **Churn repair with bounded retry and a drift supervisor** —
//!   churn events repair the resident job via `remap_incremental`;
//!   transient `Infeasible` outcomes are retried on a bounded
//!   exponential backoff (converging when `NodesAdded` restores
//!   capacity, surfacing [`ServiceError::RepairExhausted`] after the
//!   budget — never a panic), and a supervisor tracks the live
//!   mapping's WH drift against a periodically refreshed from-scratch
//!   baseline, polishing (or adopting the baseline) when drift
//!   crosses the bound.
//!
//! See DESIGN.md §16 for the architecture and the policy contracts.
//!
//! [`MapperScratch`]: umpa_core::MapperScratch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod ladder;
pub mod request;
pub mod service;
pub mod stats;
mod supervisor;
mod worker;

pub use clock::{ManualClock, ServiceClock};
pub use config::{RetryPolicy, ServiceConfig, SupervisorPolicy};
pub use ladder::LadderRung;
pub use request::{MapJob, MapReply, MapTicket, RepairReport, ServiceError, Submit};
pub use service::MappingService;
pub use stats::StatsSnapshot;

/// Commonly used items.
pub mod prelude {
    pub use crate::clock::{ManualClock, ServiceClock};
    pub use crate::config::{RetryPolicy, ServiceConfig, SupervisorPolicy};
    pub use crate::ladder::LadderRung;
    pub use crate::request::{MapJob, MapReply, MapTicket, RepairReport, ServiceError, Submit};
    pub use crate::service::MappingService;
    pub use crate::stats::StatsSnapshot;
}
