//! `umpa-service` — the always-on mapping service shell.
//!
//! The paper's premise is that topology-aware mapping is cheap enough
//! to run *online*, at job-launch time. This crate supplies the
//! long-running shell that premise implies (std-only, no async
//! runtime): a [`MappingService`] owning the shared machine /
//! allocation / resident-job state, with three robustness layers on
//! top of the `umpa-core` engine:
//!
//! * **Bounded admission with explicit backpressure** — map requests
//!   enter through a `sync_channel` of fixed capacity consumed by
//!   worker threads (each with a warm [`MapperScratch`] pool); when
//!   the queue is full the submitter gets
//!   [`Submit::Rejected`]` { queue_depth }`, never unbounded growth.
//! * **Per-request deadlines with a degradation ladder** — each
//!   request carries a time budget; when the budget is tight or the
//!   queue is deep the service steps down
//!   `cong_refine → wh_refine → greedy-only → projection`
//!   ([`LadderRung`]), recording which rung served the request, so
//!   overload degrades quality instead of latency. Panicking requests
//!   are isolated with `catch_unwind` and answered with a typed
//!   [`ServiceError::Panicked`].
//! * **Churn repair with bounded retry and a drift supervisor** —
//!   churn events repair the resident job via `remap_incremental`;
//!   transient `Infeasible` outcomes are retried on a bounded
//!   exponential backoff (converging when `NodesAdded` restores
//!   capacity, surfacing [`ServiceError::RepairExhausted`] after the
//!   budget — never a panic), and a supervisor tracks the live
//!   mapping's WH drift against a periodically refreshed from-scratch
//!   baseline, polishing (or adopting the baseline) when drift
//!   crosses the bound.
//!
//! A fourth layer makes the state crash-safe: every accepted mutation
//! is written ahead to an on-disk journal with in-tree CRC32 framing,
//! periodically compacted into checksummed snapshots published by
//! atomic rename, and [`MappingService::recover`] rebuilds a resident
//! job **bit-identical** to an uninterrupted run — torn or corrupt
//! journal tails are truncated with a typed report, never a panic
//! ([`RecoveryError`]). A deterministic [`CrashPoint`] injection seam
//! lets the chaos harness kill the write path at every byte boundary
//! that matters.
//!
//! See DESIGN.md §16 for the architecture and the policy contracts,
//! and §18 for the durability formats and recovery contract.
//!
//! [`MapperScratch`]: umpa_core::MapperScratch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod journal;
pub mod ladder;
pub mod recovery;
pub mod request;
pub mod service;
pub mod stats;
mod supervisor;
mod worker;

pub use clock::{ManualClock, ServiceClock};
pub use config::{DurabilityConfig, RetryPolicy, ServiceConfig, SupervisorPolicy};
pub use journal::{CrashPoint, CrashSwitch, JournalError};
pub use ladder::LadderRung;
pub use recovery::{RecoveryError, RecoveryReport, SnapshotSource};
pub use request::{MapJob, MapReply, MapTicket, RepairReport, ServiceError, Submit};
pub use service::MappingService;
pub use stats::StatsSnapshot;

/// Commonly used items.
pub mod prelude {
    pub use crate::clock::{ManualClock, ServiceClock};
    pub use crate::config::{DurabilityConfig, RetryPolicy, ServiceConfig, SupervisorPolicy};
    pub use crate::journal::{CrashPoint, CrashSwitch, JournalError};
    pub use crate::ladder::LadderRung;
    pub use crate::recovery::{RecoveryError, RecoveryReport, SnapshotSource};
    pub use crate::request::{MapJob, MapReply, MapTicket, RepairReport, ServiceError, Submit};
    pub use crate::service::MappingService;
    pub use crate::stats::StatsSnapshot;
}
