//! Service-lifetime counters (lock-free, read via snapshot).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::ladder::LadderRung;

/// Internal atomic counters.
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub served_by_rung: [AtomicU64; LadderRung::COUNT],
    pub deadline_misses: AtomicU64,
    pub panics: AtomicU64,
    pub repairs: AtomicU64,
    pub infeasible: AtomicU64,
    pub retries: AtomicU64,
    pub retry_exhausted: AtomicU64,
    pub drift_checks: AtomicU64,
    pub polishes: AtomicU64,
    pub baseline_adoptions: AtomicU64,
    pub max_queue_depth: AtomicUsize,
    pub journal_appends: AtomicU64,
    pub journal_bytes: AtomicU64,
    pub journal_errors: AtomicU64,
    pub snapshots_written: AtomicU64,
    /// Mirrors of the resident job's `RemapDrift`, refreshed on every
    /// successful repair so readers get drift without the state lock.
    /// The `f64` members travel as raw bits.
    pub drift_repairs: AtomicU64,
    pub drift_displaced_total: AtomicU64,
    pub drift_wh_delta_bits: AtomicU64,
    pub drift_wh_last_bits: AtomicU64,
}

impl ServiceStats {
    /// Records an observed queue depth (keeps the maximum).
    pub fn note_depth(&self, depth: usize) {
        self.max_queue_depth.fetch_max(depth, Ordering::AcqRel);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Acquire);
        StatsSnapshot {
            accepted: load(&self.accepted),
            rejected: load(&self.rejected),
            served_by_rung: [
                load(&self.served_by_rung[0]),
                load(&self.served_by_rung[1]),
                load(&self.served_by_rung[2]),
                load(&self.served_by_rung[3]),
            ],
            deadline_misses: load(&self.deadline_misses),
            panics: load(&self.panics),
            repairs: load(&self.repairs),
            infeasible: load(&self.infeasible),
            retries: load(&self.retries),
            retry_exhausted: load(&self.retry_exhausted),
            drift_checks: load(&self.drift_checks),
            polishes: load(&self.polishes),
            baseline_adoptions: load(&self.baseline_adoptions),
            max_queue_depth: self.max_queue_depth.load(Ordering::Acquire),
            journal_appends: load(&self.journal_appends),
            journal_bytes: load(&self.journal_bytes),
            journal_errors: load(&self.journal_errors),
            snapshots_written: load(&self.snapshots_written),
            drift_repairs: load(&self.drift_repairs),
            drift_displaced_total: load(&self.drift_displaced_total),
            drift_wh_delta_total: f64::from_bits(load(&self.drift_wh_delta_bits)),
            drift_wh_last: f64::from_bits(load(&self.drift_wh_last_bits)),
        }
    }
}

/// Point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Map requests admitted.
    pub accepted: u64,
    /// Map requests shed at admission (backpressure).
    pub rejected: u64,
    /// Requests served per ladder rung, indexed by
    /// [`LadderRung::index`].
    pub served_by_rung: [u64; LadderRung::COUNT],
    /// Accepted requests whose response missed its deadline.
    pub deadline_misses: u64,
    /// Request panics caught (and isolated) by workers.
    pub panics: u64,
    /// Successful incremental repairs of the resident job.
    pub repairs: u64,
    /// Repairs that came back infeasible (entered the retry path).
    pub infeasible: u64,
    /// Retry attempts performed for infeasible repairs.
    pub retries: u64,
    /// Retry budgets exhausted (typed error surfaced).
    pub retry_exhausted: u64,
    /// Drift-supervisor checks run.
    pub drift_checks: u64,
    /// Supervisor polish passes (WH ± congestion) on the live mapping.
    pub polishes: u64,
    /// Times the supervisor adopted the from-scratch baseline.
    pub baseline_adoptions: u64,
    /// Highest admission-queue depth observed.
    pub max_queue_depth: usize,
    /// Journal frames appended (WAL write-path commits).
    pub journal_appends: u64,
    /// Journal bytes appended (frame heads + payloads).
    pub journal_bytes: u64,
    /// Durability write failures absorbed (I/O errors or an injected
    /// crash); the service kept serving from memory.
    pub journal_errors: u64,
    /// Checksummed snapshots atomically published.
    pub snapshots_written: u64,
    /// Resident job's cumulative successful repairs
    /// (`RemapDrift::repairs`, mirrored at the last repair).
    pub drift_repairs: u64,
    /// Tasks displaced across all repairs (`RemapDrift::displaced_total`).
    pub drift_displaced_total: u64,
    /// Cumulative repair WH delta (`RemapDrift::wh_delta_total`).
    pub drift_wh_delta_total: f64,
    /// Live WH recorded by the most recent repair (`RemapDrift::wh_last`).
    pub drift_wh_last: f64,
}

impl StatsSnapshot {
    /// Fraction of submissions shed at admission.
    pub fn shed_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }

    /// Requests served per rung as `(label, count)` pairs.
    pub fn rung_counts(&self) -> [(&'static str, u64); LadderRung::COUNT] {
        let mut out = [("", 0u64); LadderRung::COUNT];
        for (slot, rung) in out.iter_mut().zip(LadderRung::all()) {
            *slot = (rung.label(), self.served_by_rung[rung.index()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_rate_and_rung_labels() {
        let stats = ServiceStats::default();
        stats.accepted.store(30, Ordering::Release);
        stats.rejected.store(10, Ordering::Release);
        stats.served_by_rung[LadderRung::Projection.index()].store(5, Ordering::Release);
        stats.note_depth(7);
        stats.note_depth(3);
        let snap = stats.snapshot();
        assert!((snap.shed_rate() - 0.25).abs() < 1e-12);
        assert_eq!(snap.max_queue_depth, 7);
        assert_eq!(snap.rung_counts()[3], ("projection", 5));
        assert_eq!(StatsSnapshot::default().shed_rate(), 0.0);
    }
}
