//! Crash-safe durability for the service: a write-ahead churn journal
//! plus periodic checksummed snapshots (DESIGN.md §18).
//!
//! Every state *mutation* the service performs — job install, churn
//! application, retry of a pending repair, supervisor polish — is
//! appended to an on-disk journal **before** the in-memory state is
//! touched, while the state write lock is held, so the journal's frame
//! order is exactly the execution order. Map requests (the read-locked
//! hot path) never touch the journal: durability costs land only on
//! the churn/commit path.
//!
//! The format is hand-rolled std-only binary (the §9 shim rule — no
//! serde): little-endian throughout, a 12-byte file header
//! (`magic + version`), then frames of
//! `[payload len: u32][crc32: u32][seq: u64][payload]` where the CRC
//! (IEEE 802.3, table-driven, implemented in-tree) covers the sequence
//! number and payload. Sequence numbers are monotonic from 1 and never
//! reused, which is what lets recovery skip frames a snapshot already
//! covers and detect any non-append corruption as a torn tail.
//!
//! Crash injection: [`CrashSwitch`] is the `ServiceClock`-style seam
//! for the chaos harness. Armed with a [`CrashPoint`] and an
//! occurrence count, it fires deterministically inside the write path
//! — before / mid / after a frame, and around every snapshot fsync and
//! rename — after which the sink permanently refuses writes
//! ([`JournalError::Crashed`]), simulating a killed process whose
//! surviving bytes are exactly the prefix flushed so far.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use umpa_core::ChurnEvent;
use umpa_graph::TaskGraph;

use crate::config::DurabilityConfig;

/// Journal file magic (8 bytes) followed by a `u32` format version.
pub(crate) const JOURNAL_MAGIC: &[u8; 8] = b"UMPAJNL\0";
/// Snapshot file magic (8 bytes) followed by a `u32` format version.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"UMPASNP\0";
/// Current on-disk format version (journal and snapshot move together).
pub(crate) const FORMAT_VERSION: u32 = 1;
/// Bytes of `magic + version` at the head of both file kinds.
pub(crate) const HEADER_LEN: u64 = 12;
/// Bytes of `[len][crc][seq]` in front of every frame payload.
const FRAME_HEAD: usize = 16;
/// Frames whose declared payload exceeds this are torn/corrupt by fiat
/// (no legitimate record comes close; a flipped length byte must not
/// make the scanner try to allocate gigabytes).
const MAX_FRAME_PAYLOAD: u32 = 1 << 28;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, in-tree.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE 802.3 CRC32 of `bytes` (the checksum protecting every journal
/// frame and snapshot payload).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A durability write-path failure. The service *counts* these
/// (`journal_errors` in the stats) and keeps serving from memory —
/// availability over durability — so a full disk degrades persistence,
/// never placement.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation on a journal or snapshot file failed.
    Io {
        /// Which operation failed (static description).
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The injected [`CrashSwitch`] fired: the sink wrote its
    /// deterministic partial prefix and now refuses all writes,
    /// simulating the killed process of the chaos harness.
    Crashed,
    /// The file exists but does not start with this crate's
    /// magic/version — refusing to touch a file we did not write.
    ForeignFile {
        /// Which file was rejected (static description).
        context: &'static str,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { context, source } => write!(f, "journal io ({context}): {source}"),
            JournalError::Crashed => write!(f, "journal sink crashed (injected)"),
            JournalError::ForeignFile { context } => {
                write!(f, "not a journal/snapshot file ({context})")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |source| JournalError::Io { context, source }
}

// ---------------------------------------------------------------------------
// Crash injection seam
// ---------------------------------------------------------------------------

/// A point in the durability write path where the chaos harness can
/// kill the process-under-simulation. The frame points fire once per
/// journal append; the snapshot points once per snapshot attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before any byte of a frame is written: the op is lost entirely.
    BeforeFrame,
    /// Mid-frame: a deterministic partial prefix (half the frame) is
    /// flushed, leaving a torn tail recovery must truncate.
    MidFrame,
    /// After the frame is fully written and flushed, before the append
    /// is acknowledged: the op survives on disk.
    AfterFrame,
    /// Before the snapshot temp file is created.
    BeforeSnapshot,
    /// Mid snapshot write: a partial temp file exists (never renamed
    /// into place, so it can never be mistaken for a snapshot).
    MidSnapshot,
    /// Temp file fully written and fsynced, before any rename.
    AfterSnapshotSync,
    /// Between rotating `snapshot.bin → snapshot.old.bin` and renaming
    /// the temp file into place: only the rotated fallback exists.
    BetweenRenames,
    /// After the new snapshot is atomically in place.
    AfterSnapshot,
}

impl CrashPoint {
    /// Every injection point, in write-path order — the sweep domain
    /// of `tests/recovery.rs`.
    pub const ALL: [CrashPoint; 8] = [
        CrashPoint::BeforeFrame,
        CrashPoint::MidFrame,
        CrashPoint::AfterFrame,
        CrashPoint::BeforeSnapshot,
        CrashPoint::MidSnapshot,
        CrashPoint::AfterSnapshotSync,
        CrashPoint::BetweenRenames,
        CrashPoint::AfterSnapshot,
    ];
}

#[derive(Debug, Default)]
struct CrashSwitchInner {
    /// `(point, remaining occurrences before firing)`.
    armed: Mutex<Option<(CrashPoint, u32)>>,
    fired: AtomicBool,
}

/// Deterministic crash injection for the durability write path — the
/// test seam of the chaos harness (`ServiceClock`-style: always
/// compiled, inert unless armed). Clone handles share the switch.
#[derive(Clone, Debug, Default)]
pub struct CrashSwitch {
    inner: Arc<CrashSwitchInner>,
}

impl CrashSwitch {
    /// A disarmed switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the switch to fire at the `nth` occurrence (1-based) of
    /// `point`. Re-arming replaces any previous arming.
    pub fn arm(&self, point: CrashPoint, nth: u32) {
        let mut armed = self.inner.armed.lock().unwrap_or_else(|e| e.into_inner());
        *armed = Some((point, nth.max(1)));
    }

    /// Whether the switch has fired (the simulated process died).
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Decrements the occurrence countdown when `point` matches;
    /// returns `true` exactly once, when the armed occurrence is hit.
    fn check(&self, point: CrashPoint) -> bool {
        let mut armed = self.inner.armed.lock().unwrap_or_else(|e| e.into_inner());
        match armed.as_mut() {
            Some((p, n)) if *p == point => {
                *n -= 1;
                if *n == 0 {
                    *armed = None;
                    self.inner.fired.store(true, Ordering::Release);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-level codec helpers (shared with `recovery`)
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked reader over a decode buffer: every read returns
/// `None` past the end, so corrupt input can only ever be a typed
/// decode failure — never a panic (the recovery never-panic contract).
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, off: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.off >= self.bytes.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        let s = self.bytes.get(self.off..end)?;
        self.off = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    pub(crate) fn f64_bits(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// One journaled state transition. The journal logs *operations*, not
/// state: recovery replays each record through the same deterministic
/// engine paths an uninterrupted run takes, which is what makes the
/// recovered mapping bit-identical rather than merely equivalent.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum JournalRecord {
    /// `install_job`: the resident task graph, re-mapped from scratch
    /// on replay exactly as the original install did.
    Install {
        /// Task count of the graph.
        num_tasks: usize,
        /// Directed messages in CSR iteration order (`TaskGraph::
        /// messages`) — re-building from these is a bit-exact fixed
        /// point because CSR rows are dedup-merged and sorted.
        messages: Vec<(u32, u32, f64)>,
        /// Per-task weights.
        weights: Vec<f64>,
    },
    /// `apply_churn`: one accepted churn batch.
    Churn(Vec<ChurnEvent>),
    /// A retry of the pending infeasible repair actually executed.
    Retry,
    /// A forced supervisor pass (`polish_now`).
    Polish,
}

const REC_INSTALL: u8 = 0;
const REC_CHURN: u8 = 1;
const REC_RETRY: u8 = 2;
const REC_POLISH: u8 = 3;

const EV_NODE_FAILED: u8 = 0;
const EV_NODES_REMOVED: u8 = 1;
const EV_NODES_ADDED: u8 = 2;
const EV_LINK_DEGRADED: u8 = 3;

fn put_node_list(out: &mut Vec<u8>, nodes: &[u32]) {
    put_u32(out, nodes.len() as u32);
    for &n in nodes {
        put_u32(out, n);
    }
}

fn take_node_list(cur: &mut Cursor<'_>) -> Option<Vec<u32>> {
    let len = cur.u32()? as usize;
    let mut nodes = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        nodes.push(cur.u32()?);
    }
    Some(nodes)
}

pub(crate) fn encode_events(events: &[ChurnEvent], out: &mut Vec<u8>) {
    put_u32(out, events.len() as u32);
    for ev in events {
        match ev {
            ChurnEvent::NodeFailed { node } => {
                out.push(EV_NODE_FAILED);
                put_u32(out, *node);
            }
            ChurnEvent::NodesRemoved { nodes } => {
                out.push(EV_NODES_REMOVED);
                put_node_list(out, nodes);
            }
            ChurnEvent::NodesAdded { nodes } => {
                out.push(EV_NODES_ADDED);
                put_node_list(out, nodes);
            }
            ChurnEvent::LinkDegraded { link, factor } => {
                out.push(EV_LINK_DEGRADED);
                put_u32(out, *link);
                put_f64(out, *factor);
            }
        }
    }
}

pub(crate) fn decode_events(cur: &mut Cursor<'_>) -> Option<Vec<ChurnEvent>> {
    let count = cur.u32()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let ev = match cur.u8()? {
            EV_NODE_FAILED => ChurnEvent::NodeFailed { node: cur.u32()? },
            EV_NODES_REMOVED => ChurnEvent::NodesRemoved {
                nodes: take_node_list(cur)?,
            },
            EV_NODES_ADDED => ChurnEvent::NodesAdded {
                nodes: take_node_list(cur)?,
            },
            EV_LINK_DEGRADED => {
                let link = cur.u32()?;
                let factor = cur.f64_bits()?;
                if !factor.is_finite() || !(0.0..=1.0).contains(&factor) {
                    return None;
                }
                ChurnEvent::LinkDegraded { link, factor }
            }
            _ => return None,
        };
        events.push(ev);
    }
    Some(events)
}

/// Serializes a task graph as `num_tasks`, per-task weights, and the
/// directed messages in CSR iteration order. `f64`s travel as raw bits
/// so decode → [`TaskGraph::from_messages`] reproduces the CSR arrays
/// bit-exactly (rows are dedup-merged and sorted on build, and the
/// serialized order is already sorted).
pub(crate) fn encode_task_graph(tg: &TaskGraph, out: &mut Vec<u8>) {
    let n = tg.num_tasks();
    put_u64(out, n as u64);
    for t in 0..n as u32 {
        put_f64(out, tg.task_weight(t));
    }
    put_u64(out, tg.num_messages() as u64);
    for (s, t, v) in tg.messages() {
        put_u32(out, s);
        put_u32(out, t);
        put_f64(out, v);
    }
}

/// Decoded-and-validated task-graph parts: endpoints in range, weights
/// and volumes finite, so [`TaskGraphParts::build`] can hand them to
/// graph construction without tripping its preconditions.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct TaskGraphParts {
    pub num_tasks: usize,
    pub messages: Vec<(u32, u32, f64)>,
    pub weights: Vec<f64>,
}

impl TaskGraphParts {
    /// Rebuilds the task graph. Bit-exact: the serialized message
    /// order is the CSR iteration order, and CSR construction
    /// dedup-merges and sorts rows, so the rebuilt arrays (and every
    /// float accumulation order downstream) match the original.
    pub(crate) fn build(self) -> TaskGraph {
        TaskGraph::from_messages(self.num_tasks, self.messages, Some(self.weights))
    }
}

/// Decodes and *validates* task-graph parts — corrupt bytes are a
/// `None`, never a panic inside graph construction.
pub(crate) fn decode_task_graph_parts(cur: &mut Cursor<'_>) -> Option<TaskGraphParts> {
    let n = usize::try_from(cur.u64()?).ok()?;
    if n > (u32::MAX as usize) {
        return None;
    }
    let mut weights = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let w = cur.f64_bits()?;
        if !w.is_finite() {
            return None;
        }
        weights.push(w);
    }
    let m = usize::try_from(cur.u64()?).ok()?;
    let mut messages = Vec::with_capacity(m.min(1 << 24));
    for _ in 0..m {
        let s = cur.u32()?;
        let t = cur.u32()?;
        let v = cur.f64_bits()?;
        if (s as usize) >= n || (t as usize) >= n || !v.is_finite() {
            return None;
        }
        messages.push((s, t, v));
    }
    Some(TaskGraphParts {
        num_tasks: n,
        messages,
        weights,
    })
}

impl JournalRecord {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Install {
                num_tasks,
                messages,
                weights,
            } => {
                out.push(REC_INSTALL);
                put_u64(out, *num_tasks as u64);
                for w in weights {
                    put_f64(out, *w);
                }
                put_u64(out, messages.len() as u64);
                for &(s, t, v) in messages {
                    put_u32(out, s);
                    put_u32(out, t);
                    put_f64(out, v);
                }
            }
            JournalRecord::Churn(events) => {
                out.push(REC_CHURN);
                encode_events(events, out);
            }
            JournalRecord::Retry => out.push(REC_RETRY),
            JournalRecord::Polish => out.push(REC_POLISH),
        }
    }

    /// Decodes a record from a CRC-verified frame payload. `None`
    /// means the payload is structurally invalid despite a valid
    /// checksum — a format/version defect, reported by recovery as a
    /// typed corrupt-record error.
    pub(crate) fn decode(bytes: &[u8]) -> Option<JournalRecord> {
        let mut cur = Cursor::new(bytes);
        let rec = match cur.u8()? {
            REC_INSTALL => {
                let parts = decode_task_graph_parts(&mut cur)?;
                JournalRecord::Install {
                    num_tasks: parts.num_tasks,
                    messages: parts.messages,
                    weights: parts.weights,
                }
            }
            REC_CHURN => JournalRecord::Churn(decode_events(&mut cur)?),
            REC_RETRY => JournalRecord::Retry,
            REC_POLISH => JournalRecord::Polish,
            _ => return None,
        };
        if !cur.is_empty() {
            return None; // trailing garbage inside a checksummed frame
        }
        Some(rec)
    }

    /// Builds the install record for a task graph.
    pub(crate) fn install(tg: &TaskGraph) -> JournalRecord {
        JournalRecord::Install {
            num_tasks: tg.num_tasks(),
            messages: tg.messages().collect(),
            weights: (0..tg.num_tasks() as u32)
                .map(|t| tg.task_weight(t))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The write side
// ---------------------------------------------------------------------------

/// What one successful append wrote.
#[derive(Clone, Copy, Debug)]
pub struct AppendInfo {
    /// The frame's monotonic sequence number.
    pub seq: u64,
    /// Bytes appended (frame head + payload).
    pub bytes: u64,
}

/// The durability sink: an append-only journal plus the snapshot
/// writer, both rooted in one directory
/// (`journal.bin`, `snapshot.bin`, `snapshot.old.bin`,
/// `snapshot.tmp`). All writes happen under the service's state write
/// lock, so frame order is execution order.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    file: File,
    fsync: bool,
    snapshot_every: u64,
    crash: Option<CrashSwitch>,
    /// Injected crash happened: refuse all further writes.
    crashed: bool,
    next_seq: u64,
    frames_since_snapshot: u64,
    buf: Vec<u8>,
    frame: Vec<u8>,
}

pub(crate) fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.bin")
}

pub(crate) fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

pub(crate) fn snapshot_old_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.old.bin")
}

fn snapshot_tmp_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.tmp")
}

impl Durability {
    /// Starts a **fresh** durability root for a brand-new service:
    /// creates the directory, truncates any previous journal to an
    /// empty header, and removes stale snapshots (a new service is a
    /// new history — resuming an old one is [`recover`]'s job).
    ///
    /// [`recover`]: crate::MappingService::recover
    pub fn create(cfg: &DurabilityConfig) -> Result<Self, JournalError> {
        fs::create_dir_all(&cfg.dir).map_err(io_err("create durability dir"))?;
        for stale in [
            snapshot_path(&cfg.dir),
            snapshot_old_path(&cfg.dir),
            snapshot_tmp_path(&cfg.dir),
        ] {
            match fs::remove_file(&stale) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("remove stale snapshot")(e)),
            }
        }
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(journal_path(&cfg.dir))
            .map_err(io_err("create journal"))?;
        file.write_all(JOURNAL_MAGIC)
            .and_then(|()| file.write_all(&FORMAT_VERSION.to_le_bytes()))
            .and_then(|()| file.flush())
            .map_err(io_err("write journal header"))?;
        Ok(Self::assemble(cfg, file, 1, 0))
    }

    /// Re-opens an existing journal for appending after recovery
    /// validated it (and truncated any torn tail). `next_seq` continues
    /// the monotonic numbering; `frames_since_snapshot` seeds the
    /// snapshot ration with the replayed suffix length.
    pub(crate) fn resume(
        cfg: &DurabilityConfig,
        next_seq: u64,
        frames_since_snapshot: u64,
    ) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(journal_path(&cfg.dir))
            .map_err(io_err("reopen journal"))?;
        Ok(Self::assemble(cfg, file, next_seq, frames_since_snapshot))
    }

    fn assemble(cfg: &DurabilityConfig, file: File, next_seq: u64, frames: u64) -> Self {
        Durability {
            dir: cfg.dir.clone(),
            file,
            fsync: cfg.fsync,
            snapshot_every: cfg.snapshot_every,
            crash: cfg.crash.clone(),
            crashed: false,
            next_seq,
            frames_since_snapshot: frames,
            buf: Vec::new(),
            frame: Vec::new(),
        }
    }

    /// Sequence number of the most recently appended frame (0 when
    /// nothing has been appended yet).
    pub(crate) fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Fires the armed crash point if it matches; afterwards the sink
    /// refuses every write.
    fn crash_check(&mut self, point: CrashPoint) -> Result<(), JournalError> {
        if self.crash.as_ref().is_some_and(|c| c.check(point)) {
            self.crashed = true;
            return Err(JournalError::Crashed);
        }
        Ok(())
    }

    /// Appends one record: WAL discipline means callers invoke this
    /// **before** mutating in-memory state, and a frame is either
    /// fully flushed or (under an injected crash) a truncatable torn
    /// prefix.
    pub(crate) fn append(&mut self, rec: &JournalRecord) -> Result<AppendInfo, JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        self.crash_check(CrashPoint::BeforeFrame)?;
        let seq = self.next_seq;
        self.buf.clear();
        rec.encode_into(&mut self.buf);
        self.frame.clear();
        put_u32(&mut self.frame, self.buf.len() as u32);
        let mut crc_input = Vec::with_capacity(8 + self.buf.len());
        put_u64(&mut crc_input, seq);
        crc_input.extend_from_slice(&self.buf);
        put_u32(&mut self.frame, crc32(&crc_input));
        put_u64(&mut self.frame, seq);
        self.frame.extend_from_slice(&self.buf);
        if self
            .crash
            .as_ref()
            .is_some_and(|c| c.check(CrashPoint::MidFrame))
        {
            // Deterministic torn write: half the frame reaches disk.
            let half = self.frame.len() / 2;
            let partial: Vec<u8> = self.frame.iter().take(half).copied().collect();
            let _ = self
                .file
                .write_all(&partial)
                .and_then(|()| self.file.flush());
            self.crashed = true;
            return Err(JournalError::Crashed);
        }
        self.file
            .write_all(&self.frame)
            .and_then(|()| self.file.flush())
            .map_err(io_err("append frame"))?;
        if self.fsync {
            self.file.sync_data().map_err(io_err("fsync journal"))?;
        }
        self.next_seq += 1;
        self.frames_since_snapshot += 1;
        let bytes = self.frame.len() as u64;
        self.crash_check(CrashPoint::AfterFrame)?;
        Ok(AppendInfo { seq, bytes })
    }

    /// Appends a churn batch — the public entry the bench harness uses
    /// to measure steady-state journal overhead in isolation.
    pub fn append_churn(&mut self, events: &[ChurnEvent]) -> Result<AppendInfo, JournalError> {
        self.append(&JournalRecord::Churn(events.to_vec()))
    }

    /// Whether the snapshot ration has elapsed (`snapshot_every`
    /// appended frames since the last successful snapshot).
    pub(crate) fn should_snapshot(&self) -> bool {
        !self.crashed
            && self.snapshot_every > 0
            && self.frames_since_snapshot >= self.snapshot_every
    }

    /// Writes a checksummed snapshot atomically: temp file, fsync,
    /// rotate the previous snapshot to `snapshot.old.bin`, rename into
    /// place. A crash anywhere in this sequence leaves either the old
    /// snapshot, the rotated fallback, or the new one — never a
    /// half-written file under the live name.
    pub(crate) fn write_snapshot(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        self.crash_check(CrashPoint::BeforeSnapshot)?;
        self.frame.clear();
        self.frame.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut self.frame, FORMAT_VERSION);
        put_u32(&mut self.frame, crc32(payload));
        self.frame.extend_from_slice(payload);
        let tmp = snapshot_tmp_path(&self.dir);
        if self
            .crash
            .as_ref()
            .is_some_and(|c| c.check(CrashPoint::MidSnapshot))
        {
            let half = self.frame.len() / 2;
            let partial: Vec<u8> = self.frame.iter().take(half).copied().collect();
            let _ = fs::write(&tmp, &partial);
            self.crashed = true;
            return Err(JournalError::Crashed);
        }
        let mut f = File::create(&tmp).map_err(io_err("create snapshot tmp"))?;
        f.write_all(&self.frame)
            .and_then(|()| f.flush())
            .map_err(io_err("write snapshot tmp"))?;
        f.sync_data().map_err(io_err("fsync snapshot tmp"))?;
        drop(f);
        self.crash_check(CrashPoint::AfterSnapshotSync)?;
        let live = snapshot_path(&self.dir);
        match fs::rename(&live, snapshot_old_path(&self.dir)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("rotate snapshot")(e)),
        }
        self.crash_check(CrashPoint::BetweenRenames)?;
        fs::rename(&tmp, &live).map_err(io_err("publish snapshot"))?;
        self.crash_check(CrashPoint::AfterSnapshot)?;
        self.frames_since_snapshot = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The read side (used by recovery)
// ---------------------------------------------------------------------------

/// Result of scanning a journal file: the valid frame prefix and where
/// (if anywhere) the torn/corrupt tail starts.
#[derive(Debug)]
pub(crate) struct JournalScan {
    /// `(seq, payload)` for every valid frame, in file order.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// Byte offset just past the last valid frame.
    pub valid_len: u64,
    /// Total file length (`> valid_len` means a torn tail exists).
    pub file_len: u64,
}

/// Scans the journal's frames, verifying length, CRC and sequence
/// monotonicity; stops at the first invalid frame (everything after a
/// bad frame is untrustworthy). `Ok(None)` when the file is absent.
pub(crate) fn scan_journal(path: &Path) -> Result<Option<JournalScan>, JournalError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(io_err("read journal"))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("open journal")(e)),
    }
    let file_len = bytes.len() as u64;
    let header = bytes.get(..HEADER_LEN as usize);
    let Some(header) = header else {
        // Shorter than a header: even the header is torn. Treat the
        // whole file as tail; recovery truncates to zero and recreates.
        return Ok(Some(JournalScan {
            frames: Vec::new(),
            valid_len: 0,
            file_len,
        }));
    };
    if &header[..8] != JOURNAL_MAGIC {
        return Err(JournalError::ForeignFile {
            context: "journal magic",
        });
    }
    if header[8..12] != FORMAT_VERSION.to_le_bytes() {
        return Err(JournalError::ForeignFile {
            context: "journal version",
        });
    }
    let mut frames = Vec::new();
    let mut off = HEADER_LEN as usize;
    let mut prev_seq = 0u64;
    // Loop ends on a torn frame head (or clean EOF when off == len).
    while let Some(head) = bytes.get(off..off + FRAME_HEAD) {
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        let seq = u64::from_le_bytes([
            head[8], head[9], head[10], head[11], head[12], head[13], head[14], head[15],
        ]);
        if len > MAX_FRAME_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(off + FRAME_HEAD..off + FRAME_HEAD + len as usize) else {
            break; // torn payload
        };
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        put_u64(&mut crc_input, seq);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            break; // corrupt frame
        }
        if seq <= prev_seq {
            break; // non-monotonic: not an append of ours
        }
        prev_seq = seq;
        frames.push((seq, payload.to_vec()));
        off += FRAME_HEAD + len as usize;
    }
    Ok(Some(JournalScan {
        frames,
        valid_len: off as u64,
        file_len,
    }))
}

/// Outcome of reading one snapshot file.
#[derive(Debug)]
pub(crate) enum SnapshotRead {
    /// File absent.
    Missing,
    /// File present but torn/corrupt (bad magic, version, CRC, or
    /// truncation) — the caller falls back, it never trusts the bytes.
    Corrupt,
    /// Checksum-valid payload.
    Valid(Vec<u8>),
}

/// Reads and checksum-verifies a snapshot file.
pub(crate) fn read_snapshot(path: &Path) -> Result<SnapshotRead, JournalError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(io_err("read snapshot"))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(SnapshotRead::Missing),
        Err(e) => return Err(io_err("open snapshot")(e)),
    }
    let Some(header) = bytes.get(..16) else {
        return Ok(SnapshotRead::Corrupt);
    };
    if &header[..8] != SNAPSHOT_MAGIC || header[8..12] != FORMAT_VERSION.to_le_bytes() {
        return Ok(SnapshotRead::Corrupt);
    }
    let crc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    let Some(payload) = bytes.get(16..) else {
        return Ok(SnapshotRead::Corrupt);
    };
    if crc32(payload) != crc {
        return Ok(SnapshotRead::Corrupt);
    }
    Ok(SnapshotRead::Valid(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips() {
        let records = [
            JournalRecord::Install {
                num_tasks: 3,
                messages: vec![(0, 1, 2.5), (1, 2, 0.5)],
                weights: vec![1.0, 2.0, 3.0],
            },
            JournalRecord::Churn(vec![
                ChurnEvent::NodeFailed { node: 7 },
                ChurnEvent::NodesRemoved { nodes: vec![1, 2] },
                ChurnEvent::NodesAdded { nodes: vec![9] },
                ChurnEvent::LinkDegraded {
                    link: 4,
                    factor: 0.25,
                },
            ]),
            JournalRecord::Retry,
            JournalRecord::Polish,
        ];
        for rec in &records {
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            assert_eq!(JournalRecord::decode(&buf).as_ref(), Some(rec));
        }
        // Trailing garbage inside a frame is a decode failure.
        let mut buf = Vec::new();
        JournalRecord::Retry.encode_into(&mut buf);
        buf.push(0);
        assert!(JournalRecord::decode(&buf).is_none());
        assert!(JournalRecord::decode(&[]).is_none());
        assert!(JournalRecord::decode(&[99]).is_none());
    }

    #[test]
    fn crash_switch_fires_once_on_nth_occurrence() {
        let sw = CrashSwitch::new();
        sw.arm(CrashPoint::MidFrame, 3);
        assert!(!sw.check(CrashPoint::MidFrame));
        assert!(
            !sw.check(CrashPoint::BeforeFrame),
            "other points don't count"
        );
        assert!(!sw.check(CrashPoint::MidFrame));
        assert!(!sw.fired());
        assert!(sw.check(CrashPoint::MidFrame));
        assert!(sw.fired());
        assert!(!sw.check(CrashPoint::MidFrame), "fires exactly once");
    }
}
