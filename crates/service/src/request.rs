//! Request/response types: admission results, tickets, typed errors.

use std::fmt;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use umpa_core::MapperKind;
use umpa_graph::TaskGraph;

use crate::ladder::LadderRung;

/// A mapping request: a task graph to place on the service's shared
/// machine/allocation.
#[derive(Clone, Debug)]
pub struct MapJob {
    /// The task graph to map (shared, the service never mutates it).
    pub tasks: Arc<TaskGraph>,
    /// Requested mapper (top ladder rung); `None` uses the service
    /// default. The ladder may serve a lower rung.
    pub kind: Option<MapperKind>,
    /// Admission-to-response deadline, nanoseconds; `None` uses the
    /// service default.
    pub deadline_ns: Option<u64>,
}

impl MapJob {
    /// A job with service-default mapper and deadline.
    pub fn new(tasks: Arc<TaskGraph>) -> Self {
        Self {
            tasks,
            kind: None,
            deadline_ns: None,
        }
    }

    /// Sets the requested mapper.
    pub fn with_kind(mut self, kind: MapperKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Sets the deadline.
    pub fn with_deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }
}

/// Admission outcome: backpressure is explicit, not implicit queue
/// growth.
#[derive(Debug)]
pub enum Submit<T> {
    /// Admitted; redeem the ticket for the response.
    Accepted(T),
    /// Shed — the bounded queue is full (or the service is shutting
    /// down). `queue_depth` is the depth observed at rejection.
    Rejected {
        /// Queue depth at the moment of rejection.
        queue_depth: usize,
    },
}

impl<T> Submit<T> {
    /// Whether the submission was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }

    /// The ticket, if admitted.
    pub fn accepted(self) -> Option<T> {
        match self {
            Submit::Accepted(t) => Some(t),
            Submit::Rejected { .. } => None,
        }
    }
}

/// A served mapping plus how (and how fast) it was served.
#[derive(Clone, Debug)]
pub struct MapReply {
    /// Node id per task.
    pub mapping: Vec<u32>,
    /// Mapper that actually served the request (after ladder
    /// degradation).
    pub served_with: MapperKind,
    /// Ladder rung of `served_with`.
    pub rung: LadderRung,
    /// Time spent queued before a worker picked the request up, ns.
    pub queue_ns: u64,
    /// Time spent inside the mapper, ns.
    pub service_ns: u64,
    /// Admission-to-response total, ns.
    pub total_ns: u64,
    /// The deadline the request was served under, ns.
    pub deadline_ns: u64,
}

impl MapReply {
    /// Whether the response beat its deadline.
    pub fn met_deadline(&self) -> bool {
        self.total_ns <= self.deadline_ns
    }
}

/// Typed service failures. The worker loop never lets a request take
/// the service down: panics are caught and surfaced here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The request panicked inside a worker; the worker caught it and
    /// kept serving.
    Panicked,
    /// The service shut down before replying.
    Disconnected,
    /// Incremental repair stayed infeasible through the whole retry
    /// budget; the listed tasks remain unplaced until capacity
    /// returns (a later `NodesAdded` re-arms the repair).
    RepairExhausted {
        /// Tasks still unplaced.
        unplaced: usize,
        /// Retry attempts consumed.
        attempts: u32,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Panicked => write!(f, "request panicked in worker (isolated)"),
            ServiceError::Disconnected => write!(f, "service shut down before reply"),
            ServiceError::RepairExhausted { unplaced, attempts } => write!(
                f,
                "repair still infeasible after {attempts} attempts ({unplaced} tasks unplaced)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Redeemable handle for an admitted map request.
#[derive(Debug)]
pub struct MapTicket {
    pub(crate) rx: Receiver<Result<MapReply, ServiceError>>,
}

impl MapTicket {
    /// Blocks until the response arrives (or the service drops the
    /// request channel during shutdown).
    pub fn wait(self) -> Result<MapReply, ServiceError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServiceError::Disconnected),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<MapReply, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// What one `apply_churn`/`polish_now` call did to the resident job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RepairReport {
    /// Churn events applied.
    pub applied_events: usize,
    /// Whether the live mapping is fully placed after this call.
    pub fully_placed: bool,
    /// Tasks displaced by this repair.
    pub displaced: usize,
    /// Tasks still unplaced (pending retry) after this call.
    pub unplaced: usize,
    /// Whether the drift supervisor ran its check during this call.
    pub drift_checked: bool,
    /// Whether the supervisor polished the live mapping.
    pub polished: bool,
    /// Whether the supervisor replaced the live mapping with the
    /// from-scratch baseline (polish alone could not close the gap).
    pub adopted_baseline: bool,
    /// Terminal retry failure, if the retry budget ran out.
    pub error: Option<ServiceError>,
}

/// Internal queue envelope.
pub(crate) enum Envelope {
    /// A mapping request.
    Map {
        job: MapJob,
        submitted_ns: u64,
        reply: Sender<Result<MapReply, ServiceError>>,
    },
    /// A deliberately panicking request, for the isolation tests.
    #[doc(hidden)]
    Poison {
        reply: Sender<Result<MapReply, ServiceError>>,
    },
}
