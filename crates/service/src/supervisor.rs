//! The churn-drift supervisor.
//!
//! Frontier-local repair is fast but only locally optimal: each repair
//! leaves a little WH on the table, and under *sustained* churn the
//! live mapping drifts away from what a from-scratch map of the
//! current (post-churn) machine would achieve — the PR-6 caveat. The
//! supervisor closes it: every `check_every` repairs (or on demand) it
//! compares the live mapping's WH against a cached from-scratch
//! baseline — refreshed only when the fault state or allocation
//! actually changed, detected via
//! [`FaultSnapshot`](umpa_topology::FaultSnapshot) equality — and when
//! drift exceeds `max_drift` it polishes the live mapping in place
//! (full WH refinement, optionally a congestion polish). If polish
//! alone cannot close the gap it adopts the baseline mapping outright,
//! restoring the bound by construction.

use umpa_core::greedy::weighted_hops;
use umpa_core::{
    congestion_refine_scratch, greedy_map_into, wh_refine_scratch, MapperScratch, PipelineConfig,
};
use umpa_graph::TaskGraph;
use umpa_topology::{Allocation, FaultSnapshot, Machine};

use crate::config::SupervisorPolicy;

/// Cached from-scratch reference mapping for the current machine
/// state.
#[derive(Debug)]
struct Baseline {
    /// Fault state the baseline was computed under.
    snapshot: FaultSnapshot,
    /// Allocation membership the baseline was computed under.
    alloc_nodes: Vec<u32>,
    /// Baseline weighted hops.
    wh: f64,
    /// Baseline mapping (adopted when polish cannot close the gap).
    mapping: Vec<u32>,
}

/// What one supervisor pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct PolishOutcome {
    /// The drift check ran (baseline available, mapping fully placed).
    pub checked: bool,
    /// The live mapping was polished in place.
    pub polished: bool,
    /// The baseline mapping was adopted wholesale.
    pub adopted: bool,
}

/// Drift-supervisor state for one resident job.
#[derive(Debug, Default)]
pub(crate) struct Supervisor {
    repairs_since_check: u32,
    baseline: Option<Baseline>,
}

impl Supervisor {
    /// Repairs since the last drift check — the only supervisor state
    /// that must survive a crash. The baseline cache is deliberately
    /// *not* persisted: it is a deterministic function of the fault
    /// state and allocation it is keyed on, so recovery recomputes it
    /// on demand and lands on bit-identical check outcomes.
    pub(crate) fn repairs_since_check(&self) -> u32 {
        self.repairs_since_check
    }

    /// Rebuilds supervisor state from a recovery snapshot (empty
    /// baseline cache, see [`Supervisor::repairs_since_check`]).
    pub(crate) fn restored(repairs_since_check: u32) -> Self {
        Supervisor {
            repairs_since_check,
            baseline: None,
        }
    }

    /// Called after each successful repair (and by `polish_now` with
    /// `force`). Rations the drift check to every
    /// `policy.check_every` repairs; a partial (infeasible) mapping is
    /// never checked — there is no full placement to compare.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_repair(
        &mut self,
        policy: &SupervisorPolicy,
        pipeline: &PipelineConfig,
        tasks: &TaskGraph,
        machine: &Machine,
        alloc: &Allocation,
        mapping: &mut [u32],
        scratch: &mut MapperScratch,
        force: bool,
    ) -> PolishOutcome {
        self.repairs_since_check += 1;
        if !force && self.repairs_since_check < policy.check_every.max(1) {
            return PolishOutcome::default();
        }
        if mapping.contains(&u32::MAX) {
            return PolishOutcome::default();
        }
        self.repairs_since_check = 0;

        // Refresh the baseline only when the machine/allocation it was
        // computed under has changed — a from-scratch map is the
        // expensive part of the check.
        let snapshot = machine.fault_snapshot();
        let fresh = matches!(
            &self.baseline,
            Some(b) if b.snapshot == snapshot && b.alloc_nodes == alloc.nodes()
        );
        if !fresh {
            let mut base_map = match self.baseline.take() {
                Some(b) => b.mapping,
                None => Vec::new(),
            };
            greedy_map_into(
                tasks,
                machine,
                alloc,
                &pipeline.greedy,
                &mut scratch.greedy,
                &mut base_map,
            );
            wh_refine_scratch(
                tasks,
                machine,
                alloc,
                &mut base_map,
                &pipeline.wh,
                &mut scratch.wh,
            );
            self.baseline = Some(Baseline {
                snapshot,
                alloc_nodes: alloc.nodes().to_vec(),
                wh: weighted_hops(tasks, machine, &base_map),
                mapping: base_map,
            });
        }
        let Some(base) = &self.baseline else {
            return PolishOutcome::default();
        };

        let bound = base.wh * (1.0 + policy.max_drift);
        if weighted_hops(tasks, machine, mapping) <= bound {
            return PolishOutcome {
                checked: true,
                ..PolishOutcome::default()
            };
        }

        // Over the bound: polish the live mapping in place.
        wh_refine_scratch(
            tasks,
            machine,
            alloc,
            mapping,
            &pipeline.wh,
            &mut scratch.wh,
        );
        if policy.cong_polish {
            congestion_refine_scratch(
                tasks,
                machine,
                alloc,
                mapping,
                &pipeline.cong_volume,
                &mut scratch.cong,
            );
        }
        if weighted_hops(tasks, machine, mapping) <= bound {
            return PolishOutcome {
                checked: true,
                polished: true,
                adopted: false,
            };
        }

        // Polish could not close the gap: adopt the baseline, which
        // satisfies the bound by construction (its WH *is* the
        // reference).
        mapping.copy_from_slice(&base.mapping);
        PolishOutcome {
            checked: true,
            polished: true,
            adopted: true,
        }
    }
}
