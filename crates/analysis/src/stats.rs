//! Standardization, correlation and aggregation helpers.

use crate::nnls::Matrix;

/// Standardizes every column in place: subtract the column mean, divide
/// by the column standard deviation ("to standardize each entry of V
/// and make them equally important", Section IV-E). Constant columns
/// become all-zero.
pub fn standardize_columns(m: &mut Matrix) {
    let rows = m.rows();
    if rows == 0 {
        return;
    }
    for c in 0..m.cols() {
        let mean = m.col(c).iter().sum::<f64>() / rows as f64;
        let var = m
            .col(c)
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / rows as f64;
        let sd = var.sqrt();
        for r in 0..rows {
            let v = m.at(r, c);
            *m.at_mut(r, c) = if sd > 1e-300 { (v - mean) / sd } else { 0.0 };
        }
    }
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 1e-300 || vy <= 1e-300 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Geometric mean of positive samples (the aggregation of Figures 1–3
/// and Table I). Non-positive entries are clamped to a tiny positive
/// value so a single zero doesn't wipe the mean.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardize_produces_zero_mean_unit_sd() {
        let mut m = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 10.0],
            vec![3.0, 10.0],
            vec![4.0, 10.0],
        ]);
        standardize_columns(&mut m);
        let mean: f64 = m.col(0).iter().sum::<f64>() / 4.0;
        let var: f64 = m.col(0).iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        // Constant column became zeros, not NaN.
        assert!(m.col(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pearson_detects_perfect_and_anti_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn gmean_matches_hand_computed() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn gmean_survives_zeros() {
        let g = geometric_mean(&[0.0, 1.0]);
        assert!(g >= 0.0 && g.is_finite());
    }
}
