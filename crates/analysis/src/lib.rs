//! `umpa-analysis` — the statistical toolkit of Section IV-E.
//!
//! The paper regresses measured execution times on 14 partitioning and
//! mapping metrics with MATLAB's `lsqnonneg` (nonnegative least
//! squares) after column standardization, and cross-checks with
//! pairwise Pearson correlations. This crate implements that pipeline
//! from scratch:
//!
//! * [`nnls`] — Lawson–Hanson active-set NNLS;
//! * [`stats`] — column standardization, Pearson correlation,
//!   geometric means (the aggregation used by Figures 1–3 and Table I).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nnls;
pub mod stats;

pub use nnls::{nnls, Matrix};
pub use stats::{geometric_mean, pearson, standardize_columns};
