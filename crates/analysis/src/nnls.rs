//! Lawson–Hanson nonnegative least squares.
//!
//! Solves `min ‖V·d − t‖₂ s.t. d ≥ 0` — the regression the paper uses
//! to rank metric importance ("we want to find a dependency vector d
//! which minimizes ‖Vd − t‖ s.t. d ≥ 0", Section IV-E). The classic
//! active-set method: grow a passive set by the most positively
//! correlated column, solve the unconstrained least squares on it, and
//! clip back any coefficient that went negative.

/// A dense column-major matrix.
#[derive(Clone, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: entry `(r, c)` at `data[c * rows + r]`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major nested slice.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                *m.at_mut(i, j) = v;
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[c * self.rows + r]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[c * self.rows + r]
    }

    /// A column as a slice.
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// `y = A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc != 0.0 {
                for (r, yv) in y.iter_mut().enumerate() {
                    *yv += self.at(r, c) * xc;
                }
            }
        }
        y
    }

    /// `y = Aᵀ·x`.
    pub fn mul_transpose_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        (0..self.cols)
            .map(|c| self.col(c).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Unconstrained least squares on a column subset via normal equations
/// (`AᵀA z = Aᵀ b`) with Gaussian elimination and partial pivoting.
/// Fine for the ≤14-column systems of the paper's analysis.
fn ls_on_subset(a: &Matrix, b: &[f64], subset: &[usize]) -> Vec<f64> {
    let k = subset.len();
    let mut ata = vec![0.0f64; k * k];
    let mut atb = vec![0.0f64; k];
    for (i, &ci) in subset.iter().enumerate() {
        for (j, &cj) in subset.iter().enumerate() {
            ata[i * k + j] = a.col(ci).iter().zip(a.col(cj)).map(|(x, y)| x * y).sum();
        }
        atb[i] = a.col(ci).iter().zip(b).map(|(x, y)| x * y).sum();
    }
    // Tikhonov whisper to survive collinear metric columns.
    for i in 0..k {
        ata[i * k + i] += 1e-12;
    }
    // Gaussian elimination with partial pivoting.
    let mut aug = ata;
    let mut rhs = atb;
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&i, &j| {
                aug[i * k + col]
                    .abs()
                    .partial_cmp(&aug[j * k + col].abs())
                    .unwrap()
            })
            .unwrap();
        if pivot != col {
            for j in 0..k {
                aug.swap(col * k + j, pivot * k + j);
            }
            rhs.swap(col, pivot);
        }
        let p = aug[col * k + col];
        if p.abs() < 1e-300 {
            continue;
        }
        for row in (col + 1)..k {
            let f = aug[row * k + col] / p;
            if f == 0.0 {
                continue;
            }
            for j in col..k {
                aug[row * k + j] -= f * aug[col * k + j];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut z = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut s = rhs[col];
        for j in (col + 1)..k {
            s -= aug[col * k + j] * z[j];
        }
        let p = aug[col * k + col];
        z[col] = if p.abs() < 1e-300 { 0.0 } else { s / p };
    }
    z
}

/// Solves `min ‖A·d − b‖ s.t. d ≥ 0`; returns the coefficient vector.
///
/// # Examples
///
/// ```
/// use umpa_analysis::{nnls, Matrix};
///
/// // b is exactly 2·col0; the negative-looking col1 gets weight 0.
/// let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, -2.0]]);
/// let d = nnls(&a, &[2.0, 4.0]);
/// assert!((d[0] - 2.0).abs() < 1e-6);
/// assert_eq!(d[1], 0.0);
/// ```
pub fn nnls(a: &Matrix, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), a.rows());
    let n = a.cols();
    let mut x = vec![0.0f64; n];
    let mut passive: Vec<usize> = Vec::new();
    let mut in_passive = vec![false; n];
    let tol = 1e-10
        * a.col(0)
            .iter()
            .map(|v| v.abs())
            .fold(1.0f64, f64::max)
            .max(1.0);
    for _ in 0..(3 * n.max(10)) {
        // Gradient w = Aᵀ(b − Ax).
        let ax = a.mul_vec(&x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let w = a.mul_transpose_vec(&resid);
        // Most promising inactive column.
        let candidate = (0..n)
            .filter(|&j| !in_passive[j])
            .max_by(|&i, &j| w[i].partial_cmp(&w[j]).unwrap());
        match candidate {
            Some(j) if w[j] > tol => {
                passive.push(j);
                in_passive[j] = true;
            }
            _ => break,
        }
        // Inner loop: make the passive solution nonnegative.
        loop {
            let z = ls_on_subset(a, b, &passive);
            if z.iter().all(|&v| v > tol) {
                for (i, &j) in passive.iter().enumerate() {
                    x[j] = z[i];
                }
                break;
            }
            // Step toward z, stopping at the first variable to hit 0.
            let mut alpha = f64::INFINITY;
            for (i, &j) in passive.iter().enumerate() {
                if z[i] <= tol {
                    let d = x[j] - z[i];
                    if d > 0.0 {
                        alpha = alpha.min(x[j] / d);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (i, &j) in passive.iter().enumerate() {
                x[j] += alpha * (z[i] - x[j]);
            }
            // Remove zeroed variables from the passive set.
            let mut i = 0;
            while i < passive.len() {
                let j = passive[i];
                if x[j] <= tol {
                    x[j] = 0.0;
                    in_passive[j] = false;
                    passive.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if passive.is_empty() {
                break;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_nonnegative_model_exactly() {
        // b = 2*c0 + 0.5*c2
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 2.0],
            vec![1.0, 1.0, 0.0],
            vec![2.0, 0.0, 1.0],
        ]);
        let x_true = [2.0, 0.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = nnls(&a, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{x:?}");
        }
    }

    #[test]
    fn clips_negative_coefficients_to_zero() {
        // b = c0 − c1 : best nonnegative fit puts weight on c0 only.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let b = vec![1.0, -1.0, 0.0];
        let x = nnls(&a, &b);
        assert!(x[1].abs() < 1e-9, "{x:?}");
        assert!(x[0] > 0.0);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = nnls(&a, &[0.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn residual_not_worse_than_any_single_column_fit() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![2.0, 1.0, 1.5],
            vec![0.5, 0.5, 2.0],
            vec![1.5, 2.5, 1.0],
        ]);
        let b = vec![3.0, 4.0, 2.0, 4.5];
        let x = nnls(&a, &b);
        let resid = |x: &[f64]| -> f64 {
            let ax = a.mul_vec(x);
            b.iter().zip(&ax).map(|(bi, ai)| (bi - ai).powi(2)).sum()
        };
        let r = resid(&x);
        for j in 0..3 {
            // Best single-column nonnegative scale.
            let num: f64 = a.col(j).iter().zip(&b).map(|(c, bi)| c * bi).sum();
            let den: f64 = a.col(j).iter().map(|c| c * c).sum();
            let mut single = vec![0.0; 3];
            single[j] = (num / den).max(0.0);
            assert!(r <= resid(&single) + 1e-9);
        }
    }

    #[test]
    fn handles_collinear_columns() {
        // Duplicate columns must not blow up the solve.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = vec![1.0, 2.0, 3.0];
        let x = nnls(&a, &b);
        let ax = a.mul_vec(&x);
        let resid: f64 = b.iter().zip(&ax).map(|(bi, ai)| (bi - ai).powi(2)).sum();
        assert!(resid < 1e-9, "x={x:?} resid={resid}");
        assert!(x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn matrix_accessors_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        *m.at_mut(1, 2) = 7.0;
        assert_eq!(m.at(1, 2), 7.0);
        assert_eq!(m.col(2), &[0.0, 7.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}
