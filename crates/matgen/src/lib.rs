//! `umpa-matgen` — sparse-matrix workloads.
//!
//! The paper's task graphs come from 25 University of Florida matrices
//! (9 classes) partitioned 1-D row-wise; its timing experiments use
//! `cage15` (DNA electrophoresis, ~5.2 M rows, ~19 nnz/row) and
//! `rgg_n_2_23_s0` (random geometric graph, ~8.4 M vertices). The UFL
//! collection is not available offline, so this crate provides
//! *generators for the same structural classes* plus a fixed 25-instance
//! registry ([`dataset`]) standing in for the paper's list (see
//! DESIGN.md, substitution table).
//!
//! Contents:
//!
//! * [`SparsePattern`] — a CSR sparsity pattern (values are irrelevant
//!   to every metric in the paper);
//! * [`gen`] — deterministic, seeded generators: 2-D/3-D stencils,
//!   random geometric graphs, cage-like multi-diagonal chains, R-MAT
//!   scale-free, Erdős–Rényi, banded random, FEM-style meshes and
//!   coupled block matrices;
//! * [`spmv`] — the 1-D row-wise SpMV communication pattern: given a
//!   row partition it derives the directed MPI task graph (who sends
//!   how many vector entries to whom) and the column-net partition
//!   quality metrics TV / TM / MSV / MSM used throughout Section IV;
//! * [`taskgen`] — direct large task-graph generators (3-D stencil
//!   halo exchange, power-law attachment) at 10⁵–10⁶ tasks with
//!   capacity-respecting weights, feeding the multilevel engine;
//! * [`mm`] — Matrix Market import/export for interoperability;
//! * [`churn`] — seeded fault-injection streams (node failures,
//!   allocation shrink/growth, link degradation) feeding the
//!   incremental-remap differential harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod dataset;
pub mod gen;
pub mod mm;
pub mod pattern;
pub mod spmv;
pub mod taskgen;

pub use churn::{churn_sequence, corruption_points, load_sequence, ChurnSpec, LoadEvent, LoadSpec};
pub use dataset::{DatasetEntry, MatrixClass, Scale};
pub use pattern::SparsePattern;
pub use spmv::{spmv_task_graph, CommStats};
pub use taskgen::{power_law_tasks, stencil3d_tasks, total_weight_for};

/// Commonly used items.
pub mod prelude {
    pub use crate::churn::{
        churn_sequence, corruption_points, load_sequence, ChurnSpec, LoadEvent, LoadSpec,
    };
    pub use crate::dataset::{DatasetEntry, MatrixClass, Scale};
    pub use crate::pattern::SparsePattern;
    pub use crate::spmv::{spmv_task_graph, CommStats};
    pub use crate::taskgen::{power_law_tasks, stencil3d_tasks, total_weight_for};
}
