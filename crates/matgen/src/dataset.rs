//! The 25-instance matrix registry.
//!
//! Stands in for the paper's "25 matrices from the University of Florida
//! sparse matrix collection, belonging to 9 different classes" (Section
//! IV). Each entry names a deterministic generator configuration; the
//! [`Scale`] knob shrinks or grows every instance together so the full
//! experiment suite can run at laptop scale while `--full` approaches
//! paper sizes (see DESIGN.md §6, "Scaling").

use crate::gen::{self, Stencil2D, Stencil3D};
use crate::pattern::SparsePattern;

/// Structural class of a dataset entry (9 classes, as in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixClass {
    /// 2-D structured grids (finite differences).
    Grid2D,
    /// 3-D structured grids.
    Grid3D,
    /// Random geometric graphs (the `rgg_n_2_*` family).
    Rgg,
    /// DNA-electrophoresis-like multi-diagonal chains (`cage*`).
    Cage,
    /// Scale-free / power-law graphs (web, social).
    ScaleFree,
    /// Uniform random (Erdős–Rényi-like).
    Random,
    /// Banded matrices (reordered structural problems).
    Banded,
    /// FEM meshes.
    Fem,
    /// Coupled block systems (circuit / multiphysics).
    Block,
}

/// Size multiplier applied to the whole registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// ~1–3 k rows per matrix — unit/integration tests.
    Tiny,
    /// ~15–40 k rows — the default harness scale.
    #[default]
    Small,
    /// ~60–160 k rows — slower, closer to paper shape.
    Medium,
    /// ~0.5–1.3 M rows — hours-long full runs.
    Large,
}

impl Scale {
    /// Linear size factor relative to [`Scale::Tiny`].
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 16,
            Scale::Medium => 64,
            Scale::Large => 512,
        }
    }
}

/// One named instance of the registry.
#[derive(Clone, Copy, Debug)]
pub struct DatasetEntry {
    /// Instance name (stable identifier used in experiment output).
    pub name: &'static str,
    /// Structural class.
    pub class: MatrixClass,
    builder: fn(Scale) -> SparsePattern,
}

impl DatasetEntry {
    /// Generates the matrix at the requested scale.
    pub fn build(&self, scale: Scale) -> SparsePattern {
        (self.builder)(scale)
    }
}

/// Side length for 2-D instances: `base` rows at Tiny, scaled by √factor.
fn side2(base: usize, scale: Scale) -> usize {
    let f = (scale.factor() as f64).sqrt();
    (base as f64 * f).round() as usize
}

/// Side length for 3-D instances (cube-root scaling).
fn side3(base: usize, scale: Scale) -> usize {
    let f = (scale.factor() as f64).cbrt();
    (base as f64 * f).round() as usize
}

/// Row count for 1-D-indexed instances.
fn rows(base: usize, scale: Scale) -> usize {
    base * scale.factor()
}

/// Power-of-two row count (R-MAT requirement).
fn rows_pow2(base_log2: u32, scale: Scale) -> usize {
    1usize << (base_log2 + scale.factor().trailing_zeros())
}

macro_rules! entry {
    ($name:literal, $class:ident, $builder:expr) => {
        DatasetEntry {
            name: $name,
            class: MatrixClass::$class,
            builder: $builder,
        }
    };
}

/// The 25-instance registry (9 classes).
pub fn registry() -> Vec<DatasetEntry> {
    vec![
        // -- Grid2D (3)
        entry!("grid2d_5pt_sq", Grid2D, |s| gen::stencil2d(
            side2(40, s),
            side2(40, s),
            Stencil2D::FivePoint
        )),
        entry!("grid2d_9pt_sq", Grid2D, |s| gen::stencil2d(
            side2(38, s),
            side2(38, s),
            Stencil2D::NinePoint
        )),
        entry!("grid2d_5pt_wide", Grid2D, |s| gen::stencil2d(
            side2(80, s),
            side2(20, s),
            Stencil2D::FivePoint
        )),
        // -- Grid3D (3)
        entry!("grid3d_7pt", Grid3D, |s| gen::stencil3d(
            side3(12, s),
            side3(12, s),
            side3(12, s),
            Stencil3D::SevenPoint
        )),
        entry!("grid3d_27pt", Grid3D, |s| gen::stencil3d(
            side3(10, s),
            side3(10, s),
            side3(10, s),
            Stencil3D::TwentySevenPoint
        )),
        entry!("grid3d_7pt_slab", Grid3D, |s| gen::stencil3d(
            side3(20, s),
            side3(20, s),
            side3(5, s),
            Stencil3D::SevenPoint
        )),
        // -- Rgg (3)
        entry!("rgg_a", Rgg, |s| {
            let n = rows(1600, s);
            gen::rgg(n, 1.8 * (1.0 / (n as f64)).sqrt() * 2.0, 101)
        }),
        entry!("rgg_b", Rgg, |s| {
            let n = rows(1600, s);
            gen::rgg(n, 2.2 * (1.0 / (n as f64)).sqrt() * 2.0, 102)
        }),
        entry!("rgg_c", Rgg, |s| {
            let n = rows(2000, s);
            gen::rgg(n, 1.6 * (1.0 / (n as f64)).sqrt() * 2.0, 103)
        }),
        // -- Cage (3)
        entry!("cage_a", Cage, |s| gen::cage_like(rows(1600, s), 201)),
        entry!("cage_b", Cage, |s| gen::cage_like(rows(2000, s), 202)),
        entry!("cage_c", Cage, |s| gen::cage_like(rows(1200, s), 203)),
        // -- ScaleFree (3)
        entry!("rmat_a", ScaleFree, |s| gen::rmat(
            rows_pow2(11, s),
            8,
            (0.57, 0.19, 0.19, 0.05),
            301
        )),
        entry!("rmat_b", ScaleFree, |s| gen::rmat(
            rows_pow2(11, s),
            12,
            (0.55, 0.2, 0.2, 0.05),
            302
        )),
        entry!("rmat_c", ScaleFree, |s| gen::rmat(
            rows_pow2(10, s),
            16,
            (0.6, 0.18, 0.18, 0.04),
            303
        )),
        // -- Random (3)
        entry!("er_a", Random, |s| gen::erdos_renyi(rows(1600, s), 8, 401)),
        entry!("er_b", Random, |s| gen::erdos_renyi(rows(2000, s), 12, 402)),
        entry!("er_c", Random, |s| gen::erdos_renyi(rows(1200, s), 16, 403)),
        // -- Banded (3)
        entry!("band_narrow", Banded, |s| gen::banded_random(
            rows(2000, s),
            24,
            8,
            501
        )),
        entry!("band_wide", Banded, |s| gen::banded_random(
            rows(1600, s),
            200,
            10,
            502
        )),
        entry!("band_dense", Banded, |s| gen::banded_random(
            rows(1200, s),
            64,
            16,
            503
        )),
        // -- Fem (2)
        entry!("fem_sq", Fem, |s| gen::fem_mesh2d(
            side2(40, s),
            side2(40, s)
        )),
        entry!("fem_strip", Fem, |s| gen::fem_mesh2d(
            side2(90, s),
            side2(18, s)
        )),
        // -- Block (2)
        entry!("block_chain", Block, |s| gen::block_coupled(
            16,
            rows(100, s),
            10,
            rows(12, s),
            601
        )),
        entry!("block_fat", Block, |s| gen::block_coupled(
            8,
            rows(200, s),
            14,
            rows(20, s),
            602
        )),
    ]
}

/// The `cage15` stand-in used by the communication-only and SpMV timing
/// experiments (Figures 4a, 5, Table I).
pub fn cage15_like(scale: Scale) -> SparsePattern {
    gen::cage_like(rows(2500, scale), 1515)
}

/// The `rgg_n_2_23_s0` stand-in used by Figure 4b and Table I.
pub fn rgg_like(scale: Scale) -> SparsePattern {
    let n = rows(2500, scale);
    gen::rgg(n, 2.0 * (1.0 / (n as f64)).sqrt() * 2.0, 2323)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_25_instances_in_9_classes() {
        let reg = registry();
        assert_eq!(reg.len(), 25);
        let classes: HashSet<_> = reg.iter().map(|e| e.class).collect();
        assert_eq!(classes.len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let reg = registry();
        let names: HashSet<_> = reg.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn tiny_scale_builds_every_instance() {
        for e in registry() {
            let m = e.build(Scale::Tiny);
            assert!(
                m.nrows() >= 500,
                "{} too small at Tiny: {}",
                e.name,
                m.nrows()
            );
            assert!(
                m.nrows() <= 30_000,
                "{} too large at Tiny: {}",
                e.name,
                m.nrows()
            );
            assert!(m.nnz() > m.nrows(), "{} has no off-diagonal", e.name);
        }
    }

    #[test]
    fn small_scale_is_bigger_than_tiny() {
        let e = &registry()[0];
        assert!(e.build(Scale::Small).nrows() > 4 * e.build(Scale::Tiny).nrows());
    }

    #[test]
    fn special_instances_build() {
        let c = cage15_like(Scale::Tiny);
        let r = rgg_like(Scale::Tiny);
        assert!(c.nrows() >= 2000);
        assert!(r.nrows() >= 2000);
        assert!((10.0..25.0).contains(&c.avg_row_nnz()));
    }

    #[test]
    fn builds_are_deterministic() {
        let e = &registry()[8]; // rgg_c
        assert_eq!(e.build(Scale::Tiny), e.build(Scale::Tiny));
    }
}
