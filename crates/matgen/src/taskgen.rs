//! Synthetic large task-graph generators for the multilevel engine.
//!
//! The paper's workloads are SpMV task graphs sized to the machine;
//! the multilevel engine (`umpa_core::multilevel`) targets graphs
//! 10–100× larger than any allocation, so these generators build
//! [`TaskGraph`]s directly — no intermediate sparse matrix — at
//! 10⁵–10⁶ tasks:
//!
//! * [`stencil3d_tasks`] — a 7-point 3-D halo-exchange pattern, the
//!   communication shape of structured-grid solvers (each interior task
//!   exchanges with its 6 face neighbors);
//! * [`power_law_tasks`] — a preferential-attachment pattern whose hub
//!   tasks emulate graph-analytics workloads (degree skew stresses the
//!   capacity-aware matching: hubs saturate the merge cap early).
//!
//! Both take an explicit `total_weight` and spread it uniformly over
//! the tasks, so callers make the graph **capacity-respecting** by
//! passing a fraction of the target allocation's processor count (the
//! fill factor also drives how deep the multilevel engine can coarsen —
//! see `MultilevelConfig::max_vertex_frac`):
//!
//! ```
//! use umpa_matgen::taskgen::{stencil3d_tasks, total_weight_for};
//! use umpa_topology::{AllocSpec, Allocation, MachineConfig};
//!
//! let machine = MachineConfig::small(&[4, 4], 2, 4).build();
//! let alloc = Allocation::generate(&machine, &AllocSpec::sparse(16, 1));
//! let tg = stencil3d_tasks(16, 16, 4, 8.0, 0.0, total_weight_for(&alloc, 0.5));
//! assert_eq!(tg.num_tasks(), 1024);
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_graph::TaskGraph;
use umpa_topology::Allocation;

/// Total task weight filling `fill` (0..1] of the allocation's
/// processor capacity — the standard way to size a generated graph to a
/// machine. Fill factors well below 1.0 leave the packing slack the
/// multilevel engine's capacity-aware matching coarsens into.
pub fn total_weight_for(alloc: &Allocation, fill: f64) -> f64 {
    assert!(fill > 0.0 && fill <= 1.0, "fill must be in (0, 1]");
    fill * f64::from(alloc.total_procs())
}

/// Uniform per-task weights summing to `total_weight`.
fn uniform_weights(n: usize, total_weight: f64) -> Option<Vec<f64>> {
    assert!(total_weight > 0.0, "total_weight must be positive");
    (n > 0).then(|| vec![total_weight / n as f64; n])
}

/// 3-D stencil halo-exchange task graph on an `nx × ny × nz` grid:
/// every task sends `face_volume` to each of its up-to-6 face
/// neighbors, and — when `diagonal_volume > 0.0` — that volume to its 4
/// in-plane diagonal neighbors too (a 10-edges-per-task pattern, the
/// density of the million-task acceptance run). Both directions of
/// every exchange are emitted, like a real halo exchange. Task weights
/// are uniform and sum to `total_weight`.
pub fn stencil3d_tasks(
    nx: usize,
    ny: usize,
    nz: usize,
    face_volume: f64,
    diagonal_volume: f64,
    total_weight: f64,
) -> TaskGraph {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * nx * ny + y * nx + x) as u32;
    let mut messages = Vec::with_capacity(n * if diagonal_volume > 0.0 { 10 } else { 6 });
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = idx(x, y, z);
                // Emit each exchange once per unordered pair, both
                // directions at once.
                let mut link = |tx: isize, ty: isize, tz: isize, vol: f64| {
                    if tx >= 0
                        && ty >= 0
                        && tz >= 0
                        && (tx as usize) < nx
                        && (ty as usize) < ny
                        && (tz as usize) < nz
                    {
                        let t = idx(tx as usize, ty as usize, tz as usize);
                        messages.push((r, t, vol));
                        messages.push((t, r, vol));
                    }
                };
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                link(xi + 1, yi, zi, face_volume);
                link(xi, yi + 1, zi, face_volume);
                link(xi, yi, zi + 1, face_volume);
                if diagonal_volume > 0.0 {
                    link(xi + 1, yi + 1, zi, diagonal_volume);
                    link(xi + 1, yi - 1, zi, diagonal_volume);
                }
            }
        }
    }
    TaskGraph::from_messages(n, messages, uniform_weights(n, total_weight))
}

/// Preferential-attachment ("power-law") communication graph: task `t`
/// attaches `edges_per_task` messages to endpoints sampled from the
/// running endpoint list (Barabási–Albert flavor), so early tasks
/// become hubs with degrees far above the mean. Message volumes are
/// drawn from `1.0..=16.0`; weights are uniform and sum to
/// `total_weight`. Deterministic per `seed`.
pub fn power_law_tasks(n: usize, edges_per_task: usize, seed: u64, total_weight: f64) -> TaskGraph {
    let m = edges_per_task.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Endpoint multiset: every edge endpoint appears once, so sampling
    // uniformly from it is degree-proportional attachment.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut messages: Vec<(u32, u32, f64)> = Vec::with_capacity(n * m);
    let seedlings = (m + 1).min(n);
    for t in 0..seedlings as u32 {
        // A small clique seeds the attachment process.
        for u in 0..t {
            messages.push((t, u, f64::from(rng.gen_range(1..=16u32))));
            endpoints.push(t);
            endpoints.push(u);
        }
    }
    for t in seedlings as u32..n as u32 {
        for _ in 0..m {
            let u = endpoints[rng.gen_range(0..endpoints.len())];
            if u == t {
                continue;
            }
            messages.push((t, u, f64::from(rng.gen_range(1..=16u32))));
            endpoints.push(t);
            endpoints.push(u);
        }
    }
    TaskGraph::from_messages(n, messages, uniform_weights(n, total_weight))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_shape_and_weights() {
        let tg = stencil3d_tasks(4, 4, 4, 2.0, 0.0, 32.0);
        assert_eq!(tg.num_tasks(), 64);
        // Interior task (1,1,1) = id 1 + 4 + 16 = 21: 6 face neighbors,
        // both directions.
        assert_eq!(tg.send_messages(21), 6);
        assert_eq!(tg.recv_messages(21), 6);
        assert_eq!(tg.send_volume(21), 12.0);
        // Corner task: 3 neighbors.
        assert_eq!(tg.send_messages(0), 3);
        let total: f64 = (0..64u32).map(|t| tg.task_weight(t)).sum();
        assert!((total - 32.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_diagonals_make_ten_edges_per_interior_task() {
        let tg = stencil3d_tasks(4, 4, 4, 2.0, 0.5, 32.0);
        // Interior task (1,1,1): 6 faces + 4 in-plane diagonals.
        assert_eq!(tg.send_messages(21), 10);
        assert_eq!(tg.recv_messages(21), 10);
        // Volumes split by neighbor class: 6·2.0 + 4·0.5.
        assert_eq!(tg.send_volume(21), 14.0);
        // A corner keeps 3 faces + 1 diagonal.
        assert_eq!(tg.send_messages(0), 4);
    }

    #[test]
    fn stencil_is_symmetric_in_messages() {
        let tg = stencil3d_tasks(3, 3, 2, 1.0, 0.0, 18.0);
        for (s, t, v) in tg.messages() {
            assert!(
                tg.messages().any(|(a, b, w)| a == t && b == s && w == v),
                "missing reverse of {s}->{t}"
            );
        }
    }

    #[test]
    fn power_law_has_hubs_and_is_deterministic() {
        let tg = power_law_tasks(2000, 5, 7, 100.0);
        assert_eq!(tg.num_tasks(), 2000);
        let deg = |t: u32| tg.send_messages(t) + tg.recv_messages(t);
        let max_deg = (0..2000u32).map(deg).max().unwrap();
        let avg = (0..2000u32).map(|t| f64::from(deg(t))).sum::<f64>() / 2000.0;
        assert!(
            f64::from(max_deg) > 5.0 * avg,
            "no hubs: max {max_deg}, avg {avg:.1}"
        );
        let again = power_law_tasks(2000, 5, 7, 100.0);
        assert_eq!(tg.num_messages(), again.num_messages());
        assert_eq!(tg.total_volume(), again.total_volume());
        let other = power_law_tasks(2000, 5, 8, 100.0);
        assert_ne!(tg.total_volume(), other.total_volume());
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        assert_eq!(stencil3d_tasks(1, 1, 1, 1.0, 0.0, 1.0).num_messages(), 0);
        assert_eq!(power_law_tasks(1, 4, 1, 1.0).num_messages(), 0);
        let tg = power_law_tasks(2, 3, 1, 2.0);
        assert_eq!(tg.num_tasks(), 2);
    }
}
