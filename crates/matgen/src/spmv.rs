//! 1-D row-wise SpMV communication patterns.
//!
//! The paper converts each matrix to a column-net hypergraph, partitions
//! rows into K parts and builds "MPI task communication graphs
//! corresponding to these partitions" (Section IV). For `y = A·x` with
//! rows and the conformally distributed `x`-entries owned by `part[·]`,
//! the owner of `x_j` must send it to every part that holds a row with a
//! nonzero in column `j` — the *expand* communication of 1-D row-wise
//! SpMV. Each ordered part pair with at least one needed entry is one
//! MPI message; its volume is the number of distinct vector entries.
//!
//! The same structure yields the partition quality metrics of Figure 1:
//! total volume `TV`, total messages `TM`, maximum send volume `MSV`
//! and maximum sent messages `MSM`.

use std::collections::HashMap;

use umpa_graph::TaskGraph;

use crate::pattern::SparsePattern;

/// Partition quality metrics of a task graph (Figure 1 columns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommStats {
    /// Total communication volume (words).
    pub tv: f64,
    /// Total number of messages.
    pub tm: usize,
    /// Maximum send volume over parts.
    pub msv: f64,
    /// Maximum number of sent messages over parts.
    pub msm: u32,
    /// Computational load imbalance: max part load / average part load.
    pub imbalance: f64,
}

impl CommStats {
    /// Derives the metrics from a task graph and per-task loads.
    pub fn from_task_graph(tg: &TaskGraph, loads: &[f64]) -> Self {
        let p = tg.num_tasks();
        let mut msv = 0.0f64;
        let mut msm = 0u32;
        for t in 0..p as u32 {
            msv = msv.max(tg.send_volume(t));
            msm = msm.max(tg.send_messages(t));
        }
        let total: f64 = loads.iter().sum();
        let maxl = loads.iter().cloned().fold(0.0f64, f64::max);
        let avg = if p == 0 { 0.0 } else { total / p as f64 };
        Self {
            tv: tg.total_volume(),
            tm: tg.num_messages(),
            msv,
            msm,
            imbalance: if avg > 0.0 { maxl / avg } else { 1.0 },
        }
    }
}

/// Builds the directed MPI task graph of a 1-D row-wise SpMV under the
/// given row partition.
///
/// * `part[i]` ∈ `0..num_parts` is the owner of row `i` (and of `x_i`).
/// * Task weights are `1.0` — each MPI task occupies one processor;
///   computational loads are a separate quantity (see
///   [`partition_loads`]), used by the SpMV time model, not by the
///   placement capacity constraints.
///
/// Returns the task graph; message volumes are in vector-entry words
/// (scale by the byte width when feeding the simulator).
pub fn spmv_task_graph(a: &SparsePattern, part: &[u32], num_parts: usize) -> TaskGraph {
    assert_eq!(a.nrows(), part.len(), "partition length != row count");
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "SpMV comm model needs a square matrix"
    );
    let at = a.transpose();
    let mut volumes: HashMap<(u32, u32), f64> = HashMap::new();
    // Scratch: distinct parts seen in the current column.
    let mut seen: Vec<u32> = Vec::with_capacity(64);
    for j in 0..a.nrows() as u32 {
        let owner = part[j as usize];
        seen.clear();
        for &i in at.row(j) {
            let p = part[i as usize];
            if p != owner && !seen.contains(&p) {
                seen.push(p);
            }
        }
        for &q in &seen {
            *volumes.entry((owner, q)).or_insert(0.0) += 1.0;
        }
    }
    TaskGraph::from_messages(
        num_parts,
        volumes.into_iter().map(|((s, t), v)| (s, t, v)),
        None,
    )
}

/// Per-part computational loads under a row partition (convenience for
/// metric reporting).
pub fn partition_loads(a: &SparsePattern, part: &[u32], num_parts: usize) -> Vec<f64> {
    let mut loads = vec![0.0f64; num_parts];
    for i in 0..a.nrows() as u32 {
        loads[part[i as usize] as usize] += 1.0 + a.row_nnz(i) as f64;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4x4 with a dense column 0 and a chain.
    fn sample() -> SparsePattern {
        SparsePattern::from_entries(
            4,
            4,
            [
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0), // dense column 0
                (1, 1),
                (2, 2),
                (3, 3),
                (1, 2), // row 1 needs x2
            ],
        )
    }

    #[test]
    fn expand_messages_follow_column_owners() {
        let a = sample();
        // rows 0,1 -> part 0; rows 2,3 -> part 1.
        let part = vec![0, 0, 1, 1];
        let tg = spmv_task_graph(&a, &part, 2);
        // Column 0 owned by part 0, needed by part 1 (rows 2,3): 1 word.
        // Column 2 owned by part 1, needed by part 0 (row 1): 1 word.
        assert_eq!(tg.num_messages(), 2);
        assert_eq!(tg.send_volume(0), 1.0);
        assert_eq!(tg.send_volume(1), 1.0);
    }

    #[test]
    fn volume_counts_distinct_entries_not_nonzeros() {
        let a = sample();
        let part = vec![0, 1, 1, 1];
        let tg = spmv_task_graph(&a, &part, 2);
        // Column 0 (owner part 0) needed by part 1 via rows 1,2,3 —
        // still one word because it is one vector entry.
        assert_eq!(tg.send_volume(0), 1.0);
        assert_eq!(tg.recv_volume(1), 1.0);
    }

    #[test]
    fn single_part_has_no_communication() {
        let a = sample();
        let tg = spmv_task_graph(&a, &[0; 4], 1);
        assert_eq!(tg.num_messages(), 0);
        assert_eq!(tg.total_volume(), 0.0);
    }

    #[test]
    fn loads_are_row_nnz_plus_one() {
        let a = sample();
        let part = vec![0, 0, 1, 1];
        let loads = partition_loads(&a, &part, 2);
        // part0: rows 0 (1 nnz) + 1 (3 nnz) -> 2 + 4 = 6
        // part1: rows 2 (2 nnz) + 3 (2 nnz) -> 3 + 3 = 6
        assert_eq!(loads, vec![6.0, 6.0]);
        // Task weights stay at 1 processor each — loads are separate.
        let tg = spmv_task_graph(&a, &part, 2);
        assert_eq!(tg.task_weight(0), 1.0);
    }

    #[test]
    fn comm_stats_aggregate() {
        let a = sample();
        let part = vec![0, 0, 1, 1];
        let tg = spmv_task_graph(&a, &part, 2);
        let stats = CommStats::from_task_graph(&tg, &partition_loads(&a, &part, 2));
        assert_eq!(stats.tv, 2.0);
        assert_eq!(stats.tm, 2);
        assert_eq!(stats.msv, 1.0);
        assert_eq!(stats.msm, 1);
        assert!((stats.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stencil_partition_talks_to_neighbors_only() {
        use crate::gen::{stencil2d, Stencil2D};
        let a = stencil2d(8, 8, Stencil2D::FivePoint);
        // Split into two horizontal strips.
        let part: Vec<u32> = (0..64).map(|i| u32::from(i >= 32)).collect();
        let tg = spmv_task_graph(&a, &part, 2);
        assert_eq!(tg.num_messages(), 2); // one each way across the cut
        assert_eq!(tg.send_volume(0), 8.0); // boundary row of 8 entries
        assert_eq!(tg.send_volume(1), 8.0);
    }
}
