//! Deterministic sparse-matrix generators, one per structural class of
//! the paper's 25-matrix UFL selection.
//!
//! Every generator takes an explicit seed and uses `ChaCha8` so the
//! dataset is bit-reproducible across platforms and `rand` point
//! releases. Generated matrices are *patterns* (see
//! [`crate::SparsePattern`]) and always include the diagonal, matching
//! the row-load model (`1 + nnz`) used for partitioning.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::pattern::SparsePattern;

/// 2-D grid stencil variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil2D {
    /// von Neumann neighborhood (4 neighbors).
    FivePoint,
    /// Moore neighborhood (8 neighbors).
    NinePoint,
}

/// 3-D grid stencil variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil3D {
    /// Face neighbors (6).
    SevenPoint,
    /// Full 3×3×3 neighborhood (26).
    TwentySevenPoint,
}

/// 2-D structured-grid matrix (`nx·ny` rows), e.g. finite differences.
pub fn stencil2d(nx: usize, ny: usize, kind: Stencil2D) -> SparsePattern {
    let n = nx * ny;
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut entries = Vec::with_capacity(n * 5);
    for y in 0..ny {
        for x in 0..nx {
            let r = idx(x, y);
            entries.push((r, r));
            let mut push = |dx: isize, dy: isize| {
                let (tx, ty) = (x as isize + dx, y as isize + dy);
                if tx >= 0 && ty >= 0 && (tx as usize) < nx && (ty as usize) < ny {
                    entries.push((r, idx(tx as usize, ty as usize)));
                }
            };
            push(-1, 0);
            push(1, 0);
            push(0, -1);
            push(0, 1);
            if kind == Stencil2D::NinePoint {
                push(-1, -1);
                push(-1, 1);
                push(1, -1);
                push(1, 1);
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// 3-D structured-grid matrix (`nx·ny·nz` rows).
pub fn stencil3d(nx: usize, ny: usize, nz: usize, kind: Stencil3D) -> SparsePattern {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * nx * ny + y * nx + x) as u32;
    let mut entries = Vec::with_capacity(n * 7);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = idx(x, y, z);
                for dz in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            let face_dist = dx.abs() + dy.abs() + dz.abs();
                            let keep = match kind {
                                Stencil3D::SevenPoint => face_dist <= 1,
                                Stencil3D::TwentySevenPoint => true,
                            };
                            if !keep {
                                continue;
                            }
                            let (tx, ty, tz) = (x as isize + dx, y as isize + dy, z as isize + dz);
                            if tx >= 0
                                && ty >= 0
                                && tz >= 0
                                && (tx as usize) < nx
                                && (ty as usize) < ny
                                && (tz as usize) < nz
                            {
                                entries.push((r, idx(tx as usize, ty as usize, tz as usize)));
                            }
                        }
                    }
                }
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// Random geometric graph on the unit square: `n` points, edges between
/// pairs closer than `radius` — the structural class of the paper's
/// `rgg_n_2_23_s0`. Grid-bucketed so generation is O(n·deg).
pub fn rgg(n: usize, radius: f64, seed: u64) -> SparsePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cell = radius.max(1e-9);
    let grid_n = (1.0 / cell).ceil() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); grid_n * grid_n];
    let bucket_of = |x: f64, y: f64| {
        let bx = ((x / cell) as usize).min(grid_n - 1);
        let by = ((y / cell) as usize).min(grid_n - 1);
        by * grid_n + bx
    };
    for (i, &(x, y)) in pts.iter().enumerate() {
        buckets[bucket_of(x, y)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut entries: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i)).collect();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let bx = ((x / cell) as usize).min(grid_n - 1);
        let by = ((y / cell) as usize).min(grid_n - 1);
        for nby in by.saturating_sub(1)..=(by + 1).min(grid_n - 1) {
            for nbx in bx.saturating_sub(1)..=(bx + 1).min(grid_n - 1) {
                for &j in &buckets[nby * grid_n + nbx] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let (dx, dy) = (px - x, py - y);
                    if dx * dx + dy * dy <= r2 {
                        entries.push((i as u32, j));
                        entries.push((j, i as u32));
                    }
                }
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// Cage-like matrix: a multi-diagonal Markov-chain structure with a few
/// random short-range couplings per row — emulating the DNA
/// electrophoresis `cage` family (≈19 nnz/row, moderate bandwidth,
/// strong diagonal structure).
pub fn cage_like(n: usize, seed: u64) -> SparsePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Diagonal offsets chosen like a 3-level chain (cage matrices come
    // from words over a small alphabet; transitions shift positions at
    // three scales).
    let w1 = (n as f64).powf(1.0 / 3.0).round().max(2.0) as i64;
    let w2 = w1 * w1;
    let offsets = [1i64, -1, w1, -w1, w2, -w2, w1 + 1, -(w1 + 1)];
    let mut entries: Vec<(u32, u32)> = Vec::with_capacity(n * 19);
    let window = (4 * w1).max(8);
    for i in 0..n as i64 {
        entries.push((i as u32, i as u32));
        for &o in &offsets {
            let j = i + o;
            if j >= 0 && j < n as i64 {
                entries.push((i as u32, j as u32));
            }
        }
        // ~5 random couplings within a local window on each side.
        for _ in 0..5 {
            let d = rng.gen_range(1..=window);
            let sign: bool = rng.gen();
            let j = if sign { i + d } else { i - d };
            if j >= 0 && j < n as i64 {
                entries.push((i as u32, j as u32));
                entries.push((j as u32, i as u32));
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// R-MAT scale-free graph (Chakrabarti et al. parameters `a,b,c,d`).
/// Approximately `n · avg_deg` off-diagonal entries, symmetrized.
pub fn rmat(n: usize, avg_deg: usize, probs: (f64, f64, f64, f64), seed: u64) -> SparsePattern {
    let (a, b, c, _d) = probs;
    assert!(n.is_power_of_two(), "R-MAT needs a power-of-two size");
    let levels = n.trailing_zeros();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = n * avg_deg / 2;
    let mut entries: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i)).collect();
    for _ in 0..m {
        let (mut r, mut cidx) = (0u32, 0u32);
        for lvl in 0..levels {
            let p: f64 = rng.gen();
            let (dr, dc) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << (levels - 1 - lvl);
            cidx |= dc << (levels - 1 - lvl);
        }
        if r != cidx {
            entries.push((r, cidx));
            entries.push((cidx, r));
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// Erdős–Rényi-style random matrix with ≈`avg_deg` off-diagonal entries
/// per row, symmetrized.
pub fn erdos_renyi(n: usize, avg_deg: usize, seed: u64) -> SparsePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut entries: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i)).collect();
    let m = n * avg_deg / 2;
    for _ in 0..m {
        let i = rng.gen_range(0..n as u32);
        let j = rng.gen_range(0..n as u32);
        if i != j {
            entries.push((i, j));
            entries.push((j, i));
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// Banded random matrix: ≈`avg_deg` entries per row uniformly within
/// `±bandwidth` of the diagonal, symmetrized. Emulates reordered
/// structural-mechanics matrices.
pub fn banded_random(n: usize, bandwidth: usize, avg_deg: usize, seed: u64) -> SparsePattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bw = bandwidth.max(1) as i64;
    let mut entries: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i)).collect();
    for i in 0..n as i64 {
        for _ in 0..avg_deg / 2 {
            let d = rng.gen_range(1..=bw);
            let sign: bool = rng.gen();
            let j = if sign { i + d } else { i - d };
            if j >= 0 && j < n as i64 {
                entries.push((i as u32, j as u32));
                entries.push((j as u32, i as u32));
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// FEM-style 2-D triangular mesh: structured grid with one diagonal per
/// cell, giving rows of degree ≈7 like assembled P1 stiffness matrices.
pub fn fem_mesh2d(nx: usize, ny: usize) -> SparsePattern {
    let n = nx * ny;
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut entries = Vec::with_capacity(n * 7);
    for y in 0..ny {
        for x in 0..nx {
            let r = idx(x, y);
            entries.push((r, r));
            let mut link = |tx: isize, ty: isize| {
                if tx >= 0 && ty >= 0 && (tx as usize) < nx && (ty as usize) < ny {
                    let c = idx(tx as usize, ty as usize);
                    entries.push((r, c));
                    entries.push((c, r));
                }
            };
            link(x as isize + 1, y as isize);
            link(x as isize, y as isize + 1);
            // One diagonal per quad cell (the triangulation edge).
            link(x as isize + 1, y as isize + 1);
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

/// Block matrix: `nblocks` dense-ish diagonal blocks with sparse random
/// coupling between consecutive blocks — emulating multiphysics /
/// circuit matrices.
pub fn block_coupled(
    nblocks: usize,
    block_size: usize,
    intra_deg: usize,
    coupling: usize,
    seed: u64,
) -> SparsePattern {
    let n = nblocks * block_size;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut entries: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, i)).collect();
    for b in 0..nblocks {
        let base = (b * block_size) as u32;
        for i in 0..block_size as u32 {
            for _ in 0..intra_deg / 2 {
                let j = rng.gen_range(0..block_size as u32);
                if i != j {
                    entries.push((base + i, base + j));
                    entries.push((base + j, base + i));
                }
            }
        }
        if b + 1 < nblocks {
            let next = ((b + 1) * block_size) as u32;
            for _ in 0..coupling {
                let i = rng.gen_range(0..block_size as u32);
                let j = rng.gen_range(0..block_size as u32);
                entries.push((base + i, next + j));
                entries.push((next + j, base + i));
            }
        }
    }
    SparsePattern::from_entries(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_graph::connected_components;

    #[test]
    fn stencil2d_five_point_shape() {
        let p = stencil2d(4, 3, Stencil2D::FivePoint);
        assert_eq!(p.nrows(), 12);
        // Interior row has 5 entries, corner has 3.
        assert_eq!(p.row_nnz(5), 5); // (1,1) interior
        assert_eq!(p.row_nnz(0), 3);
        // Symmetric by construction.
        for (r, c) in p.entries() {
            assert!(p.contains(c, r));
        }
    }

    #[test]
    fn stencil3d_seven_point_interior_degree() {
        let p = stencil3d(3, 3, 3, Stencil3D::SevenPoint);
        assert_eq!(p.nrows(), 27);
        assert_eq!(p.row_nnz(13), 7); // center cell
        let p27 = stencil3d(3, 3, 3, Stencil3D::TwentySevenPoint);
        assert_eq!(p27.row_nnz(13), 27);
    }

    #[test]
    fn rgg_is_symmetric_and_mostly_connected() {
        let p = rgg(500, 0.08, 42);
        assert_eq!(p.nrows(), 500);
        for (r, c) in p.entries() {
            assert!(p.contains(c, r));
        }
        // With this density the giant component should dominate.
        let comps = connected_components(&p.to_graph());
        let max = comps.sizes().into_iter().max().unwrap();
        assert!(max > 450, "giant component too small: {max}");
    }

    #[test]
    fn rgg_is_deterministic_per_seed() {
        assert_eq!(rgg(200, 0.1, 7), rgg(200, 0.1, 7));
        assert_ne!(rgg(200, 0.1, 7), rgg(200, 0.1, 8));
    }

    #[test]
    fn cage_like_density_resembles_cage_family() {
        let p = cage_like(4096, 1);
        let avg = p.avg_row_nnz();
        assert!((10.0..25.0).contains(&avg), "cage-like avg nnz/row = {avg}");
        for (r, c) in p.entries() {
            if r != c {
                // random couplings symmetrized, structural diagonals not
                // necessarily — just check entries stay in range
                assert!((c as usize) < p.ncols());
            }
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let p = rmat(1024, 8, (0.57, 0.19, 0.19, 0.05), 3);
        let max_deg = (0..1024u32).map(|r| p.row_nnz(r)).max().unwrap();
        let avg = p.avg_row_nnz();
        assert!(
            max_deg as f64 > 4.0 * avg,
            "R-MAT should have hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn banded_respects_bandwidth() {
        let p = banded_random(1000, 20, 6, 9);
        for (r, c) in p.entries() {
            assert!((i64::from(r) - i64::from(c)).abs() <= 20);
        }
    }

    #[test]
    fn fem_mesh_interior_degree_is_seven() {
        let p = fem_mesh2d(5, 5);
        assert_eq!(p.row_nnz(12), 7); // interior vertex of a triangulated grid
    }

    #[test]
    fn block_coupled_is_block_structured() {
        let p = block_coupled(4, 50, 8, 5, 17);
        assert_eq!(p.nrows(), 200);
        for (r, c) in p.entries() {
            let (br, bc) = (r / 50, c / 50);
            assert!(
                br == bc || br + 1 == bc || bc + 1 == br,
                "entry ({r},{c}) couples non-adjacent blocks"
            );
        }
    }

    #[test]
    fn erdos_renyi_hits_target_density() {
        let p = erdos_renyi(2000, 10, 5);
        let avg = p.avg_row_nnz();
        assert!((8.0..=12.0).contains(&avg), "avg = {avg}");
    }
}
