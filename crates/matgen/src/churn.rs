//! Seeded fault-injection churn sequences.
//!
//! Generates reproducible streams of [`ChurnEvent`]s — node failures,
//! allocation shrink/growth batches, soft link degradations and
//! (bounded) hard link failures — against a machine/allocation pair.
//! The generator tracks the state its own events create (which nodes
//! are gone, which links are degraded), so every event in the stream
//! is *live*: failures hit nodes that are still allocated, growth
//! returns capacity that actually left, restores target links that are
//! actually degraded. The differential remap harness and the failover
//! example replay these streams; same spec + same seed ⇒ same stream.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_topology::{Allocation, ChurnEvent, Machine};

/// Parameters of a churn stream.
#[derive(Clone, Debug)]
pub struct ChurnSpec {
    /// Number of events to generate.
    pub events: usize,
    /// Max nodes per shrink/growth batch.
    pub max_batch: usize,
    /// Cap on the fraction of the allocation simultaneously removed
    /// (keeps most repairs feasible; growth is forced at the cap).
    pub max_removed_fraction: f64,
    /// Include soft link degradations (bandwidth factor in `0 < f < 1`)
    /// and their restores.
    pub link_degradations: bool,
    /// Max simultaneously hard-failed links (`0` disables hard link
    /// failures; keep at `1` to preserve connectivity on small
    /// machines).
    pub max_link_failures: usize,
    /// RNG seed; streams are deterministic per seed.
    pub seed: u64,
}

impl ChurnSpec {
    /// A balanced stream: small batches, soft link noise, at most one
    /// hard link failure outstanding.
    pub fn new(events: usize, seed: u64) -> Self {
        Self {
            events,
            max_batch: 2,
            max_removed_fraction: 0.25,
            link_degradations: true,
            max_link_failures: 1,
            seed,
        }
    }

    /// Node churn only (no link events) — the allocation-free warm
    /// repair path.
    pub fn nodes_only(events: usize, seed: u64) -> Self {
        Self {
            link_degradations: false,
            max_link_failures: 0,
            ..Self::new(events, seed)
        }
    }
}

/// Generates `spec.events` churn events against `machine`/`alloc`.
///
/// The returned stream is meant to be applied in order (e.g. one
/// `remap_incremental` call per event, or batched); the generator
/// simulates the allocation and link state internally so it never
/// emits a stale event.
pub fn churn_sequence(machine: &Machine, alloc: &Allocation, spec: &ChurnSpec) -> Vec<ChurnEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut allocated: Vec<u32> = alloc.nodes().to_vec();
    let mut removed: Vec<u32> = Vec::new();
    let mut soft: Vec<u32> = Vec::new(); // links at 0 < factor < 1
    let mut hard: Vec<u32> = Vec::new(); // links at factor 0
    let num_links = machine.topology().num_physical_links() as u32;
    let max_batch = spec.max_batch.max(1);
    let removed_cap =
        ((alloc.num_nodes() as f64 * spec.max_removed_fraction) as usize).max(max_batch);
    let mut events = Vec::with_capacity(spec.events);
    while events.len() < spec.events {
        let roll = rng.gen_range(0..100u32);
        let ev = if removed.len() >= removed_cap && !removed.is_empty() {
            // At the shrink cap: force growth so the job stays (mostly)
            // feasible.
            grow(&mut rng, &mut allocated, &mut removed, max_batch)
        } else if roll < 25 && allocated.len() > 1 {
            let i = rng.gen_range(0..allocated.len());
            let node = allocated.swap_remove(i);
            removed.push(node);
            ChurnEvent::NodeFailed { node }
        } else if roll < 45 && allocated.len() > max_batch {
            let batch = rng.gen_range(1..=max_batch.min(allocated.len() - 1));
            let mut nodes = Vec::with_capacity(batch);
            for _ in 0..batch {
                let i = rng.gen_range(0..allocated.len());
                let node = allocated.swap_remove(i);
                removed.push(node);
                nodes.push(node);
            }
            ChurnEvent::NodesRemoved { nodes }
        } else if roll < 70 && !removed.is_empty() {
            grow(&mut rng, &mut allocated, &mut removed, max_batch)
        } else if roll < 90 && spec.link_degradations && num_links > 0 {
            if !soft.is_empty() && rng.gen_range(0..3u32) == 0 {
                let i = rng.gen_range(0..soft.len());
                ChurnEvent::LinkDegraded {
                    link: soft.swap_remove(i),
                    factor: 1.0,
                }
            } else {
                let link = rng.gen_range(0..num_links);
                if soft.contains(&link) || hard.contains(&link) {
                    continue;
                }
                soft.push(link);
                ChurnEvent::LinkDegraded {
                    link,
                    factor: 0.25 * f64::from(rng.gen_range(1..4u32)),
                }
            }
        } else if spec.max_link_failures > 0 && num_links > 0 {
            if hard.len() >= spec.max_link_failures {
                let i = rng.gen_range(0..hard.len());
                ChurnEvent::LinkDegraded {
                    link: hard.swap_remove(i),
                    factor: 1.0,
                }
            } else {
                let link = rng.gen_range(0..num_links);
                if soft.contains(&link) || hard.contains(&link) {
                    continue;
                }
                hard.push(link);
                ChurnEvent::LinkDegraded { link, factor: 0.0 }
            }
        } else {
            // Nothing rolled is possible right now (e.g. link events
            // disabled and nothing to grow); fail a node if we can.
            if allocated.len() > 1 {
                let i = rng.gen_range(0..allocated.len());
                let node = allocated.swap_remove(i);
                removed.push(node);
                ChurnEvent::NodeFailed { node }
            } else {
                continue;
            }
        };
        events.push(ev);
    }
    events
}

/// Growth batch: returns previously removed nodes to the allocation.
fn grow(
    rng: &mut ChaCha8Rng,
    allocated: &mut Vec<u32>,
    removed: &mut Vec<u32>,
    max_batch: usize,
) -> ChurnEvent {
    let batch = rng.gen_range(1..=max_batch.min(removed.len()));
    let mut nodes = Vec::with_capacity(batch);
    for _ in 0..batch {
        let i = rng.gen_range(0..removed.len());
        let node = removed.swap_remove(i);
        allocated.push(node);
        nodes.push(node);
    }
    ChurnEvent::NodesAdded { nodes }
}

/// Parameters of an open-loop arrival process (map requests
/// interleaved with churn events) for soak harnesses and the service
/// example.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Total number of arrivals (requests + churn events).
    pub events: usize,
    /// Mean inter-arrival gap in nanoseconds (exponentially
    /// distributed, so the stream is Poisson-ish).
    pub mean_gap_ns: u64,
    /// Fraction of arrivals that are churn events (the rest are map
    /// requests).
    pub churn_fraction: f64,
    /// Inclusive range of task counts drawn per map request.
    pub tasks: (u32, u32),
    /// Shape of the embedded churn stream (`events` and `seed` fields
    /// are overridden by this spec's draw).
    pub churn: ChurnSpec,
    /// RNG seed; streams are deterministic per seed.
    pub seed: u64,
}

impl LoadSpec {
    /// A balanced open-loop stream: ~1 churn event per 4 requests,
    /// small task graphs, 50 µs mean gap.
    pub fn new(events: usize, seed: u64) -> Self {
        Self {
            events,
            mean_gap_ns: 50_000,
            churn_fraction: 0.2,
            tasks: (32, 128),
            churn: ChurnSpec::new(0, 0),
            seed,
        }
    }
}

/// One arrival of an open-loop load stream. `gap_ns` is the delay
/// since the *previous* arrival (0 for the first), so replaying the
/// stream at generated pace is a running sum.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadEvent {
    /// A map request for a fresh `tasks`-task graph; `seed` makes the
    /// graph reproducible on the consumer side.
    Request {
        /// Delay since the previous arrival, nanoseconds.
        gap_ns: u64,
        /// Number of tasks in the requested graph.
        tasks: u32,
        /// Seed for generating the request's task graph.
        seed: u64,
    },
    /// A churn event against the shared machine/allocation.
    Churn {
        /// Delay since the previous arrival, nanoseconds.
        gap_ns: u64,
        /// The fault/allocation event.
        event: ChurnEvent,
    },
}

impl LoadEvent {
    /// The arrival's delay since the previous arrival, nanoseconds.
    pub fn gap_ns(&self) -> u64 {
        match self {
            LoadEvent::Request { gap_ns, .. } | LoadEvent::Churn { gap_ns, .. } => *gap_ns,
        }
    }
}

/// Generates a seeded open-loop arrival stream of `spec.events` map
/// requests and churn events against `machine`/`alloc`.
///
/// Inter-arrival gaps are exponential with mean `spec.mean_gap_ns`;
/// each slot is a churn event with probability `spec.churn_fraction`.
/// The embedded churn events come from [`churn_sequence`] and stay
/// *live* under in-order replay because map requests never mutate the
/// machine or the allocation.
pub fn load_sequence(machine: &Machine, alloc: &Allocation, spec: &LoadSpec) -> Vec<LoadEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    // Draw slot kinds and gaps first so the churn sub-stream can be
    // sized exactly to the churn slots it fills.
    let mut slots = Vec::with_capacity(spec.events);
    let mut churn_slots = 0usize;
    for i in 0..spec.events {
        let gap_ns = if i == 0 {
            0
        } else {
            let u: f64 = rng.gen();
            (-(spec.mean_gap_ns as f64) * (1.0 - u).ln()) as u64
        };
        let is_churn = rng.gen_bool(spec.churn_fraction.clamp(0.0, 1.0));
        churn_slots += usize::from(is_churn);
        slots.push((gap_ns, is_churn));
    }
    let churn_spec = ChurnSpec {
        events: churn_slots,
        seed: spec
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1),
        ..spec.churn.clone()
    };
    let mut churn = churn_sequence(machine, alloc, &churn_spec).into_iter();
    let (lo, hi) = spec.tasks;
    let (lo, hi) = (lo.min(hi).max(1), hi.max(lo).max(1));
    slots
        .into_iter()
        .map(
            |(gap_ns, is_churn)| match is_churn.then(|| churn.next()).flatten() {
                Some(event) => LoadEvent::Churn { gap_ns, event },
                None => LoadEvent::Request {
                    gap_ns,
                    tasks: rng.gen_range(lo..=hi),
                    seed: rng.gen_range(0..u64::MAX),
                },
            },
        )
        .collect()
}

/// A seeded byte-corruption plan for a journal tail: `count` pairs of
/// `(byte offset, xor mask)` with offsets in `tail_from..len` and
/// masks guaranteed nonzero (every point flips at least one bit).
/// Deterministic per seed so a crash-recovery chaos harness can
/// corrupt a write-ahead log's tail reproducibly and assert the typed
/// torn-tail truncation path — never a panic — on replay. Offsets are
/// ascending and deduplicated; returns an empty plan when the tail
/// window `tail_from..len` is empty.
pub fn corruption_points(len: u64, tail_from: u64, count: usize, seed: u64) -> Vec<(u64, u8)> {
    if tail_from >= len || count == 0 {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut points: Vec<(u64, u8)> = (0..count)
        .map(|_| {
            let off = rng.gen_range(tail_from..len);
            let mask = rng.gen_range(1..=u8::MAX);
            (off, mask)
        })
        .collect();
    points.sort_unstable_by_key(|&(off, _)| off);
    points.dedup_by_key(|&mut (off, _)| off);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn setup() -> (Machine, Allocation) {
        let machine = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(8, 3));
        (machine, alloc)
    }

    #[test]
    fn same_seed_reproduces_different_seeds_differ() {
        let (m, a) = setup();
        let s1 = churn_sequence(&m, &a, &ChurnSpec::new(40, 9));
        let s2 = churn_sequence(&m, &a, &ChurnSpec::new(40, 9));
        let s3 = churn_sequence(&m, &a, &ChurnSpec::new(40, 10));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn events_are_live_when_replayed() {
        let (mut m, mut a) = setup();
        let events = churn_sequence(&m, &a, &ChurnSpec::new(60, 1));
        assert_eq!(events.len(), 60);
        for ev in &events {
            match ev {
                ChurnEvent::LinkDegraded { link, factor } => {
                    assert_ne!(m.link_factor(*link), *factor, "stale link event");
                    ev.apply(&mut m, &mut a);
                    assert_eq!(m.link_factor(*link), *factor);
                }
                _ => {
                    let changed = ev.apply(&mut m, &mut a);
                    assert!(changed > 0, "stale event in stream: {ev:?}");
                }
            }
        }
        assert!(!a.nodes().is_empty());
    }

    #[test]
    fn nodes_only_stream_has_no_link_events() {
        let (m, a) = setup();
        let events = churn_sequence(&m, &a, &ChurnSpec::nodes_only(50, 4));
        assert!(events
            .iter()
            .all(|e| !matches!(e, ChurnEvent::LinkDegraded { .. })));
    }

    #[test]
    fn load_sequence_is_seeded_and_mixes_kinds() {
        let (m, a) = setup();
        let spec = LoadSpec::new(200, 7);
        let s1 = load_sequence(&m, &a, &spec);
        let s2 = load_sequence(&m, &a, &spec);
        let s3 = load_sequence(&m, &a, &LoadSpec::new(200, 8));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1.len(), 200);
        let churn = s1
            .iter()
            .filter(|e| matches!(e, LoadEvent::Churn { .. }))
            .count();
        // ~20% of 200 slots; loose bounds, just "both kinds present".
        assert!((10..=90).contains(&churn), "churn slots: {churn}");
        assert_eq!(s1[0].gap_ns(), 0);
        let mean = s1.iter().map(LoadEvent::gap_ns).sum::<u64>() / (s1.len() as u64 - 1);
        assert!(
            (10_000..=250_000).contains(&mean),
            "mean gap off target: {mean}"
        );
        for ev in &s1 {
            if let LoadEvent::Request { tasks, .. } = ev {
                assert!((32..=128).contains(tasks));
            }
        }
    }

    #[test]
    fn load_sequence_churn_stays_live_under_replay() {
        let (mut m, mut a) = setup();
        let events = load_sequence(&m, &a, &LoadSpec::new(300, 11));
        let mut churn_seen = 0;
        for ev in &events {
            if let LoadEvent::Churn { event, .. } = ev {
                churn_seen += 1;
                match event {
                    ChurnEvent::LinkDegraded { link, factor } => {
                        assert_ne!(m.link_factor(*link), *factor, "stale link event");
                    }
                    _ => {
                        assert!(event.apply(&mut m, &mut a) > 0, "stale event: {event:?}");
                        continue;
                    }
                }
                event.apply(&mut m, &mut a);
            }
        }
        assert!(churn_seen > 0);
    }

    #[test]
    fn corruption_points_are_deterministic_in_window_and_nonzero() {
        let a = corruption_points(1000, 600, 16, 42);
        let b = corruption_points(1000, 600, 16, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "offsets ascending");
        for &(off, mask) in &a {
            assert!((600..1000).contains(&off));
            assert_ne!(mask, 0);
        }
        assert_ne!(a, corruption_points(1000, 600, 16, 43), "seed matters");
        assert!(corruption_points(100, 100, 8, 1).is_empty());
        assert!(corruption_points(100, 40, 0, 1).is_empty());
    }

    #[test]
    fn hard_failures_respect_the_concurrency_cap() {
        let (m, a) = setup();
        let events = churn_sequence(&m, &a, &ChurnSpec::new(80, 12));
        let mut failed = std::collections::HashSet::new();
        for ev in &events {
            if let ChurnEvent::LinkDegraded { link, factor } = ev {
                if *factor == 0.0 {
                    failed.insert(*link);
                } else if *factor == 1.0 {
                    failed.remove(link);
                }
                assert!(failed.len() <= 1, "more than one hard failure outstanding");
            }
        }
    }
}
