//! CSR sparsity patterns.
//!
//! Every metric in the paper depends only on *which* entries are nonzero
//! (message existence and vector-entry counts), never on values, so the
//! matrix type stores structure alone: sorted, deduplicated column
//! indices per row.

use umpa_graph::{Graph, GraphBuilder};

/// A sparse matrix pattern in CSR form (square or rectangular).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<u32>,
}

impl SparsePattern {
    /// Builds from an entry list; duplicates are merged, entries sorted.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut per_row: Vec<Vec<u32>> = vec![Vec::new(); nrows];
        for (r, c) in entries {
            debug_assert!((r as usize) < nrows && (c as usize) < ncols);
            per_row[r as usize].push(c);
        }
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        for row in &mut per_row {
            row.sort_unstable();
            row.dedup();
            colidx.extend_from_slice(row);
            rowptr.push(colidx.len());
        }
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
        }
    }

    /// Builds directly from CSR arrays (must be sorted and deduplicated
    /// within each row).
    pub fn from_csr(nrows: usize, ncols: usize, rowptr: Vec<usize>, colidx: Vec<u32>) -> Self {
        assert_eq!(rowptr.len(), nrows + 1);
        assert_eq!(*rowptr.last().unwrap(), colidx.len());
        debug_assert!((0..nrows).all(|r| {
            let row = &colidx[rowptr[r]..rowptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.iter().all(|&c| (c as usize) < ncols)
        }));
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Column indices of row `r` (sorted).
    #[inline]
    pub fn row(&self, r: u32) -> &[u32] {
        &self.colidx[self.rowptr[r as usize]..self.rowptr[r as usize + 1]]
    }

    /// Number of nonzeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: u32) -> usize {
        self.rowptr[r as usize + 1] - self.rowptr[r as usize]
    }

    /// Whether entry `(r, c)` is present (binary search).
    pub fn contains(&self, r: u32, c: u32) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Iterates all `(row, col)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.nrows as u32).flat_map(move |r| self.row(r).iter().map(move |&c| (r, c)))
    }

    /// The transposed pattern.
    pub fn transpose(&self) -> Self {
        let mut cnt = vec![0usize; self.ncols];
        for &c in &self.colidx {
            cnt[c as usize] += 1;
        }
        let mut rowptr = vec![0usize; self.ncols + 1];
        for c in 0..self.ncols {
            rowptr[c + 1] = rowptr[c] + cnt[c];
        }
        let mut colidx = vec![0u32; self.nnz()];
        let mut next = rowptr.clone();
        for (r, c) in self.entries() {
            colidx[next[c as usize]] = r;
            next[c as usize] += 1;
        }
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
        }
    }

    /// Structural symmetrization `A ∪ Aᵀ` (square matrices only).
    pub fn symmetrized(&self) -> Self {
        assert_eq!(self.nrows, self.ncols, "symmetrize needs a square matrix");
        let t = self.transpose();
        let entries = self.entries().chain(t.entries());
        Self::from_entries(self.nrows, self.ncols, entries)
    }

    /// The standard graph model for 1-D row-wise partitioning: vertices
    /// are rows with weight = `1 + nnz(row)` (task load ∝ row nonzeros),
    /// undirected unit-weight edges for every off-diagonal structural
    /// nonzero of `A ∪ Aᵀ`.
    pub fn to_graph(&self) -> Graph {
        assert_eq!(self.nrows, self.ncols, "graph model needs a square matrix");
        let sym = self.symmetrized();
        let mut b = GraphBuilder::new(self.nrows);
        for (r, c) in sym.entries() {
            if r < c {
                b.add_edge(r, c, 1.0);
            }
        }
        b.vertex_weights(
            (0..self.nrows as u32)
                .map(|r| 1.0 + self.row_nnz(r) as f64)
                .collect(),
        );
        b.build_symmetric()
    }

    /// Mean nonzeros per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparsePattern {
        // 3x3: (0,0) (0,2) (1,1) (2,0)
        SparsePattern::from_entries(3, 3, [(0, 0), (0, 2), (1, 1), (2, 0)])
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let p = SparsePattern::from_entries(2, 3, [(0, 2), (0, 1), (0, 2), (1, 0)]);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.row(0), &[1, 2]);
        assert_eq!(p.row(1), &[0]);
    }

    #[test]
    fn contains_checks_membership() {
        let p = small();
        assert!(p.contains(0, 2));
        assert!(!p.contains(2, 2));
    }

    #[test]
    fn transpose_flips_entries() {
        let p = small();
        let t = p.transpose();
        assert_eq!(t.nnz(), p.nnz());
        for (r, c) in p.entries() {
            assert!(t.contains(c, r));
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let p = small();
        assert_eq!(p.transpose().transpose(), p);
    }

    #[test]
    fn symmetrized_contains_both_directions() {
        let p = small();
        let s = p.symmetrized();
        assert!(s.contains(0, 2) && s.contains(2, 0));
        assert!(s.contains(0, 0)); // diagonal kept
        assert_eq!(s.nnz(), 4); // the pattern is already symmetric
    }

    #[test]
    fn graph_model_drops_diagonal_and_weights_rows() {
        let p = small();
        let g = p.to_graph();
        assert_eq!(g.num_vertices(), 3);
        // Only off-diagonal pair {0,2} -> symmetric edge both ways.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.vertex_weight(0), 3.0); // 1 + 2 nnz
        assert_eq!(g.vertex_weight(1), 2.0);
    }

    #[test]
    fn rectangular_pattern_roundtrip() {
        let p = SparsePattern::from_entries(2, 4, [(0, 3), (1, 0), (1, 3)]);
        assert_eq!(p.nrows(), 2);
        assert_eq!(p.ncols(), 4);
        assert_eq!(p.transpose().nrows(), 4);
        assert_eq!(p.avg_row_nnz(), 1.5);
    }
}
