//! k-ary n-dimensional torus geometry.

/// Maximum supported torus dimensionality (the Top500 machines the paper
/// cites use 3-D, 5-D and 6-D tori).
pub const MAX_DIMS: usize = 6;

/// A k-ary n-D torus (or mesh) of routers.
///
/// Routers are dense ids `0..num_routers`, laid out in row-major order
/// with dimension 0 fastest-varying. Distances and routes are computed
/// arithmetically in `O(ndims)` — no search. With `wraparound` off the
/// geometry is a mesh: same ids, no wrap links — the WH-minimizing
/// algorithms of the paper only need hop distances and work unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torus {
    dims: Vec<u32>,
    /// `stride[d]` = id increment for +1 step in dimension `d`.
    strides: Vec<u32>,
    wrap: bool,
}

impl Torus {
    /// Creates a torus (with wraparound) of the given extents.
    ///
    /// Panics if `dims` is empty, longer than [`MAX_DIMS`], or any
    /// extent is zero.
    pub fn new(dims: &[u32]) -> Self {
        Self::build(dims, true)
    }

    /// Creates a mesh (no wraparound) of the given extents.
    pub fn new_mesh(dims: &[u32]) -> Self {
        Self::build(dims, false)
    }

    fn build(dims: &[u32], wrap: bool) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "torus must have 1..={MAX_DIMS} dimensions"
        );
        assert!(dims.iter().all(|&k| k > 0), "zero-extent dimension");
        let mut strides = Vec::with_capacity(dims.len());
        let mut s = 1u32;
        for &k in dims {
            strides.push(s);
            s = s.checked_mul(k).expect("torus too large for u32 ids");
        }
        Self {
            dims: dims.to_vec(),
            strides,
            wrap,
        }
    }

    /// Whether wraparound links exist.
    #[inline]
    pub fn has_wraparound(&self) -> bool {
        self.wrap
    }

    /// Per-dimension extents.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of routers.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.dims.iter().product::<u32>() as usize
    }

    /// Network diameter: maximum hop distance between any router pair.
    pub fn diameter(&self) -> u32 {
        if self.wrap {
            self.dims.iter().map(|&k| k / 2).sum()
        } else {
            self.dims.iter().map(|&k| k - 1).sum()
        }
    }

    /// Writes the coordinates of router `r` into `out[..ndims]`.
    #[inline]
    pub fn coords_into(&self, r: u32, out: &mut [u32; MAX_DIMS]) {
        let mut rest = r;
        for (d, &k) in self.dims.iter().enumerate() {
            out[d] = rest % k;
            rest /= k;
        }
    }

    /// Coordinates of router `r` as a fresh array (first `ndims` valid).
    #[inline]
    pub fn coords(&self, r: u32) -> [u32; MAX_DIMS] {
        let mut c = [0u32; MAX_DIMS];
        self.coords_into(r, &mut c);
        c
    }

    /// Router id at the given coordinates (first `ndims` entries used).
    #[inline]
    pub fn router_at(&self, coords: &[u32]) -> u32 {
        debug_assert!(coords.len() >= self.ndims());
        let mut r = 0u32;
        for ((&c, &dim), &stride) in coords.iter().zip(&self.dims).zip(&self.strides) {
            debug_assert!(c < dim);
            r += c * stride;
        }
        r
    }

    /// Coordinate of router `r` along dimension `d`.
    #[inline]
    pub fn coord(&self, r: u32, d: usize) -> u32 {
        (r / self.strides[d]) % self.dims[d]
    }

    /// Hop distance between routers `a` and `b` (shortest path length,
    /// honoring wraparound if present), computed in `O(ndims)`.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let mut hops = 0;
        for d in 0..self.ndims() {
            let k = self.dims[d];
            let ca = self.coord(a, d);
            let cb = self.coord(b, d);
            if self.wrap {
                let fwd = (cb + k - ca) % k;
                hops += fwd.min(k - fwd);
            } else {
                hops += ca.abs_diff(cb);
            }
        }
        hops
    }

    /// Writes the hop distance from `a` to **every** router (in id
    /// order) into `out[..num_routers]` — the per-source sweep behind
    /// the distance-oracle build. Instead of decoding both endpoints'
    /// coordinates per pair (`O(ndims)` div/mod each), the sweep
    /// precomputes one per-dimension distance table from `a` and walks
    /// the ids in row-major order with an odometer, updating the sum
    /// incrementally — `O(1)` amortized per destination. Values are
    /// exactly [`distance`](Self::distance)`(a, r)` (same integer
    /// per-dimension terms), truncated to `u16` (callers bound the
    /// diameter first).
    pub fn fill_distances(&self, a: u32, out: &mut [u16]) {
        let n = self.num_routers();
        assert!(out.len() >= n, "output row shorter than the router count");
        let nd = self.ndims();
        let ca = self.coords(a);
        // Flat per-dimension distance tables: dd[dim_off[d] + x] =
        // ring/line distance from ca[d] to x along dimension d.
        let mut dd: Vec<u16> = Vec::with_capacity(self.dims.iter().sum::<u32>() as usize);
        let mut dim_off = [0usize; MAX_DIMS];
        for d in 0..nd {
            dim_off[d] = dd.len();
            let k = self.dims[d];
            for x in 0..k {
                let dist = if self.wrap {
                    let fwd = (x + k - ca[d]) % k;
                    fwd.min(k - fwd)
                } else {
                    x.abs_diff(ca[d])
                };
                dd.push(dist as u16);
            }
        }
        // Row-major odometer (dimension 0 fastest), keeping the running
        // per-dimension sum in `total`.
        let mut coord = [0usize; MAX_DIMS];
        let mut total: u32 = (0..nd).map(|d| u32::from(dd[dim_off[d]])).sum();
        for slot in out[..n].iter_mut() {
            *slot = total as u16;
            for d in 0..nd {
                let k = self.dims[d] as usize;
                let base = dim_off[d];
                let c = coord[d];
                total -= u32::from(dd[base + c]);
                if c + 1 < k {
                    coord[d] = c + 1;
                    total += u32::from(dd[base + c + 1]);
                    break;
                }
                coord[d] = 0;
                total += u32::from(dd[base]);
                // carry into the next dimension
            }
        }
    }

    /// The router one step from `r` along dimension `d`; `positive`
    /// selects the +1 or −1 direction. On a mesh boundary where the
    /// step does not exist, `r` itself is returned (callers treat a
    /// self-step as "no neighbor").
    #[inline]
    pub fn neighbor(&self, r: u32, d: usize, positive: bool) -> u32 {
        let k = self.dims[d];
        let c = self.coord(r, d);
        let nc = if positive {
            if c + 1 < k {
                c + 1
            } else if self.wrap {
                0
            } else {
                return r;
            }
        } else if c > 0 {
            c - 1
        } else if self.wrap {
            k - 1
        } else {
            return r;
        };
        r + (nc * self.strides[d]) - (c * self.strides[d])
    }

    /// All neighbors of `r` (up to `2·ndims`; fewer when an extent ≤ 2
    /// makes both directions coincide). Deduplicated, deterministic
    /// order.
    pub fn neighbors(&self, r: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(2 * self.ndims());
        for d in 0..self.ndims() {
            let p = self.neighbor(r, d, true);
            let m = self.neighbor(r, d, false);
            if p != r && !out.contains(&p) {
                out.push(p);
            }
            if m != r && !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let t = Torus::new(&[4, 3, 5]);
        assert_eq!(t.num_routers(), 60);
        for r in 0..60u32 {
            let c = t.coords(r);
            assert_eq!(t.router_at(&c[..3]), r);
        }
    }

    #[test]
    fn distance_uses_wraparound() {
        let t = Torus::new(&[8]);
        assert_eq!(t.distance(0, 1), 1);
        assert_eq!(t.distance(0, 7), 1);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(2, 6), 4);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let t = Torus::new(&[5, 4]);
        for a in 0..20u32 {
            for b in 0..20u32 {
                assert_eq!(t.distance(a, b), t.distance(b, a));
                for c in 0..20u32 {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
                }
            }
        }
    }

    #[test]
    fn diameter_3d() {
        let t = Torus::new(&[17, 8, 24]);
        assert_eq!(t.diameter(), 8 + 4 + 12);
    }

    #[test]
    fn fill_distances_matches_per_pair_distance() {
        for t in [
            Torus::new(&[5, 4, 3]),
            Torus::new(&[2, 4]),
            Torus::new(&[1, 6]),
            Torus::new_mesh(&[4, 3]),
            Torus::new(&[8]),
        ] {
            let n = t.num_routers();
            let mut row = vec![0u16; n];
            for a in 0..n as u32 {
                t.fill_distances(a, &mut row);
                for b in 0..n as u32 {
                    assert_eq!(
                        u32::from(row[b as usize]),
                        t.distance(a, b),
                        "{:?} {a}->{b}",
                        t.dims()
                    );
                }
            }
        }
    }

    #[test]
    fn neighbors_step_one_hop() {
        let t = Torus::new(&[4, 4, 4]);
        for r in 0..64u32 {
            let ns = t.neighbors(r);
            assert_eq!(ns.len(), 6);
            for n in ns {
                assert_eq!(t.distance(r, n), 1);
            }
        }
    }

    #[test]
    fn small_extent_dedups_neighbors() {
        let t = Torus::new(&[2, 3]);
        // dimension 0 extent 2: +1 and -1 are the same router.
        let ns = t.neighbors(0);
        assert_eq!(ns.len(), 3); // 1, and the two distinct dim-1 neighbors
    }

    #[test]
    fn neighbor_wraps_both_directions() {
        let t = Torus::new(&[5]);
        assert_eq!(t.neighbor(4, 0, true), 0);
        assert_eq!(t.neighbor(0, 0, false), 4);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn too_many_dims_panics() {
        Torus::new(&[2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn mesh_distance_has_no_wraparound() {
        let m = Torus::new_mesh(&[8]);
        assert_eq!(m.distance(0, 7), 7);
        assert_eq!(m.distance(7, 0), 7);
        assert_eq!(m.diameter(), 7);
        let t = Torus::new(&[8]);
        assert_eq!(t.distance(0, 7), 1);
    }

    #[test]
    fn mesh_boundary_has_no_neighbor() {
        let m = Torus::new_mesh(&[4, 3]);
        // Router (0,0): no -x, no -y neighbor.
        assert_eq!(m.neighbor(0, 0, false), 0);
        assert_eq!(m.neighbor(0, 1, false), 0);
        // Router (3,2): no +x, no +y neighbor.
        let corner = m.router_at(&[3, 2]);
        assert_eq!(m.neighbor(corner, 0, true), corner);
        assert_eq!(m.neighbor(corner, 1, true), corner);
        // Interior neighbors exist in both directions.
        let mid = m.router_at(&[1, 1]);
        assert_eq!(m.neighbors(mid).len(), 4);
        // Corner has exactly 2 neighbors.
        assert_eq!(m.neighbors(0).len(), 2);
    }

    #[test]
    fn mesh_distance_is_still_a_metric() {
        let m = Torus::new_mesh(&[4, 4]);
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(m.distance(a, b), m.distance(b, a));
                for c in 0..16u32 {
                    assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c));
                }
            }
        }
    }
}
