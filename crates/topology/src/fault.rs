//! Failure-masked rebuilds of the distance oracle and route cache.
//!
//! The analytic backends ([`Topology`]) route with closed-form walks
//! that know nothing about link health; once a physical link hard-fails
//! (`factor == 0`), every cached *and* analytic product derived from
//! the static routes is wrong. This module rebuilds the derived state
//! from first principles: a per-source BFS over the **surviving**
//! links yields shortest-path distances and parent-tree routes that
//! avoid the failed links, emitted in the same channel-id space the
//! analytic emitters use (`2·l` for the enumerated `a → b` direction
//! of physical link `l`, `2·l + 1` for `b → a`; the plain `l` when
//! undirected), so congestion accounting and bandwidth lookups keep
//! working unchanged.
//!
//! Masked distances are graph geodesics over the surviving links —
//! under failures there *is* no static minimal route to measure, so
//! the geodesic is the honest replacement; route lengths equal the
//! masked distances by construction (both come from the same BFS
//! tree). Unreachable pairs (a failure cut the network) get the
//! `u16::MAX` hop sentinel and an empty route: traffic between them is
//! not accounted to any link and placement heuristics see an
//! effectively infinite distance.
//!
//! The reverse (`rows_to`) table is built by transposing the forward
//! rows rather than by destination-side BFS: BFS tie-breaking is
//! source-dependent, and the congestion engine's probe/commit split
//! requires `row_to(b).route(a)` to be byte-identical to
//! `row_from(a).route(b)`.

use crate::machine::LinkMode;
use crate::route_cache::RouteRow;
use crate::topology::Topology;

/// Router adjacency over surviving links, annotated with the channel
/// id each traversal direction uses.
pub(crate) struct MaskedAdjacency {
    offsets: Vec<u32>,
    nbr: Vec<u32>,
    chan: Vec<u32>,
}

impl MaskedAdjacency {
    /// Builds the adjacency from the topology's link enumeration,
    /// skipping links whose health `factor` is zero.
    pub(crate) fn build(topo: &Topology, mode: LinkMode, factor: &[f64]) -> Self {
        let n = topo.num_routers();
        let mut deg = vec![0u32; n];
        topo.for_each_link(|l, a, b, _| {
            if factor[l as usize] > 0.0 {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        });
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let total = offsets[n] as usize;
        let mut nbr = vec![0u32; total];
        let mut chan = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        topo.for_each_link(|l, a, b, _| {
            if factor[l as usize] > 0.0 {
                let (ab, ba) = match mode {
                    LinkMode::Undirected => (l, l),
                    LinkMode::Directed => (2 * l, 2 * l + 1),
                };
                let ia = cursor[a as usize] as usize;
                cursor[a as usize] += 1;
                nbr[ia] = b;
                chan[ia] = ab;
                let ib = cursor[b as usize] as usize;
                cursor[b as usize] += 1;
                nbr[ib] = a;
                chan[ib] = ba;
            }
        });
        Self { offsets, nbr, chan }
    }

    #[inline]
    fn edges(&self, r: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[r as usize] as usize;
        let hi = self.offsets[r as usize + 1] as usize;
        self.nbr[lo..hi]
            .iter()
            .copied()
            .zip(self.chan[lo..hi].iter().copied())
    }
}

/// Everything the machine re-derives under a failure mask: the
/// terminal-router hop table plus both route-cache tables.
pub(crate) struct MaskedProducts {
    /// Row-major `n_term × n_term` hop counts (`u16::MAX` = cut off).
    pub(crate) table: Vec<u16>,
    /// Forward routes, one built row per source terminal router.
    pub(crate) rows_from: Vec<RouteRow>,
    /// Reverse routes (transpose of `rows_from`).
    pub(crate) rows_to: Vec<RouteRow>,
}

/// Runs the per-source BFS sweep and assembles the masked products.
pub(crate) fn build_masked(topo: &Topology, mode: LinkMode, factor: &[f64]) -> MaskedProducts {
    let n_all = topo.num_routers();
    let n = topo.num_terminal_routers();
    // tidy-allow: panic-freedom (machine-size precondition at mask build time, before any repair runs; >65534 routers is a build misconfiguration, not a runtime fault)
    assert!(
        n_all < u16::MAX as usize,
        "failure masks need the u16::MAX hop sentinel: {n_all} routers overflow it"
    );
    let adj = MaskedAdjacency::build(topo, mode, factor);
    let mut table = vec![u16::MAX; n * n];
    let mut rows_from = Vec::with_capacity(n);
    let mut dist = vec![u32::MAX; n_all];
    let mut par_chan = vec![u32::MAX; n_all];
    let mut par = vec![u32::MAX; n_all];
    let mut queue = Vec::with_capacity(n_all);
    for s in 0..n as u32 {
        dist.fill(u32::MAX);
        queue.clear();
        dist[s as usize] = 0;
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let dv = dist[v as usize];
            for (w, c) in adj.edges(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    par[w as usize] = v;
                    par_chan[w as usize] = c;
                    queue.push(w);
                }
            }
        }
        let row = &mut table[s as usize * n..(s as usize + 1) * n];
        for (d, slot) in row.iter_mut().enumerate() {
            let h = dist[d];
            *slot = if h == u32::MAX { u16::MAX } else { h as u16 };
        }
        // Extract the tree path to every terminal destination: walk the
        // parent chain (appending channel ids back-to-front), then
        // reverse the just-appended segment in place.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut links = Vec::new();
        offsets.push(0u32);
        for d in 0..n as u32 {
            if d != s && dist[d as usize] != u32::MAX {
                let start = links.len();
                let mut v = d;
                while v != s {
                    links.push(par_chan[v as usize]);
                    v = par[v as usize];
                }
                links[start..].reverse();
            }
            offsets.push(links.len() as u32);
        }
        rows_from.push(RouteRow { offsets, links });
    }
    // Transpose: row_to(b).route(a) must be the identical byte sequence
    // as row_from(a).route(b).
    let mut rows_to = Vec::with_capacity(n);
    for b in 0..n {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut links = Vec::new();
        offsets.push(0u32);
        for row in rows_from.iter().take(n) {
            let lo = row.offsets[b] as usize;
            let hi = row.offsets[b + 1] as usize;
            links.extend_from_slice(&row.links[lo..hi]);
            offsets.push(links.len() as u32);
        }
        rows_to.push(RouteRow { offsets, links });
    }
    MaskedProducts {
        table,
        rows_from,
        rows_to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn healthy_mask_reproduces_geodesics_and_consistent_routes() {
        let m = MachineConfig::small(&[3, 3], 1, 1).build();
        let topo = m.topology();
        let factor = vec![1.0; topo.num_physical_links()];
        let p = build_masked(topo, m.link_mode(), &factor);
        let n = topo.num_terminal_routers();
        for a in 0..n {
            for b in 0..n {
                let h = p.table[a * n + b];
                // Torus BFS geodesics equal dimension-ordered distances.
                assert_eq!(u32::from(h), topo.distance(a as u32, b as u32));
                let lo = p.rows_from[a].offsets[b] as usize;
                let hi = p.rows_from[a].offsets[b + 1] as usize;
                assert_eq!((hi - lo) as u16, h, "route length == masked hops");
                // Transpose consistency.
                let t_lo = p.rows_to[b].offsets[a] as usize;
                let t_hi = p.rows_to[b].offsets[a + 1] as usize;
                assert_eq!(
                    &p.rows_from[a].links[lo..hi],
                    &p.rows_to[b].links[t_lo..t_hi]
                );
            }
        }
    }

    #[test]
    fn failed_link_is_routed_around() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let topo = m.topology();
        let mut factor = vec![1.0; topo.num_physical_links()];
        // Fail the link of router 0's +x hop (0 -> 1).
        let mut route = Vec::new();
        topo.route_links(0, 1, m.link_mode(), &mut route);
        let failed = route[0] / 2;
        factor[failed as usize] = 0.0;
        let p = build_masked(topo, m.link_mode(), &factor);
        let n = topo.num_terminal_routers();
        // Still reachable (torus redundancy) but longer than 1 hop…
        let h = p.table[1];
        assert!(h > 1 && h != u16::MAX);
        // …and the route never crosses the failed physical link.
        let lo = p.rows_from[0].offsets[1] as usize;
        let hi = p.rows_from[0].offsets[2] as usize;
        assert_eq!(hi - lo, h as usize);
        for &c in &p.rows_from[0].links[lo..hi] {
            assert_ne!(c / 2, failed);
        }
        // Unaffected pairs keep geodesic distances.
        assert_eq!(u32::from(p.table[2 * n + 3]), topo.distance(2, 3));
    }
}
