//! Machine/allocation churn events — the fault model of the
//! incremental-remap lifecycle.
//!
//! A long-lived mapping service does not see one healthy machine; it
//! sees a stream of *churn*: nodes die, the scheduler shrinks or grows
//! the allocation, links degrade or fail outright. [`ChurnEvent`] is
//! the closed vocabulary of those perturbations. Events are plain data
//! — generators (`umpa-matgen`) produce them, the remap engine
//! (`umpa-core`) applies them via [`ChurnEvent::apply`] and then
//! repairs the mapping locally instead of re-mapping from scratch.

use crate::alloc::Allocation;
use crate::machine::Machine;

/// One machine/allocation perturbation.
///
/// Node events mutate the [`Allocation`] (mappings store node ids, not
/// slots, so they survive the slot renumbering); link events mutate the
/// [`Machine`]'s failure mask and — when a link hard-fails or comes
/// back — invalidate its lazily-built distance oracle and route cache.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A single compute node died and leaves the allocation.
    NodeFailed {
        /// The failed node id.
        node: u32,
    },
    /// The scheduler reclaimed a batch of nodes (allocation shrink).
    NodesRemoved {
        /// The reclaimed node ids.
        nodes: Vec<u32>,
    },
    /// The scheduler granted additional nodes (allocation growth).
    NodesAdded {
        /// The granted node ids.
        nodes: Vec<u32>,
    },
    /// A physical link's health changed: `factor` scales its bandwidth
    /// (`1.0` = fully restored, `0.0` = hard failure — static routes
    /// are recomputed to avoid the link).
    LinkDegraded {
        /// Physical link id (see [`crate::topology`] for the id space).
        link: u32,
        /// Remaining bandwidth fraction in `0.0..=1.0`.
        factor: f64,
    },
}

impl ChurnEvent {
    /// Applies the event to the machine/allocation pair.
    ///
    /// Idempotent and panic-free on stale events: failing a node that
    /// already left the allocation, or re-adding one that is already
    /// present, is a no-op. Added nodes receive the machine's uniform
    /// per-node processor count. Returns the number of allocation
    /// slots that changed (0 for link events).
    pub fn apply(&self, machine: &mut Machine, alloc: &mut Allocation) -> usize {
        match self {
            ChurnEvent::NodeFailed { node } => usize::from(alloc.remove_node(*node)),
            ChurnEvent::NodesRemoved { nodes } => nodes
                .iter()
                .map(|&n| usize::from(alloc.remove_node(n)))
                .sum(),
            ChurnEvent::NodesAdded { nodes } => {
                let procs = machine.procs_per_node();
                nodes
                    .iter()
                    .map(|&n| usize::from(alloc.add_node(n, procs)))
                    .sum()
            }
            ChurnEvent::LinkDegraded { link, factor } => {
                machine.degrade_link(*link, *factor);
                0
            }
        }
    }

    /// Whether applying this event can displace mapped tasks (node
    /// departures can; link events and growth cannot).
    pub fn displaces_tasks(&self) -> bool {
        matches!(
            self,
            ChurnEvent::NodeFailed { .. } | ChurnEvent::NodesRemoved { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocSpec, Allocation};
    use crate::machine::MachineConfig;

    #[test]
    fn node_events_mutate_the_allocation() {
        let mut m = MachineConfig::small(&[4, 4], 1, 2).build();
        let mut a = Allocation::generate(&m, &AllocSpec::contiguous(4));
        let victim = a.node(1);
        assert_eq!(
            ChurnEvent::NodeFailed { node: victim }.apply(&mut m, &mut a),
            1
        );
        assert!(!a.contains(victim));
        // Stale repeat: no-op.
        assert_eq!(
            ChurnEvent::NodeFailed { node: victim }.apply(&mut m, &mut a),
            0
        );
        assert_eq!(
            ChurnEvent::NodesAdded {
                nodes: vec![victim]
            }
            .apply(&mut m, &mut a),
            1
        );
        assert!(a.contains(victim));
        assert_eq!(a.procs(a.slot_of(victim).unwrap() as usize), 2);
    }

    #[test]
    fn link_events_mutate_the_machine() {
        let mut m = MachineConfig::small(&[4, 4], 1, 2).build();
        let mut a = Allocation::generate(&m, &AllocSpec::contiguous(4));
        let ev = ChurnEvent::LinkDegraded {
            link: 0,
            factor: 0.5,
        };
        assert_eq!(ev.apply(&mut m, &mut a), 0);
        assert!((m.link_factor(0) - 0.5).abs() < 1e-12);
        assert!(!ev.displaces_tasks());
        assert!(ChurnEvent::NodeFailed { node: 0 }.displaces_tasks());
    }
}
