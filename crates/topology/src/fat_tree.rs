//! 3-level k-ary fat-tree (Clos) backend.
//!
//! The classic k-port fat-tree of cloud clusters: `k` pods, each with
//! `k/2` edge and `k/2` aggregation switches, and `(k/2)²` core
//! switches. Compute nodes hang off the edge switches only — the edge
//! switches are the *terminal* routers (ids `0..k²/2`), aggregation and
//! core switches exist purely as transit (ids above the terminal range,
//! hosting no nodes).
//!
//! Routing is deterministic up\*/down\*: a message climbs from its edge
//! switch to the aggregation switch selected by the **destination edge
//! index**, crosses (if needed) the core switch selected by the
//! **source edge index**, and descends. Destination-indexed up-links
//! model ECMP-free static routing; source-indexing the core spreads
//! load deterministically. Routes are pure functions of their
//! endpoints, so the exact-congestion property of Algorithm 3 carries
//! over unchanged.
//!
//! Link ids: edge↔agg links first (`(pod·k/2 + edge)·k/2 + agg`), then
//! agg↔core (`k³/4 + (pod·k/2 + agg)·k/2 + core_index`). Each physical
//! link has one id regardless of traversal direction — canonical by
//! construction. Directed channels are `2·l` (up, toward the core) and
//! `2·l + 1` (down).

use crate::machine::{LinkMode, Machine, MachineParams};
use crate::topology::Topology;

/// Configuration for building a fat-tree [`Machine`].
#[derive(Clone, Debug)]
pub struct FatTreeConfig {
    /// Switch port count; must be even and ≥ 2. Hosts: `k³/4` when
    /// `nodes_per_router = k/2`.
    pub k: u32,
    /// Compute nodes per edge switch.
    pub nodes_per_router: u32,
    /// Processor cores usable per node.
    pub procs_per_node: u32,
    /// Edge↔aggregation link bandwidth, GB/s.
    pub edge_bw: f64,
    /// Aggregation↔core link bandwidth, GB/s.
    pub core_bw: f64,
    /// Congestion accounting mode.
    pub link_mode: LinkMode,
    /// Nearest-neighbor one-way latency, microseconds.
    pub base_latency_us: f64,
    /// Additional latency per hop, microseconds.
    pub hop_latency_us: f64,
    /// Injection (NIC) bandwidth per node, GB/s.
    pub nic_bw: f64,
}

impl FatTreeConfig {
    /// A small unit-bandwidth fat-tree for tests and examples.
    pub fn small(k: u32, nodes_per_router: u32, procs_per_node: u32) -> Self {
        Self {
            k,
            nodes_per_router,
            procs_per_node,
            edge_bw: 1.0,
            core_bw: 1.0,
            link_mode: LinkMode::Directed,
            base_latency_us: 1.0,
            hop_latency_us: 0.1,
            nic_bw: 1.0,
        }
    }

    /// A cloud-style cluster: k = 8 (32 racks), 4 hosts per edge
    /// switch, 100 GbE edge links with a 2:1 oversubscribed core.
    pub fn cluster() -> Self {
        Self {
            k: 8,
            nodes_per_router: 4,
            procs_per_node: 16,
            edge_bw: 12.5,
            core_bw: 6.25,
            link_mode: LinkMode::Directed,
            base_latency_us: 1.5,
            hop_latency_us: 0.3,
            nic_bw: 12.5,
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        assert!(
            self.k >= 2 && self.k.is_multiple_of(2),
            "fat-tree arity k must be even and >= 2"
        );
        let params = MachineParams {
            nodes_per_router: self.nodes_per_router,
            procs_per_node: self.procs_per_node,
            link_mode: self.link_mode,
            base_latency_us: self.base_latency_us,
            hop_latency_us: self.hop_latency_us,
            nic_bw: self.nic_bw,
        };
        let topo = Topology::FatTree(FatTree {
            k: self.k,
            edge_bw: self.edge_bw,
            core_bw: self.core_bw,
        });
        Machine::from_topology(topo, params)
    }
}

/// The fat-tree topology backend. See the module docs for the id
/// layout.
#[derive(Clone, Debug)]
pub struct FatTree {
    k: u32,
    edge_bw: f64,
    core_bw: f64,
}

impl FatTree {
    /// Switch port count.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Half-arity `k/2`: edges per pod, aggs per pod, up-ports each.
    #[inline]
    fn h(&self) -> u32 {
        self.k / 2
    }

    /// Edge switches (= terminal routers).
    #[inline]
    pub fn num_terminal_routers(&self) -> usize {
        (self.k * self.h()) as usize
    }

    /// All switches: edge + aggregation + core.
    #[inline]
    pub fn num_routers(&self) -> usize {
        (2 * self.k * self.h() + self.h() * self.h()) as usize
    }

    /// Router id of aggregation switch `a` of pod `p`.
    #[inline]
    fn agg_id(&self, p: u32, a: u32) -> u32 {
        self.k * self.h() + p * self.h() + a
    }

    /// Router id of core switch `i` of core group `a` (the cores wired
    /// to aggregation index `a` of every pod).
    #[inline]
    fn core_id(&self, a: u32, i: u32) -> u32 {
        2 * self.k * self.h() + a * self.h() + i
    }

    /// Physical id of the edge(p, e) ↔ agg(p, a) link.
    #[inline]
    fn edge_agg_link(&self, p: u32, e: u32, a: u32) -> u32 {
        (p * self.h() + e) * self.h() + a
    }

    /// Physical id of the agg(p, a) ↔ core(a, i) link.
    #[inline]
    fn agg_core_link(&self, p: u32, a: u32, i: u32) -> u32 {
        self.k * self.h() * self.h() + (p * self.h() + a) * self.h() + i
    }

    /// Physical links: `k·(k/2)²` edge↔agg plus the same agg↔core.
    #[inline]
    pub fn num_physical_links(&self) -> usize {
        (2 * self.k * self.h() * self.h()) as usize
    }

    /// Bandwidth of physical link `l`.
    #[inline]
    pub fn physical_link_bw(&self, l: u32) -> f64 {
        if l < self.k * self.h() * self.h() {
            self.edge_bw
        } else {
            self.core_bw
        }
    }

    /// Hop distance between terminal (edge-switch) routers: 0 at the
    /// same switch, 2 within a pod, 4 across pods.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        debug_assert!(
            (a as usize) < self.num_terminal_routers()
                && (b as usize) < self.num_terminal_routers(),
            "fat-tree distance is defined between edge switches"
        );
        if a == b {
            0
        } else if a / self.h() == b / self.h() {
            2
        } else {
            4
        }
    }

    /// Maximum terminal-pair distance (4, or 2 for a single-pod tree —
    /// which cannot occur since pods = k ≥ 2).
    #[inline]
    pub fn diameter(&self) -> u32 {
        if self.k > 1 {
            4
        } else {
            2
        }
    }

    #[inline]
    fn channel(&self, l: u32, up: bool, mode: LinkMode) -> u32 {
        match mode {
            LinkMode::Undirected => l,
            LinkMode::Directed => 2 * l + u32::from(!up),
        }
    }

    /// Emits the up*/down* route as channel ids.
    pub fn route_links(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>) {
        if a == b {
            return;
        }
        let h = self.h();
        let (pa, ea) = (a / h, a % h);
        let (pb, eb) = (b / h, b % h);
        let agg = eb; // up-link selected by destination edge index
        out.push(self.channel(self.edge_agg_link(pa, ea, agg), true, mode));
        if pa != pb {
            let core = ea; // core selected by source edge index
            out.push(self.channel(self.agg_core_link(pa, agg, core), true, mode));
            out.push(self.channel(self.agg_core_link(pb, agg, core), false, mode));
        }
        out.push(self.channel(self.edge_agg_link(pb, eb, agg), false, mode));
    }

    /// Emits the router sequence of the route, endpoints included.
    pub fn route_routers(&self, a: u32, b: u32, out: &mut Vec<u32>) {
        out.push(a);
        if a == b {
            return;
        }
        let h = self.h();
        let (pa, ea) = (a / h, a % h);
        let (pb, eb) = (b / h, b % h);
        let agg = eb;
        out.push(self.agg_id(pa, agg));
        if pa != pb {
            out.push(self.core_id(agg, ea));
            out.push(self.agg_id(pb, agg));
        }
        out.push(pb * h + eb);
    }

    /// Enumerates every physical link in ascending id order.
    pub fn for_each_link(&self, mut f: impl FnMut(u32, u32, u32, f64)) {
        let h = self.h();
        for p in 0..self.k {
            for e in 0..h {
                for a in 0..h {
                    f(
                        self.edge_agg_link(p, e, a),
                        p * h + e,
                        self.agg_id(p, a),
                        self.edge_bw,
                    );
                }
            }
        }
        for p in 0..self.k {
            for a in 0..h {
                for i in 0..h {
                    f(
                        self.agg_core_link(p, a, i),
                        self.agg_id(p, a),
                        self.core_id(a, i),
                        self.core_bw,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(k: u32) -> FatTree {
        FatTree {
            k,
            edge_bw: 1.0,
            core_bw: 1.0,
        }
    }

    #[test]
    fn k4_counts() {
        let f = ft(4);
        assert_eq!(f.num_terminal_routers(), 8);
        assert_eq!(f.num_routers(), 8 + 8 + 4);
        assert_eq!(f.num_physical_links(), 16 + 16);
        assert_eq!(f.diameter(), 4);
    }

    #[test]
    fn route_length_equals_distance_everywhere() {
        let f = ft(4);
        let mut out = Vec::new();
        for a in 0..8u32 {
            for b in 0..8u32 {
                out.clear();
                f.route_links(a, b, LinkMode::Undirected, &mut out);
                assert_eq!(out.len() as u32, f.distance(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn routes_stay_inside_the_id_space() {
        // Up-links are destination-indexed, so a→b and b→a may climb
        // through different aggregation switches (that's real up*/down*
        // routing); what must hold is that every emitted id is a valid
        // physical link and lengths match the symmetric distance.
        let f = ft(8);
        let nl = f.num_physical_links() as u32;
        let mut ab = Vec::new();
        let mut ba = Vec::new();
        for a in 0..f.num_terminal_routers() as u32 {
            for b in 0..f.num_terminal_routers() as u32 {
                ab.clear();
                ba.clear();
                f.route_links(a, b, LinkMode::Undirected, &mut ab);
                f.route_links(b, a, LinkMode::Undirected, &mut ba);
                assert!(ab.iter().all(|&l| l < nl));
                assert_eq!(ab.len(), ba.len(), "{a} <-> {b}");
            }
        }
    }

    #[test]
    fn same_destination_traffic_converges_on_one_down_link() {
        // Destination-indexed up-links: every sender to edge switch b
        // descends through the same agg→edge link (realistic hot-spot
        // behavior for destination-routed networks).
        let f = ft(4);
        let b = 5u32;
        let mut down_links = std::collections::HashSet::new();
        let mut out = Vec::new();
        for a in 0..8u32 {
            if a == b {
                continue;
            }
            out.clear();
            f.route_links(a, b, LinkMode::Undirected, &mut out);
            down_links.insert(*out.last().unwrap());
        }
        assert_eq!(down_links.len(), 1);
    }

    #[test]
    fn directed_channels_distinguish_up_and_down() {
        let f = ft(4);
        let mut out = Vec::new();
        f.route_links(0, 1, LinkMode::Directed, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0] % 2, 0, "first hop goes up");
        assert_eq!(out[1] % 2, 1, "second hop goes down");
    }

    #[test]
    fn routes_are_contiguous_in_the_router_graph() {
        let f = ft(4);
        let mut routers = Vec::new();
        // Collect adjacency from the link enumeration.
        let mut adj = std::collections::HashSet::new();
        f.for_each_link(|_, u, v, _| {
            adj.insert((u, v));
            adj.insert((v, u));
        });
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a == b {
                    continue;
                }
                routers.clear();
                f.route_routers(a, b, &mut routers);
                for w in routers.windows(2) {
                    assert!(adj.contains(&(w[0], w[1])), "{a}->{b}: hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn cluster_preset_builds() {
        let m = FatTreeConfig::cluster().build();
        assert_eq!(m.num_nodes(), 32 * 4);
        assert_eq!(m.diameter(), 4);
    }
}
