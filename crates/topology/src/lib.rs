//! `umpa-topology` — the network topology substrate.
//!
//! The paper targets NERSC's Hopper: a Cray XE6 whose Gemini routers
//! form a 3-D torus with wraparound, two compute nodes per router,
//! static shortest-path (dimension-ordered) routing and per-dimension
//! link bandwidths. This crate models that machine — and k-ary n-D tori
//! in general — from scratch:
//!
//! * [`Torus`] — geometry: router coordinates, O(1) hop distances,
//!   neighbor enumeration (the "hop count between two arbitrary nodes
//!   can be found in O(1)" property Algorithm 1's complexity relies on);
//! * [`routing`] — static dimension-ordered routing producing the exact
//!   per-link routes that the congestion metrics (Eq. 1) accumulate;
//! * [`Machine`] — the full machine: torus + nodes-per-router +
//!   bandwidths + latencies + the router graph in CSR form for BFS;
//! * [`ordering`] — linear node orderings (lexicographic / serpentine
//!   space-filling curve) standing in for Cray's placement curve;
//! * [`alloc`] — a fragmented-allocation generator reproducing the
//!   paper's *sparse* (non-contiguous) node allocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod machine;
pub mod ordering;
pub mod routing;
pub mod torus;

pub use alloc::{AllocSpec, Allocation};
pub use machine::{LinkMode, Machine, MachineConfig};
pub use ordering::NodeOrdering;
pub use torus::Torus;

/// Commonly used items.
pub mod prelude {
    pub use crate::alloc::{AllocSpec, Allocation};
    pub use crate::machine::{LinkMode, Machine, MachineConfig};
    pub use crate::ordering::NodeOrdering;
    pub use crate::torus::Torus;
}
