//! `umpa-topology` — the network topology substrate.
//!
//! The paper targets NERSC's Hopper: a Cray XE6 whose Gemini routers
//! form a 3-D torus with wraparound, two compute nodes per router,
//! static shortest-path (dimension-ordered) routing and per-dimension
//! link bandwidths. This crate models that machine — and interconnect
//! topologies in general — behind a pluggable backend:
//!
//! * [`topology`] — the [`Topology`] backend abstraction: router
//!   counts, distances, static routes emitted as link ids, and the
//!   canonical link-id space each backend owns;
//! * [`Torus`] — torus/mesh geometry: router coordinates, O(1) hop
//!   distances, neighbor enumeration (the "hop count between two
//!   arbitrary nodes can be found in O(1)" property Algorithm 1's
//!   complexity relies on);
//! * [`fat_tree`] — 3-level k-ary fat-tree (Clos) with up*/down*
//!   routing, for cloud-style clusters;
//! * [`dragonfly`] — dragonfly groups with minimal local–global–local
//!   routing, for Aries/Slingshot-style supercomputers;
//! * [`routing`] — torus dimension-ordered routing at hop granularity
//!   (diagnostics; the backends emit link ids directly);
//! * [`oracle`] — the dense terminal-router hop table ([`DistanceOracle`])
//!   behind `Machine::hops`/`Machine::dist_row`: one bounds-checked row
//!   index per distance instead of enum dispatch plus per-dimension
//!   arithmetic, with an analytic fallback above a size threshold;
//! * [`route_cache`] — the oracle's routing sibling ([`RouteCache`])
//!   behind `Machine::route_cache()`: static routes served as cached
//!   link-id slices from lazily-built per-source rows, same
//!   threshold-plus-fallback shape;
//! * [`Machine`] — the full machine: topology + nodes-per-router +
//!   bandwidths + latencies + the router graph in CSR form for BFS;
//! * [`ordering`] — linear node orderings (lexicographic / serpentine
//!   space-filling curve) standing in for Cray's placement curve;
//! * [`alloc`] — a fragmented-allocation generator reproducing the
//!   paper's *sparse* (non-contiguous) node allocations;
//! * [`churn`] — the [`ChurnEvent`] fault model (node failures,
//!   allocation shrink/growth, link degradation) behind the
//!   incremental-remap lifecycle, with failure-masked rebuilds of the
//!   oracle/route-cache products (`Machine::degrade_link`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod churn;
pub mod dragonfly;
pub mod fat_tree;
mod fault;
pub mod machine;
pub mod oracle;
pub mod ordering;
pub mod route_cache;
pub mod routing;
pub mod topology;
pub mod torus;

pub use alloc::{AllocSpec, Allocation};
pub use churn::ChurnEvent;
pub use dragonfly::{Dragonfly, DragonflyConfig};
pub use fat_tree::{FatTree, FatTreeConfig};
pub use machine::{
    FaultSnapshot, LinkMode, Machine, MachineConfig, MachineParams, DEFAULT_ORACLE_MAX_ROUTERS,
    DEFAULT_ROUTE_CACHE_MAX_ROUTERS,
};
pub use oracle::DistanceOracle;
pub use ordering::NodeOrdering;
pub use route_cache::{RouteCache, RouteRowView};
pub use topology::{Topology, TorusNet};
pub use torus::Torus;

/// Commonly used items.
pub mod prelude {
    pub use crate::alloc::{AllocSpec, Allocation};
    pub use crate::churn::ChurnEvent;
    pub use crate::dragonfly::{Dragonfly, DragonflyConfig};
    pub use crate::fat_tree::{FatTree, FatTreeConfig};
    pub use crate::machine::{FaultSnapshot, LinkMode, Machine, MachineConfig, MachineParams};
    pub use crate::oracle::DistanceOracle;
    pub use crate::ordering::NodeOrdering;
    pub use crate::route_cache::RouteCache;
    pub use crate::topology::{Topology, TorusNet};
    pub use crate::torus::Torus;
}
