//! Sparse (non-contiguous) node allocations.
//!
//! On Cray systems "the scheduler allocates a non-contiguous set of
//! nodes for each job … no locality guarantee is provided" (Section
//! II-B). The paper's experiments run on five real Hopper allocations;
//! we reproduce their character with a generator: a background-occupancy
//! model marks blocks of the placement curve as busy (other jobs), and
//! the job then receives the first free nodes in curve order — exactly
//! how a linear-ordering scheduler fragments a machine.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use umpa_ds::FixedBitSet;

use crate::machine::Machine;
use crate::ordering::NodeOrdering;

/// Parameters of an allocation request.
#[derive(Clone, Debug)]
pub struct AllocSpec {
    /// Number of nodes to allocate.
    pub num_nodes: usize,
    /// Fraction of the machine already busy with other jobs, `0.0..1.0`.
    pub background_occupancy: f64,
    /// Mean size (in curve-consecutive nodes) of the busy fragments.
    pub fragment_len: usize,
    /// Placement curve used by the scheduler.
    pub ordering: NodeOrdering,
    /// RNG seed; the paper's "5 different allocations" map to 5 seeds.
    pub seed: u64,
}

impl AllocSpec {
    /// A sparse allocation with the paper-like default fragmentation
    /// (≈30 % of the machine busy in short fragments).
    pub fn sparse(num_nodes: usize, seed: u64) -> Self {
        Self {
            num_nodes,
            background_occupancy: 0.3,
            fragment_len: 4,
            ordering: NodeOrdering::Serpentine,
            seed,
        }
    }

    /// A contiguous allocation (empty machine): the first `num_nodes`
    /// nodes in curve order.
    pub fn contiguous(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            background_occupancy: 0.0,
            fragment_len: 1,
            ordering: NodeOrdering::Serpentine,
            seed: 0,
        }
    }
}

/// A set of nodes reserved for the application (`Va ⊆ Vm`), in the
/// placement-curve order the scheduler would hand out ranks.
#[derive(Clone, Debug)]
pub struct Allocation {
    nodes: Vec<u32>,
    procs: Vec<u32>,
    /// `slot_of[node]` = index into `nodes`, or `u32::MAX` if not allocated.
    slot_of: Vec<u32>,
}

impl Allocation {
    /// Builds from an explicit node list (placement order) and a uniform
    /// processor count per node.
    pub fn from_nodes(machine: &Machine, nodes: Vec<u32>, procs_per_node: u32) -> Self {
        let mut slot_of = vec![u32::MAX; machine.num_nodes()];
        for (i, &n) in nodes.iter().enumerate() {
            assert!(slot_of[n as usize] == u32::MAX, "node {n} allocated twice");
            slot_of[n as usize] = i as u32;
        }
        let procs = vec![procs_per_node; nodes.len()];
        Self {
            nodes,
            procs,
            slot_of,
        }
    }

    /// Generates an allocation per `spec` on `machine`.
    ///
    /// Panics if the machine does not have enough free nodes left after
    /// the background jobs are placed.
    ///
    /// # Examples
    ///
    /// ```
    /// use umpa_topology::{AllocSpec, Allocation, MachineConfig};
    ///
    /// let machine = MachineConfig::small(&[4, 4], 2, 4).build();
    /// let alloc = Allocation::generate(&machine, &AllocSpec::sparse(6, 42));
    /// assert_eq!(alloc.num_nodes(), 6);
    /// assert_eq!(alloc.total_procs(), 24);
    /// assert!(alloc.contains(alloc.node(0)));
    /// ```
    pub fn generate(machine: &Machine, spec: &AllocSpec) -> Self {
        let total = machine.num_nodes();
        assert!(
            spec.num_nodes <= total,
            "requested {} nodes from a {}-node machine",
            spec.num_nodes,
            total
        );
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        // Node placement order: terminal routers in curve order, nodes
        // within a router consecutive (Cray hands out both Gemini nodes
        // together). Non-torus backends use id order, which already
        // keeps pods/groups contiguous.
        let router_order = machine.topology().placement_order(spec.ordering);
        let mut node_order = Vec::with_capacity(total);
        for &r in &router_order {
            node_order.extend(machine.nodes_of_router(r));
        }
        // Mark background-job fragments busy along the curve.
        let mut busy = FixedBitSet::new(total);
        let target_busy =
            ((total as f64 * spec.background_occupancy) as usize).min(total - spec.num_nodes);
        let mut busy_count = 0usize;
        let frag = spec.fragment_len.max(1);
        let mut guard = 0;
        while busy_count < target_busy && guard < 64 * total {
            guard += 1;
            let start = rng.gen_range(0..total);
            let len = 1 + rng.gen_range(0..2 * frag); // mean ≈ frag
            for off in 0..len {
                let pos = (start + off) % total;
                let node = node_order[pos] as usize;
                if !busy.get(node) {
                    busy.set(node);
                    busy_count += 1;
                    if busy_count >= target_busy {
                        break;
                    }
                }
            }
        }
        // First free nodes in curve order get the job.
        let mut nodes = Vec::with_capacity(spec.num_nodes);
        for &n in &node_order {
            if nodes.len() == spec.num_nodes {
                break;
            }
            if !busy.get(n as usize) {
                nodes.push(n);
            }
        }
        assert_eq!(
            nodes.len(),
            spec.num_nodes,
            "machine too occupied to satisfy the allocation"
        );
        Self::from_nodes(machine, nodes, machine.procs_per_node())
    }

    /// Number of allocated nodes `|Va|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Allocated node ids in placement order.
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Node id of allocation slot `i`.
    #[inline]
    pub fn node(&self, slot: usize) -> u32 {
        self.nodes[slot]
    }

    /// Processor count of allocation slot `i`.
    #[inline]
    pub fn procs(&self, slot: usize) -> u32 {
        self.procs[slot]
    }

    /// Per-slot processor counts.
    #[inline]
    pub fn procs_all(&self) -> &[u32] {
        &self.procs
    }

    /// Overrides per-slot processor counts (for heterogeneous tests).
    pub fn set_procs(&mut self, procs: Vec<u32>) {
        assert_eq!(procs.len(), self.nodes.len());
        self.procs = procs;
    }

    /// Total processor count across the allocation.
    pub fn total_procs(&self) -> u32 {
        self.procs.iter().sum()
    }

    /// Whether `node` belongs to the allocation. Out-of-range ids
    /// (including the `u32::MAX` "unmapped" sentinel) are simply not
    /// allocated, so validation paths need no pre-checks.
    #[inline]
    pub fn contains(&self, node: u32) -> bool {
        self.slot_of
            .get(node as usize)
            .is_some_and(|&s| s != u32::MAX)
    }

    /// Allocation slot of `node` (`None` if not allocated or out of
    /// range).
    #[inline]
    pub fn slot_of(&self, node: u32) -> Option<u32> {
        let s = *self.slot_of.get(node as usize)?;
        (s != u32::MAX).then_some(s)
    }

    /// Removes `node` from the allocation — the shrink half of
    /// allocation churn. Later slots renumber down by one (placement
    /// order is preserved); mappings store node ids, not slots, so
    /// they survive the renumbering — only tasks mapped to the removed
    /// node itself are displaced. Returns `false` (and changes
    /// nothing) when the node is not allocated, so failing an already
    /// departed node is a safe no-op. Allocation-free.
    pub fn remove_node(&mut self, node: u32) -> bool {
        let Some(slot) = self.slot_of(node) else {
            return false;
        };
        let s = slot as usize;
        self.nodes.remove(s);
        self.procs.remove(s);
        self.slot_of[node as usize] = u32::MAX;
        for (i, &n) in self.nodes[s..].iter().enumerate() {
            self.slot_of[n as usize] = (s + i) as u32;
        }
        true
    }

    /// Adds `node` with `procs` processor capacity at the end of the
    /// placement order — the growth half of allocation churn. Returns
    /// `false` (and changes nothing) when the node is already
    /// allocated or out of range for the machine this allocation was
    /// built for.
    pub fn add_node(&mut self, node: u32, procs: u32) -> bool {
        if (node as usize) >= self.slot_of.len() || self.slot_of[node as usize] != u32::MAX {
            return false;
        }
        self.slot_of[node as usize] = self.nodes.len() as u32;
        self.nodes.push(node);
        self.procs.push(procs);
        true
    }

    /// Mean pairwise hop distance between allocated nodes — a
    /// fragmentation diagnostic (sparse allocations score higher than
    /// contiguous ones). O(|Va|²); intended for reporting.
    pub fn mean_pairwise_hops(&self, machine: &Machine) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += u64::from(machine.hops(self.nodes[i], self.nodes[j]));
            }
        }
        sum as f64 / (n * (n - 1) / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn machine() -> Machine {
        MachineConfig::small(&[4, 4, 4], 2, 4).build()
    }

    #[test]
    fn contiguous_allocation_takes_curve_prefix() {
        let m = machine();
        let a = Allocation::generate(&m, &AllocSpec::contiguous(10));
        assert_eq!(a.num_nodes(), 10);
        // Prefix of the serpentine curve: consecutive slots are on
        // routers at most 1 hop apart.
        for w in a.nodes().windows(2) {
            assert!(m.hops(w[0], w[1]) <= 1);
        }
    }

    #[test]
    fn sparse_allocation_is_fragmented() {
        let m = machine();
        let cont = Allocation::generate(&m, &AllocSpec::contiguous(32));
        let sparse = Allocation::generate(&m, &AllocSpec::sparse(32, 7));
        assert!(
            sparse.mean_pairwise_hops(&m) > cont.mean_pairwise_hops(&m),
            "sparse allocation should be more spread out"
        );
    }

    #[test]
    fn allocation_has_no_duplicates_and_respects_membership() {
        let m = machine();
        let a = Allocation::generate(&m, &AllocSpec::sparse(20, 3));
        let mut seen = std::collections::HashSet::new();
        for &n in a.nodes() {
            assert!(seen.insert(n));
            assert!(a.contains(n));
        }
        assert_eq!(a.total_procs(), 20 * 4);
        let outside = (0..m.num_nodes() as u32).find(|&n| !a.contains(n)).unwrap();
        assert_eq!(a.slot_of(outside), None);
    }

    #[test]
    fn different_seeds_differ() {
        let m = machine();
        let a = Allocation::generate(&m, &AllocSpec::sparse(24, 1));
        let b = Allocation::generate(&m, &AllocSpec::sparse(24, 2));
        assert_ne!(a.nodes(), b.nodes());
    }

    #[test]
    fn same_seed_reproduces() {
        let m = machine();
        let a = Allocation::generate(&m, &AllocSpec::sparse(24, 5));
        let b = Allocation::generate(&m, &AllocSpec::sparse(24, 5));
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn oversized_request_panics() {
        let m = machine();
        Allocation::generate(&m, &AllocSpec::contiguous(10_000));
    }

    #[test]
    fn slot_lookup_roundtrips() {
        let m = machine();
        let a = Allocation::generate(&m, &AllocSpec::sparse(16, 11));
        for (i, &n) in a.nodes().iter().enumerate() {
            assert_eq!(a.slot_of(n), Some(i as u32));
            assert_eq!(a.node(i), n);
        }
    }
}
