//! Static dimension-ordered shortest-path routing, at hop granularity.
//!
//! Cray Gemini routes packets statically: all hops of dimension 0 first,
//! then dimension 1, etc., always taking the shorter wrap direction
//! (ties resolved toward +1 so routing is deterministic). Because the
//! route of a message is a pure function of its endpoints, the paper's
//! congestion metrics (Eq. 1) can be computed *exactly* — the property
//! Algorithm 3 depends on.
//!
//! This module exposes the torus walk as [`Hop`] structs for
//! diagnostics and tests; the engine's hot paths use the
//! [`Topology`](crate::topology::Topology) backends, which emit
//! canonical link ids directly (same walk, no intermediate hop
//! buffer).

use crate::torus::{Torus, MAX_DIMS};

/// One hop of a route: the router it leaves from, the dimension it
/// travels along and the direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Router the hop departs from.
    pub from: u32,
    /// Dimension index.
    pub dim: u8,
    /// `true` = +1 direction.
    pub positive: bool,
}

/// The dimension-ordered walk from `a` to `b`, delivered as a callback
/// per hop: `f(from, to, dim, positive)`. All hops of dimension 0
/// first, then dimension 1, etc., always the shorter wrap direction
/// with ties toward +1. **The single source of truth for torus
/// routing**: both the [`Hop`]-level [`route`] and the link-id-emitting
/// hot path ([`crate::topology::TorusNet`]) are built on it, so the
/// diagnostics/test route can never desynchronize from the route the
/// congestion metrics accumulate.
#[inline]
pub fn walk(torus: &Torus, a: u32, b: u32, mut f: impl FnMut(u32, u32, usize, bool)) {
    let mut ca = [0u32; MAX_DIMS];
    let mut cb = [0u32; MAX_DIMS];
    torus.coords_into(a, &mut ca);
    torus.coords_into(b, &mut cb);
    let mut cur = a;
    for d in 0..torus.ndims() {
        let k = torus.dims()[d];
        if ca[d] == cb[d] {
            continue;
        }
        let (steps, positive) = if torus.has_wraparound() {
            let fwd = (cb[d] + k - ca[d]) % k;
            let bwd = k - fwd;
            // Shorter wrap direction; tie → positive.
            if fwd <= bwd {
                (fwd, true)
            } else {
                (bwd, false)
            }
        } else {
            // Mesh: only the direct direction exists.
            if cb[d] > ca[d] {
                (cb[d] - ca[d], true)
            } else {
                (ca[d] - cb[d], false)
            }
        };
        for _ in 0..steps {
            let to = torus.neighbor(cur, d, positive);
            f(cur, to, d, positive);
            cur = to;
        }
    }
    debug_assert_eq!(cur, b, "walk did not arrive at destination");
}

/// Appends the dimension-ordered route from router `a` to router `b`
/// onto `out`. The route has exactly `torus.distance(a, b)` hops.
pub fn route(torus: &Torus, a: u32, b: u32, out: &mut Vec<Hop>) {
    walk(torus, a, b, |from, _, d, positive| {
        out.push(Hop {
            from,
            dim: d as u8,
            positive,
        });
    });
}

/// Computes the route eagerly into a fresh vector (test/diagnostic use;
/// hot paths should reuse a buffer through [`route`]).
pub fn route_vec(torus: &Torus, a: u32, b: u32) -> Vec<Hop> {
    let mut v = Vec::with_capacity(torus.distance(a, b) as usize);
    route(torus, a, b, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_equals_distance() {
        let t = Torus::new(&[5, 4, 3]);
        for a in (0..60u32).step_by(7) {
            for b in 0..60u32 {
                assert_eq!(
                    route_vec(&t, a, b).len() as u32,
                    t.distance(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = Torus::new(&[6, 6]);
        let r = route_vec(&t, t.router_at(&[0, 0]), t.router_at(&[2, 3]));
        let dims: Vec<u8> = r.iter().map(|h| h.dim).collect();
        assert_eq!(dims, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn route_takes_shorter_wrap() {
        let t = Torus::new(&[8]);
        // 0 -> 6 : backward (2 hops) beats forward (6 hops).
        let r = route_vec(&t, 0, 6);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|h| !h.positive));
    }

    #[test]
    fn tie_breaks_positive() {
        let t = Torus::new(&[8]);
        // 0 -> 4: both directions are 4 hops; deterministic choice is +.
        let r = route_vec(&t, 0, 4);
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|h| h.positive));
    }

    #[test]
    fn empty_route_for_same_router() {
        let t = Torus::new(&[4, 4]);
        assert!(route_vec(&t, 9, 9).is_empty());
    }

    #[test]
    fn mesh_routes_are_direct() {
        let m = Torus::new_mesh(&[8]);
        // 0 -> 6 on a mesh must take 6 forward hops (no wrap shortcut).
        let r = route_vec(&m, 0, 6);
        assert_eq!(r.len(), 6);
        assert!(r.iter().all(|h| h.positive));
        // And route length always equals mesh distance.
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(route_vec(&m, a, b).len() as u32, m.distance(a, b));
            }
        }
    }

    #[test]
    fn mesh_2d_route_is_dimension_ordered_and_valid() {
        let m = Torus::new_mesh(&[5, 4]);
        let (a, b) = (m.router_at(&[4, 3]), m.router_at(&[0, 0]));
        let r = route_vec(&m, a, b);
        assert_eq!(r.len() as u32, m.distance(a, b));
        let mut cur = a;
        for h in &r {
            assert_eq!(h.from, cur);
            assert!(!h.positive); // heading toward (0,0)
            cur = m.neighbor(cur, h.dim as usize, h.positive);
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn route_hops_are_contiguous() {
        let t = Torus::new(&[7, 5, 3]);
        let (a, b) = (3u32, 97u32);
        let r = route_vec(&t, a, b);
        let mut cur = a;
        for h in &r {
            assert_eq!(h.from, cur);
            cur = t.neighbor(cur, h.dim as usize, h.positive);
        }
        assert_eq!(cur, b);
    }
}
