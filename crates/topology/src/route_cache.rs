//! Memoized static routes (the *route cache*), sibling of the
//! [`DistanceOracle`](crate::oracle::DistanceOracle).
//!
//! Congestion refinement (Algorithm 3) asks for the same static routes
//! over and over: every swap probe re-routes the affected edges under a
//! virtual relocation, and every endpoint of those routes is an
//! *allocated* node — a handful of terminal routers on a large machine.
//! The analytic emitters recompute each route hop by hop (enum dispatch
//! plus per-dimension arithmetic per hop); a [`RouteCache`] instead
//! serves `route_links(a, b)` as a cached link-id **slice**.
//!
//! Layout mirrors the oracle's threshold-plus-fallback shape with one
//! twist: rows are **built lazily, per router** (a `OnceLock` each;
//! routes are directed, so there is a forward routes-`from` table and
//! a reverse routes-`to` table), because a full `n × n` route table
//! would cost `4·Σ distance(a, b)` bytes — ≈ 0.5 GiB on Hopper's
//! 3264-router torus, against ≈ 21 MiB for the `u16` distance table.
//! Demand-driven rows make the footprint proportional to the routers
//! actually routed from/to: a congestion-refinement run touches only
//! the allocated routers' rows (a 16-node sparse Hopper allocation
//! builds ≤ 32 rows — both directions — at ≈ 160 KiB each, ≈ 5 MiB
//! total). Machines above
//! [`DEFAULT_ROUTE_CACHE_MAX_ROUTERS`](crate::machine::DEFAULT_ROUTE_CACHE_MAX_ROUTERS)
//! routers skip the cache entirely and callers fall back to the
//! analytic emitters — `Machine::route_cache()` hides the check.
//!
//! Cached routes are produced by the same [`Topology::route_links`]
//! call the fallback uses, under the machine's [`LinkMode`], so cache
//! and fallback yield **identical link-id sequences** — the
//! bit-identity contract `tests/cong_differential.rs` pins.

use std::sync::OnceLock;

use crate::machine::LinkMode;
use crate::topology::Topology;

/// One router's routes to (or from) every terminal router, in CSR form.
#[derive(Clone, Debug)]
pub(crate) struct RouteRow {
    /// `offsets[x]..offsets[x + 1]` indexes `links` for peer `x`.
    pub(crate) offsets: Vec<u32>,
    /// Concatenated channel ids of all routes of this row.
    pub(crate) links: Vec<u32>,
}

/// A borrowed row of cached routes sharing one endpoint: hot loops
/// hoist the row once (a single `OnceLock` consultation) and then pay
/// two offset loads per route.
#[derive(Clone, Copy, Debug)]
pub struct RouteRowView<'a> {
    offsets: &'a [u32],
    links: &'a [u32],
}

impl<'a> RouteRowView<'a> {
    /// The cached route to/from peer router `x` (empty when `x` is the
    /// row's own router). The slice borrows the cache, not the view.
    #[inline]
    pub fn route(&self, x: u32) -> &'a [u32] {
        &self.links[self.offsets[x as usize] as usize..self.offsets[x as usize + 1] as usize]
    }
}

/// Lazily-filled per-router memo of static routes between terminal
/// routers, serving [`route`](Self::route) as a borrowed slice.
#[derive(Debug)]
pub struct RouteCache {
    /// Number of terminal routers (row length).
    n: usize,
    /// Channel-id space the cached ids live in.
    mode: LinkMode,
    /// One lazily-built row per *source* terminal router.
    rows_from: Vec<OnceLock<RouteRow>>,
    /// One lazily-built row per *destination* terminal router (routes
    /// are directed, so the reverse view is its own table).
    rows_to: Vec<OnceLock<RouteRow>>,
}

impl Clone for RouteCache {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            mode: self.mode,
            rows_from: self.rows_from.clone(),
            rows_to: self.rows_to.clone(),
        }
    }
}

impl RouteCache {
    /// Creates an empty (no rows built) cache for `topo`'s terminal
    /// routers under `mode`, or `None` when the machine exceeds
    /// `max_routers` (callers then use the analytic emitters).
    pub fn build(topo: &Topology, mode: LinkMode, max_routers: usize) -> Option<Self> {
        let n = topo.num_terminal_routers();
        if n == 0 || n > max_routers {
            return None;
        }
        let mut rows_from = Vec::new();
        rows_from.resize_with(n, OnceLock::new);
        let mut rows_to = Vec::new();
        rows_to.resize_with(n, OnceLock::new);
        Some(Self {
            n,
            mode,
            rows_from,
            rows_to,
        })
    }

    /// Wraps fully prebuilt rows (both directions) — the constructor
    /// the failure-masked rebuild uses. Every row slot is initialized,
    /// so the lazy `get_or_init` closures never run and the analytic
    /// emitters are never consulted.
    pub(crate) fn from_prebuilt(
        mode: LinkMode,
        rows_from: Vec<RouteRow>,
        rows_to: Vec<RouteRow>,
    ) -> Self {
        debug_assert_eq!(rows_from.len(), rows_to.len());
        let n = rows_from.len();
        let seal = |rows: Vec<RouteRow>| {
            rows.into_iter()
                .map(|row| {
                    let lock = OnceLock::new();
                    lock.set(row).expect("fresh lock");
                    lock
                })
                .collect()
        };
        Self {
            n,
            mode,
            rows_from: seal(rows_from),
            rows_to: seal(rows_to),
        }
    }

    /// Number of terminal routers covered.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// The channel-id space the cached routes were emitted in.
    #[inline]
    pub fn link_mode(&self) -> LinkMode {
        self.mode
    }

    /// Number of rows built so far, both directions (demand-driven
    /// footprint).
    pub fn built_rows(&self) -> usize {
        self.rows_from
            .iter()
            .chain(self.rows_to.iter())
            .filter(|r| r.get().is_some())
            .count()
    }

    /// Bytes held by the built rows.
    pub fn size_bytes(&self) -> usize {
        self.rows_from
            .iter()
            .chain(self.rows_to.iter())
            .filter_map(|r| r.get())
            .map(|row| {
                std::mem::size_of_val(&row.offsets[..]) + std::mem::size_of_val(&row.links[..])
            })
            .sum()
    }

    /// The routes *out of* terminal router `a` as a row view
    /// (`view.route(b)` = the `a → b` channel ids), building the row on
    /// first use. `topo` must be the topology the cache was built for.
    ///
    /// The row build is the one allocating step; every later query on
    /// the row is two bounds-checked indexes and a slice borrow, so a
    /// warm cache serves the congestion engine allocation-free.
    #[inline]
    pub fn row_from(&self, topo: &Topology, a: u32) -> RouteRowView<'_> {
        let row = self.rows_from[a as usize].get_or_init(|| {
            let mut offsets = Vec::with_capacity(self.n + 1);
            let mut links = Vec::new();
            offsets.push(0);
            for d in 0..self.n as u32 {
                if d != a {
                    topo.route_links(a, d, self.mode, &mut links);
                }
                offsets.push(links.len() as u32);
            }
            RouteRow { offsets, links }
        });
        RouteRowView {
            offsets: &row.offsets,
            links: &row.links,
        }
    }

    /// The routes *into* terminal router `b` as a row view
    /// (`view.route(a)` = the `a → b` channel ids). Routes are
    /// directed, so this is its own lazily-built table, letting
    /// fixed-destination loops hoist one row instead of touching a
    /// `rows_from` row per source.
    #[inline]
    pub fn row_to(&self, topo: &Topology, b: u32) -> RouteRowView<'_> {
        let row = self.rows_to[b as usize].get_or_init(|| {
            let mut offsets = Vec::with_capacity(self.n + 1);
            let mut links = Vec::new();
            offsets.push(0);
            for s in 0..self.n as u32 {
                if s != b {
                    topo.route_links(s, b, self.mode, &mut links);
                }
                offsets.push(links.len() as u32);
            }
            RouteRow { offsets, links }
        });
        RouteRowView {
            offsets: &row.offsets,
            links: &row.links,
        }
    }

    /// The channel ids of the static route between terminal routers
    /// `a` and `b` (empty when `a == b`), through `a`'s
    /// [`row_from`](Self::row_from).
    #[inline]
    pub fn route(&self, topo: &Topology, a: u32, b: u32) -> &[u32] {
        self.row_from(topo, a).route(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::DragonflyConfig;
    use crate::fat_tree::FatTreeConfig;
    use crate::machine::MachineConfig;

    #[test]
    fn cached_routes_match_the_analytic_emitters() {
        let machines = [
            MachineConfig::small(&[4, 3, 2], 1, 1).build(),
            MachineConfig::small(&[2, 4], 1, 1).build(), // extent-2 wraparound
            MachineConfig::small_mesh(&[4, 3], 1, 1).build(),
            FatTreeConfig::small(4, 2, 1).build(),
            DragonflyConfig::small(4, 3, 2).build(),
        ];
        for m in &machines {
            let topo = m.topology();
            let cache = RouteCache::build(topo, m.link_mode(), 4096).unwrap();
            let n = topo.num_terminal_routers() as u32;
            let mut fresh = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    fresh.clear();
                    topo.route_links(a, b, m.link_mode(), &mut fresh);
                    assert_eq!(
                        cache.route(topo, a, b),
                        &fresh[..],
                        "{}: {a}->{b}",
                        topo.summary()
                    );
                }
            }
        }
    }

    #[test]
    fn rows_build_on_demand_only() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let topo = m.topology();
        let cache = RouteCache::build(topo, m.link_mode(), 4096).unwrap();
        assert_eq!(cache.built_rows(), 0);
        assert_eq!(cache.size_bytes(), 0);
        cache.route(topo, 3, 9);
        assert_eq!(cache.built_rows(), 1);
        cache.route(topo, 3, 0); // same row
        assert_eq!(cache.built_rows(), 1);
        assert!(cache.size_bytes() > 0);
        cache.route(topo, 7, 3);
        assert_eq!(cache.built_rows(), 2);
    }

    #[test]
    fn reverse_rows_match_forward_routes() {
        let m = MachineConfig::small(&[3, 3], 1, 1).build();
        let topo = m.topology();
        let cache = RouteCache::build(topo, m.link_mode(), 4096).unwrap();
        for b in 0..9u32 {
            let to = cache.row_to(topo, b);
            for a in 0..9u32 {
                assert_eq!(to.route(a), cache.route(topo, a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn threshold_disables_the_cache() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        assert!(RouteCache::build(m.topology(), m.link_mode(), 15).is_none());
        assert!(RouteCache::build(m.topology(), m.link_mode(), 16).is_some());
        assert!(RouteCache::build(m.topology(), m.link_mode(), 0).is_none());
    }

    #[test]
    fn same_router_route_is_empty() {
        let m = MachineConfig::small(&[3, 3], 1, 1).build();
        let topo = m.topology();
        let cache = RouteCache::build(topo, m.link_mode(), 4096).unwrap();
        for r in 0..9u32 {
            assert!(cache.route(topo, r, r).is_empty());
        }
    }
}
