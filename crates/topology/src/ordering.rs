//! Linear orderings of torus routers.
//!
//! Cray's scheduler places consecutive MPI ranks along a locality-
//! preserving linear ordering of the machine ("space filling curves",
//! Section IV-B; Albing et al. [25]). The DEF baseline and the
//! allocation generator both consume such an ordering. Two are
//! provided:
//!
//! * [`NodeOrdering::Lexicographic`] — plain row-major id order; poor
//!   locality at dimension boundaries (a worst-ish case);
//! * [`NodeOrdering::Serpentine`] — boustrophedon order that reverses
//!   direction each time an outer coordinate advances, so successive
//!   routers are always one hop apart — a faithful stand-in for the
//!   locality-preserving curve Hopper uses.

use crate::torus::{Torus, MAX_DIMS};

/// Which linear ordering of routers to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeOrdering {
    /// Row-major by router id.
    Lexicographic,
    /// Boustrophedon (serpentine) curve: adjacent entries are adjacent
    /// routers.
    #[default]
    Serpentine,
}

impl NodeOrdering {
    /// Produces the ordered list of router ids.
    pub fn router_order(self, torus: &Torus) -> Vec<u32> {
        match self {
            NodeOrdering::Lexicographic => (0..torus.num_routers() as u32).collect(),
            NodeOrdering::Serpentine => serpentine(torus),
        }
    }
}

/// Serpentine order: mixed-radix counter over dims `ndims-1 .. 0` where
/// dimension `d` sweeps forward or backward depending on the parity of
/// the number of completed sweeps — i.e. the integer value of the outer
/// odometer (counters of dims `> d`), not its digit sum.
fn serpentine(torus: &Torus) -> Vec<u32> {
    let nd = torus.ndims();
    let dims = torus.dims();
    let n = torus.num_routers();
    let mut order = Vec::with_capacity(n);
    let mut counter = [0u32; MAX_DIMS];
    for _ in 0..n {
        let mut coords = [0u32; MAX_DIMS];
        // `outer` = integer value of counters of dims > d, accumulated
        // from the outermost dimension inward.
        let mut outer = 0u64;
        for d in (0..nd).rev() {
            let c = counter[d];
            coords[d] = if outer.is_multiple_of(2) {
                c
            } else {
                dims[d] - 1 - c
            };
            outer = outer * u64::from(dims[d]) + u64::from(c);
        }
        order.push(torus.router_at(&coords[..nd]));
        // Increment mixed-radix counter, dim 0 fastest.
        for d in 0..nd {
            counter[d] += 1;
            if counter[d] < dims[d] {
                break;
            }
            counter[d] = 0;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_is_identity() {
        let t = Torus::new(&[3, 2]);
        assert_eq!(
            NodeOrdering::Lexicographic.router_order(&t),
            (0..6u32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn serpentine_is_a_permutation() {
        let t = Torus::new(&[4, 3, 2]);
        let mut o = NodeOrdering::Serpentine.router_order(&t);
        o.sort_unstable();
        assert_eq!(o, (0..24u32).collect::<Vec<_>>());
    }

    #[test]
    fn serpentine_neighbors_are_one_hop_apart() {
        for dims in [&[5, 4, 3][..], &[2, 2, 2, 2][..], &[7][..], &[6, 5][..]] {
            let t = Torus::new(dims);
            let o = NodeOrdering::Serpentine.router_order(&t);
            for w in o.windows(2) {
                assert_eq!(
                    t.distance(w[0], w[1]),
                    1,
                    "dims={dims:?} pair=({},{})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn serpentine_2d_matches_hand_computed() {
        let t = Torus::new(&[3, 2]);
        // Row y=0 forward (x = 0,1,2) then row y=1 backward (x = 2,1,0).
        let o = NodeOrdering::Serpentine.router_order(&t);
        let coords: Vec<(u32, u32)> = o.iter().map(|&r| (t.coord(r, 0), t.coord(r, 1))).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (2, 1), (1, 1), (0, 1)]);
    }

    #[test]
    fn lexicographic_breaks_locality_serpentine_keeps_it() {
        let t = Torus::new(&[8, 8]);
        let lex = NodeOrdering::Lexicographic.router_order(&t);
        // Row boundary in lexicographic order: ids 7 -> 8 are distance 2
        // apart (wrap in x plus one step in y)... distance((7,0),(0,1)).
        let d = t.distance(lex[7], lex[8]);
        assert!(d >= 2);
    }
}
