//! The machine model: torus + compute nodes + link bandwidths.
//!
//! A [`Machine`] is the paper's topology graph `Gm` plus everything the
//! algorithms and the network simulator need: Gemini-style multi-node
//! routers, per-dimension link bandwidths, hop latencies and a CSR
//! router graph for BFS traversals.

use umpa_graph::{Graph, GraphBuilder};

use crate::routing::{self, Hop};
use crate::torus::Torus;

/// Whether congestion is accumulated per directed channel or per
/// physical (undirected) link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkMode {
    /// Each direction of a physical link is a separate channel — the
    /// default; Gemini links carry independent traffic per direction.
    #[default]
    Directed,
    /// Both directions share one congestion counter.
    Undirected,
}

/// Configuration for building a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Torus extents per dimension.
    pub dims: Vec<u32>,
    /// Wraparound links (torus) or not (mesh).
    pub wraparound: bool,
    /// Compute nodes attached to each router (Gemini: 2).
    pub nodes_per_router: u32,
    /// Processor cores usable per node (the paper uses 16 of Hopper's 24).
    pub procs_per_node: u32,
    /// Link bandwidth per dimension, GB/s.
    pub bw_per_dim: Vec<f64>,
    /// Congestion accounting mode.
    pub link_mode: LinkMode,
    /// Nearest-neighbor one-way latency, microseconds.
    pub base_latency_us: f64,
    /// Additional latency per hop, microseconds.
    pub hop_latency_us: f64,
    /// Injection (NIC) bandwidth per node, GB/s.
    pub nic_bw: f64,
}

impl MachineConfig {
    /// NERSC Hopper: Cray XE6, 17×8×24 Gemini 3-D torus, 2 nodes per
    /// Gemini, X/Z links ≈ 9.375 GB/s, Y links ≈ 4.68 GB/s; nearest and
    /// farthest latencies 1.27 µs and 3.88 µs (Section II-B), which over
    /// the 24-hop diameter gives ≈ 0.109 µs per hop.
    pub fn hopper() -> Self {
        Self {
            dims: vec![17, 8, 24],
            wraparound: true,
            nodes_per_router: 2,
            procs_per_node: 16,
            bw_per_dim: vec![9.375, 4.68, 9.375],
            link_mode: LinkMode::Directed,
            base_latency_us: 1.27,
            hop_latency_us: (3.88 - 1.27) / 24.0,
            nic_bw: 6.0,
        }
    }

    /// A small torus for tests and examples, unit bandwidths.
    pub fn small(dims: &[u32], nodes_per_router: u32, procs_per_node: u32) -> Self {
        Self {
            dims: dims.to_vec(),
            wraparound: true,
            nodes_per_router,
            procs_per_node,
            bw_per_dim: vec![1.0; dims.len()],
            link_mode: LinkMode::Directed,
            base_latency_us: 1.0,
            hop_latency_us: 0.1,
            nic_bw: 1.0,
        }
    }

    /// A small mesh (no wraparound) for tests and generality checks.
    pub fn small_mesh(dims: &[u32], nodes_per_router: u32, procs_per_node: u32) -> Self {
        Self {
            wraparound: false,
            ..Self::small(dims, nodes_per_router, procs_per_node)
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        Machine::new(self)
    }
}

/// The machine: topology graph `Gm`, node/processor layout, link ids and
/// bandwidths, and O(1) hop distances.
#[derive(Clone, Debug)]
pub struct Machine {
    torus: Torus,
    cfg: MachineConfig,
    router_graph: Graph,
    /// Bandwidth per link id (respecting `link_mode` id space).
    link_bw: Vec<f64>,
}

impl Machine {
    /// Builds a machine from a config.
    pub fn new(cfg: MachineConfig) -> Self {
        assert_eq!(
            cfg.dims.len(),
            cfg.bw_per_dim.len(),
            "bw_per_dim must have one entry per torus dimension"
        );
        assert!(cfg.nodes_per_router >= 1);
        assert!(cfg.procs_per_node >= 1);
        let torus = if cfg.wraparound {
            Torus::new(&cfg.dims)
        } else {
            Torus::new_mesh(&cfg.dims)
        };
        let nr = torus.num_routers();
        let nd = torus.ndims();
        let mut b = GraphBuilder::new(nr);
        for r in 0..nr as u32 {
            for d in 0..nd {
                let p = torus.neighbor(r, d, true);
                if p != r {
                    // Undirected builder edge; weight = dim bandwidth.
                    b.add_edge(r, p, cfg.bw_per_dim[d]);
                }
            }
        }
        let router_graph = b.build_symmetric();
        let per_router = match cfg.link_mode {
            LinkMode::Directed => 2 * nd,
            LinkMode::Undirected => nd,
        };
        let mut link_bw = vec![0.0; nr * per_router];
        for r in 0..nr {
            for d in 0..nd {
                match cfg.link_mode {
                    LinkMode::Directed => {
                        link_bw[(r * nd + d) * 2] = cfg.bw_per_dim[d];
                        link_bw[(r * nd + d) * 2 + 1] = cfg.bw_per_dim[d];
                    }
                    LinkMode::Undirected => {
                        link_bw[r * nd + d] = cfg.bw_per_dim[d];
                    }
                }
            }
        }
        Self {
            torus,
            cfg,
            router_graph,
            link_bw,
        }
    }

    /// The underlying torus geometry.
    #[inline]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The build configuration.
    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of routers `|Vm|` (vertices of the topology graph).
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.torus.num_routers()
    }

    /// Total number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_routers() * self.cfg.nodes_per_router as usize
    }

    /// Processor cores usable per node.
    #[inline]
    pub fn procs_per_node(&self) -> u32 {
        self.cfg.procs_per_node
    }

    /// Router a node hangs off.
    #[inline]
    pub fn router_of(&self, node: u32) -> u32 {
        node / self.cfg.nodes_per_router
    }

    /// Node ids attached to router `r`.
    #[inline]
    pub fn nodes_of_router(&self, r: u32) -> std::ops::Range<u32> {
        let npr = self.cfg.nodes_per_router;
        r * npr..(r + 1) * npr
    }

    /// Hop distance between two *nodes* (0 when they share a router).
    #[inline]
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        self.torus.distance(self.router_of(a), self.router_of(b))
    }

    /// Network diameter in hops.
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.torus.diameter()
    }

    /// The router adjacency graph in CSR form (symmetric; edge weights =
    /// link bandwidths), for BFS traversals.
    #[inline]
    pub fn router_graph(&self) -> &Graph {
        &self.router_graph
    }

    /// Number of link ids in the active [`LinkMode`] id space.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.link_bw.len()
    }

    /// Bandwidth of link `id` in GB/s.
    #[inline]
    pub fn link_bandwidth(&self, id: u32) -> f64 {
        self.link_bw[id as usize]
    }

    /// Latency of a `hops`-hop message path in microseconds.
    #[inline]
    pub fn path_latency_us(&self, hops: u32) -> f64 {
        self.cfg.base_latency_us + self.cfg.hop_latency_us * f64::from(hops)
    }

    /// Link id of a routing hop in the active id space.
    #[inline]
    pub fn link_id(&self, hop: Hop) -> u32 {
        let nd = self.torus.ndims();
        match self.cfg.link_mode {
            LinkMode::Directed => {
                let dir = u32::from(!hop.positive);
                ((hop.from as usize * nd + hop.dim as usize) * 2) as u32 + dir
            }
            LinkMode::Undirected => {
                // Canonical owner of an undirected link is the endpoint
                // the +1 direction departs from.
                let owner = if hop.positive {
                    hop.from
                } else {
                    self.torus.neighbor(hop.from, hop.dim as usize, false)
                };
                (owner as usize * nd + hop.dim as usize) as u32
            }
        }
    }

    /// Appends the link ids of the static route between *nodes* `a` and
    /// `b` onto `out` (empty when they share a router). Reuses `scratch`
    /// for the hop expansion to avoid allocation in hot loops.
    pub fn route_links(&self, a: u32, b: u32, scratch: &mut Vec<Hop>, out: &mut Vec<u32>) {
        let (ra, rb) = (self.router_of(a), self.router_of(b));
        if ra == rb {
            return;
        }
        scratch.clear();
        routing::route(&self.torus, ra, rb, scratch);
        out.extend(scratch.iter().map(|&h| self.link_id(h)));
    }

    /// Route link ids as a fresh vector (diagnostics/tests).
    pub fn route_links_vec(&self, a: u32, b: u32) -> Vec<u32> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.route_links(a, b, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m222() -> Machine {
        MachineConfig::small(&[4, 4, 4], 2, 4).build()
    }

    #[test]
    fn node_router_layout() {
        let m = m222();
        assert_eq!(m.num_routers(), 64);
        assert_eq!(m.num_nodes(), 128);
        assert_eq!(m.router_of(0), 0);
        assert_eq!(m.router_of(1), 0);
        assert_eq!(m.router_of(2), 1);
        assert_eq!(m.nodes_of_router(3), 6..8);
    }

    #[test]
    fn same_router_nodes_have_zero_hops_and_empty_route() {
        let m = m222();
        assert_eq!(m.hops(0, 1), 0);
        assert!(m.route_links_vec(0, 1).is_empty());
    }

    #[test]
    fn route_link_count_matches_hops() {
        let m = m222();
        for a in (0..128u32).step_by(11) {
            for b in (0..128u32).step_by(7) {
                assert_eq!(m.route_links_vec(a, b).len() as u32, m.hops(a, b));
            }
        }
    }

    #[test]
    fn directed_links_distinguish_directions() {
        let m = m222();
        // Pick two nodes on adjacent routers; routes a->b and b->a use
        // different directed channel ids.
        let (a, b) = (0u32, 2u32);
        let ab = m.route_links_vec(a, b);
        let ba = m.route_links_vec(b, a);
        assert_eq!(ab.len(), 1);
        assert_eq!(ba.len(), 1);
        assert_ne!(ab[0], ba[0]);
    }

    #[test]
    fn undirected_links_share_ids() {
        let mut cfg = MachineConfig::small(&[4, 4], 1, 1);
        cfg.link_mode = LinkMode::Undirected;
        let m = cfg.build();
        let ab = m.route_links_vec(0, 1);
        let ba = m.route_links_vec(1, 0);
        assert_eq!(ab, ba);
        assert_eq!(m.num_links(), 16 * 2);
    }

    #[test]
    fn hopper_preset_shape() {
        let m = MachineConfig::hopper().build();
        assert_eq!(m.num_routers(), 17 * 8 * 24);
        assert_eq!(m.num_nodes(), 2 * 17 * 8 * 24);
        assert_eq!(m.diameter(), 24);
        assert_eq!(m.procs_per_node(), 16);
        // Y-dimension links are the slow ones.
        let r0 = 0u32;
        let y_neighbor = m.torus().neighbor(r0, 1, true);
        let hop = Hop {
            from: r0,
            dim: 1,
            positive: true,
        };
        let _ = y_neighbor;
        assert!((m.link_bandwidth(m.link_id(hop)) - 4.68).abs() < 1e-12);
        let hop_x = Hop {
            from: r0,
            dim: 0,
            positive: true,
        };
        assert!((m.link_bandwidth(m.link_id(hop_x)) - 9.375).abs() < 1e-12);
    }

    #[test]
    fn latency_model_matches_paper_endpoints() {
        let m = MachineConfig::hopper().build();
        assert!((m.path_latency_us(0) - 1.27).abs() < 1e-9);
        assert!((m.path_latency_us(24) - 3.88).abs() < 1e-9);
    }

    #[test]
    fn router_graph_is_six_regular_for_3d() {
        let m = m222();
        let g = m.router_graph();
        for r in 0..g.num_vertices() as u32 {
            assert_eq!(g.degree(r), 6);
        }
    }
}
