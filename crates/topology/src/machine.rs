//! The machine model: a pluggable topology + compute nodes + links.
//!
//! A [`Machine`] is the paper's topology graph `Gm` plus everything the
//! algorithms and the network simulator need: a [`Topology`] backend
//! (torus/mesh, fat-tree, or dragonfly), multi-node routers,
//! per-link bandwidths, hop latencies and a CSR router graph for BFS
//! traversals. The *topology* owns the link-id space (see
//! [`crate::topology`] for the canonical-id scheme); the machine maps
//! it into the active [`LinkMode`]'s channel space.

use std::sync::OnceLock;

use umpa_graph::{Graph, GraphBuilder};

use crate::fault;
use crate::oracle::DistanceOracle;
use crate::route_cache::RouteCache;
use crate::topology::{Topology, TorusNet};
use crate::torus::Torus;

/// Default router-count ceiling for the [`DistanceOracle`] table. At
/// `2·n²` bytes the table tops out at 32 MiB here; larger machines fall
/// back to the analytic [`Topology::distance`] path transparently.
pub const DEFAULT_ORACLE_MAX_ROUTERS: usize = 4096;

/// Default router-count ceiling for the [`RouteCache`]. Rows are built
/// lazily per source router, so memory is proportional to the routers
/// actually routed *from* (one row ≈ `4·(n + Σ_b distance(a, b))`
/// bytes), not to `n²`; the ceiling only bounds the degenerate
/// everything-routes-from-everywhere case. Larger machines fall back to
/// the analytic route emitters transparently.
pub const DEFAULT_ROUTE_CACHE_MAX_ROUTERS: usize = 4096;

/// Whether congestion is accumulated per directed channel or per
/// physical (undirected) link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkMode {
    /// Each direction of a physical link is a separate channel — the
    /// default; Gemini links carry independent traffic per direction.
    #[default]
    Directed,
    /// Both directions share one congestion counter.
    Undirected,
}

/// Topology-independent machine parameters: node attachment, capacity
/// and the latency/injection model shared by every backend.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Compute nodes attached to each terminal router (Gemini: 2).
    pub nodes_per_router: u32,
    /// Processor cores usable per node (the paper uses 16 of Hopper's 24).
    pub procs_per_node: u32,
    /// Congestion accounting mode.
    pub link_mode: LinkMode,
    /// Nearest-neighbor one-way latency, microseconds.
    pub base_latency_us: f64,
    /// Additional latency per hop, microseconds.
    pub hop_latency_us: f64,
    /// Injection (NIC) bandwidth per node, GB/s.
    pub nic_bw: f64,
}

/// Configuration for building a torus/mesh [`Machine`] (the paper's
/// machine model; fat-tree and dragonfly machines are built through
/// [`crate::fat_tree::FatTreeConfig`] and
/// [`crate::dragonfly::DragonflyConfig`]).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Torus extents per dimension.
    pub dims: Vec<u32>,
    /// Wraparound links (torus) or not (mesh).
    pub wraparound: bool,
    /// Compute nodes attached to each router (Gemini: 2).
    pub nodes_per_router: u32,
    /// Processor cores usable per node (the paper uses 16 of Hopper's 24).
    pub procs_per_node: u32,
    /// Link bandwidth per dimension, GB/s.
    pub bw_per_dim: Vec<f64>,
    /// Congestion accounting mode.
    pub link_mode: LinkMode,
    /// Nearest-neighbor one-way latency, microseconds.
    pub base_latency_us: f64,
    /// Additional latency per hop, microseconds.
    pub hop_latency_us: f64,
    /// Injection (NIC) bandwidth per node, GB/s.
    pub nic_bw: f64,
}

impl MachineConfig {
    /// NERSC Hopper: Cray XE6, 17×8×24 Gemini 3-D torus, 2 nodes per
    /// Gemini, X/Z links ≈ 9.375 GB/s, Y links ≈ 4.68 GB/s; nearest and
    /// farthest latencies 1.27 µs and 3.88 µs (Section II-B), which over
    /// the 24-hop diameter gives ≈ 0.109 µs per hop.
    pub fn hopper() -> Self {
        Self {
            dims: vec![17, 8, 24],
            wraparound: true,
            nodes_per_router: 2,
            procs_per_node: 16,
            bw_per_dim: vec![9.375, 4.68, 9.375],
            link_mode: LinkMode::Directed,
            base_latency_us: 1.27,
            hop_latency_us: (3.88 - 1.27) / 24.0,
            nic_bw: 6.0,
        }
    }

    /// A small torus for tests and examples, unit bandwidths.
    pub fn small(dims: &[u32], nodes_per_router: u32, procs_per_node: u32) -> Self {
        Self {
            dims: dims.to_vec(),
            wraparound: true,
            nodes_per_router,
            procs_per_node,
            bw_per_dim: vec![1.0; dims.len()],
            link_mode: LinkMode::Directed,
            base_latency_us: 1.0,
            hop_latency_us: 0.1,
            nic_bw: 1.0,
        }
    }

    /// A small mesh (no wraparound) for tests and generality checks.
    pub fn small_mesh(dims: &[u32], nodes_per_router: u32, procs_per_node: u32) -> Self {
        Self {
            wraparound: false,
            ..Self::small(dims, nodes_per_router, procs_per_node)
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        Machine::new(self)
    }
}

/// A point-in-time summary of the machine's failure mask, cheap to
/// compare and to hold across lock boundaries. A long-running
/// supervisor (e.g. `umpa-service`'s churn-drift supervisor) snapshots
/// this to detect fault-state transitions between inspections —
/// distances and routes change whenever `hard_failed` does, so a
/// quality baseline computed under a different snapshot is stale.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSnapshot {
    /// Every link currently below nominal bandwidth, as
    /// `(physical link id, remaining bandwidth fraction)`, ascending by
    /// link id. Hard failures appear with factor `0.0`.
    pub degraded: Vec<(u32, f64)>,
    /// Number of hard-failed links (`factor == 0.0`): when nonzero the
    /// machine routes over the failure-masked BFS products.
    pub hard_failed: usize,
}

impl FaultSnapshot {
    /// Whether every link is at nominal bandwidth.
    pub fn is_healthy(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Appends a canonical little-endian binary encoding of the
    /// snapshot to `out`: `[count: u32][(link: u32, factor bits: u64)…]`.
    /// `hard_failed` is not stored — it is derivable (factor == 0.0)
    /// and recomputed on decode, so the two can never disagree.
    /// Factors round-trip via [`f64::to_bits`] so a decode is
    /// bit-identical to the encoded state (the crash-recovery
    /// differential contract in `umpa-service`).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.degraded.len() as u32).to_le_bytes());
        for &(link, factor) in &self.degraded {
            out.extend_from_slice(&link.to_le_bytes());
            out.extend_from_slice(&factor.to_bits().to_le_bytes());
        }
    }

    /// Decodes a snapshot previously written by
    /// [`FaultSnapshot::encode_into`] from the front of `bytes`.
    /// Returns the snapshot and the number of bytes consumed, or `None`
    /// if `bytes` is truncated or structurally invalid (factor not
    /// finite / outside `[0, 1]`, link ids not strictly ascending).
    /// Never panics: corrupt input is a decode failure, not a crash.
    pub fn decode(bytes: &[u8]) -> Option<(Self, usize)> {
        let head = bytes.get(..4)?;
        let count = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        let mut off = 4usize;
        let mut degraded = Vec::with_capacity(count.min(bytes.len() / 12));
        let mut hard_failed = 0usize;
        let mut prev_link: Option<u32> = None;
        for _ in 0..count {
            let rec = bytes.get(off..off + 12)?;
            let link = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            let factor = f64::from_bits(u64::from_le_bytes([
                rec[4], rec[5], rec[6], rec[7], rec[8], rec[9], rec[10], rec[11],
            ]));
            if !factor.is_finite() || !(0.0..=1.0).contains(&factor) || factor == 1.0 {
                return None;
            }
            if prev_link.is_some_and(|p| p >= link) {
                return None;
            }
            prev_link = Some(link);
            if factor == 0.0 {
                hard_failed += 1;
            }
            degraded.push((link, factor));
            off += 12;
        }
        Some((
            FaultSnapshot {
                degraded,
                hard_failed,
            },
            off,
        ))
    }

    /// Whether every degraded link id is a valid physical link of
    /// `machine`. Decoded snapshots must pass this before
    /// [`Machine::apply_fault_snapshot`] — a snapshot taken on a
    /// different topology (or corrupted in storage) fails here instead
    /// of panicking inside `degrade_link`.
    pub fn is_valid_for(&self, machine: &Machine) -> bool {
        let num_phys = machine.topology().num_physical_links() as u32;
        self.degraded.iter().all(|&(link, factor)| {
            link < num_phys && factor.is_finite() && (0.0..=1.0).contains(&factor)
        })
    }
}

/// Per-physical-link health (the failure mask). Absent on a healthy
/// machine so the fault-free fast paths stay branch-cheap.
#[derive(Clone, Debug)]
struct FaultState {
    /// Bandwidth factor per physical link (`1.0` healthy, `0.0` failed).
    factor: Vec<f64>,
    /// Links with `factor == 0.0` (hard failures).
    failed: usize,
    /// Links with `factor != 1.0` (any degradation, incl. failures).
    imperfect: usize,
}

/// The machine: topology graph `Gm`, node/processor layout, link ids and
/// bandwidths, and O(1) hop distances.
#[derive(Clone, Debug)]
pub struct Machine {
    topo: Topology,
    params: MachineParams,
    router_graph: Graph,
    /// Failure mask; `None` = every link healthy (the common case).
    faults: Option<FaultState>,
    /// Lazily built terminal-router hop table; `None` inside means the
    /// machine exceeds `oracle_max_routers` and hot paths use the
    /// analytic distance.
    oracle: OnceLock<Option<DistanceOracle>>,
    oracle_max_routers: usize,
    /// Lazily built per-source route memo; `None` inside means the
    /// machine exceeds `route_cache_max_routers` and hot paths use the
    /// analytic route emitters.
    route_cache: OnceLock<Option<RouteCache>>,
    route_cache_max_routers: usize,
    /// Lazily built reciprocal channel bandwidths (`1 / bw` per channel
    /// id), hoisted once so per-run congestion setup is a slice borrow
    /// instead of `num_links` divisions.
    inv_bw: OnceLock<Vec<f64>>,
}

impl Machine {
    /// Builds a torus/mesh machine from a config.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.nodes_per_router >= 1);
        assert!(cfg.procs_per_node >= 1);
        let torus = if cfg.wraparound {
            Torus::new(&cfg.dims)
        } else {
            Torus::new_mesh(&cfg.dims)
        };
        let params = MachineParams {
            nodes_per_router: cfg.nodes_per_router,
            procs_per_node: cfg.procs_per_node,
            link_mode: cfg.link_mode,
            base_latency_us: cfg.base_latency_us,
            hop_latency_us: cfg.hop_latency_us,
            nic_bw: cfg.nic_bw,
        };
        Self::from_topology(
            Topology::Torus(TorusNet::new(torus, &cfg.bw_per_dim)),
            params,
        )
    }

    /// Builds a machine from any topology backend.
    pub fn from_topology(topo: Topology, params: MachineParams) -> Self {
        assert!(params.nodes_per_router >= 1);
        assert!(params.procs_per_node >= 1);
        let mut b = GraphBuilder::new(topo.num_routers());
        topo.for_each_link(|_, u, v, bw| {
            b.add_edge(u, v, bw);
        });
        let router_graph = b.build_symmetric();
        Self {
            topo,
            params,
            router_graph,
            faults: None,
            oracle: OnceLock::new(),
            oracle_max_routers: DEFAULT_ORACLE_MAX_ROUTERS,
            route_cache: OnceLock::new(),
            route_cache_max_routers: DEFAULT_ROUTE_CACHE_MAX_ROUTERS,
            inv_bw: OnceLock::new(),
        }
    }

    /// The distance-oracle table, building it on first use; `None` when
    /// the machine exceeds the router-count threshold (hot paths then
    /// use the analytic [`Topology::distance`]).
    ///
    /// The build is O(n²) distance calls and is paid by the *first*
    /// query on the machine (~0.4 s on Hopper's 3264 routers) — the
    /// right trade for a long-lived serving machine, where every
    /// subsequent mapping amortizes it. A latency-sensitive caller
    /// doing a single mapping on a large machine can opt out with
    /// [`set_oracle_threshold(0)`](Self::set_oracle_threshold).
    /// Under a failure mask with hard-failed links the table is
    /// **force-built** from the masked BFS sweep regardless of the
    /// threshold: the analytic fallback would measure distances over
    /// dead links, so in fault mode there is no fallback to fall back
    /// to (correctness over the memory knob; `u16::MAX` entries mark
    /// pairs the failures cut apart).
    #[inline]
    pub fn oracle(&self) -> Option<&DistanceOracle> {
        self.oracle
            .get_or_init(|| match self.failed_factors() {
                Some(factor) => {
                    let p = fault::build_masked(&self.topo, self.params.link_mode, factor);
                    Some(DistanceOracle::from_table(
                        self.topo.num_terminal_routers(),
                        p.table,
                    ))
                }
                None => DistanceOracle::build(&self.topo, self.oracle_max_routers),
            })
            .as_ref()
    }

    /// Overrides the oracle router-count threshold (0 disables the
    /// table entirely — the analytic-fallback configuration the
    /// bit-identity tests pin). Discards any table already built.
    pub fn set_oracle_threshold(&mut self, max_routers: usize) {
        self.oracle_max_routers = max_routers;
        self.oracle = OnceLock::new();
    }

    /// The route memo, instantiating it on first use; `None` when the
    /// machine exceeds the router-count threshold (hot paths then emit
    /// routes analytically). Instantiation is O(n) empty row slots —
    /// rows themselves build on first route *from* each source, so the
    /// first congestion refinement on a fresh allocation pays the row
    /// builds and every later run reads warm slices (DESIGN.md §13).
    /// Under a failure mask with hard-failed links the cache is
    /// **force-built eagerly** from the masked BFS sweep (every row of
    /// both directions, regardless of the threshold): the analytic
    /// emitters would route straight through dead links. The full
    /// `4·Σ distance` footprint is the price of failures on very large
    /// machines — see DESIGN.md §14.
    #[inline]
    pub fn route_cache(&self) -> Option<&RouteCache> {
        self.route_cache
            .get_or_init(|| match self.failed_factors() {
                Some(factor) => {
                    let p = fault::build_masked(&self.topo, self.params.link_mode, factor);
                    Some(RouteCache::from_prebuilt(
                        self.params.link_mode,
                        p.rows_from,
                        p.rows_to,
                    ))
                }
                None => RouteCache::build(
                    &self.topo,
                    self.params.link_mode,
                    self.route_cache_max_routers,
                ),
            })
            .as_ref()
    }

    /// Overrides the route-cache router-count threshold (0 disables the
    /// memo entirely — the analytic-fallback configuration the
    /// cong-refine differential test pins). Discards any rows already
    /// built.
    pub fn set_route_cache_threshold(&mut self, max_routers: usize) {
        self.route_cache_max_routers = max_routers;
        self.route_cache = OnceLock::new();
    }

    /// Applies the failure mask: scales physical link `link`'s
    /// bandwidth to `factor` of nominal (`0.0` = hard failure, `1.0` =
    /// fully restored).
    ///
    /// Invalidation rules (the stale-cache contract DESIGN.md §14
    /// documents and `tests/remap.rs` pins):
    ///
    /// * a pure bandwidth degradation (`0 < factor`) changes no route
    ///   and no distance — the memoized reciprocal bandwidths are
    ///   patched **in place** (allocation-free, the warm-remap path);
    /// * a hard failure or a recovery from one changes the set of
    ///   usable links — the router graph is rebuilt over the survivors
    ///   and the distance oracle and route cache are discarded, to be
    ///   lazily re-derived from the masked BFS sweep (or the analytic
    ///   builders once no failures remain).
    ///
    /// When every link is back at factor `1.0` the mask is dropped
    /// entirely and the machine is indistinguishable from freshly
    /// built.
    pub fn degrade_link(&mut self, link: u32, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "bandwidth factor {factor} outside 0.0..=1.0"
        );
        let num_phys = self.topo.num_physical_links();
        assert!(
            (link as usize) < num_phys,
            "physical link {link} out of range ({num_phys} links)"
        );
        let (was_failed, now_failed, drop_mask) = {
            let faults = self.faults.get_or_insert_with(|| FaultState {
                factor: vec![1.0; num_phys],
                failed: 0,
                imperfect: 0,
            });
            let old = faults.factor[link as usize];
            if old == factor {
                return;
            }
            faults.factor[link as usize] = factor;
            let (was_failed, now_failed) = (old == 0.0, factor == 0.0);
            faults.failed = faults.failed - usize::from(was_failed) + usize::from(now_failed);
            faults.imperfect =
                faults.imperfect - usize::from(old != 1.0) + usize::from(factor != 1.0);
            (was_failed, now_failed, faults.imperfect == 0)
        };
        if let Some(inv) = self.inv_bw.get_mut() {
            let inv_val = 1.0 / (self.topo.physical_link_bw(link) * factor);
            match self.params.link_mode {
                LinkMode::Directed => {
                    inv[2 * link as usize] = inv_val;
                    inv[2 * link as usize + 1] = inv_val;
                }
                LinkMode::Undirected => inv[link as usize] = inv_val,
            }
        }
        if drop_mask {
            self.faults = None;
        }
        if was_failed != now_failed {
            self.rebuild_after_failure_change();
        }
    }

    /// Restores physical link `link` to full health
    /// (`degrade_link(link, 1.0)`).
    pub fn restore_link(&mut self, link: u32) {
        self.degrade_link(link, 1.0);
    }

    /// Drops the entire failure mask and re-derives every cache from
    /// the pristine topology.
    pub fn clear_faults(&mut self) {
        if self.faults.take().is_some() {
            self.inv_bw = OnceLock::new();
            self.rebuild_after_failure_change();
        }
    }

    /// Remaining bandwidth fraction of physical link `link` (`1.0`
    /// when healthy, `0.0` when hard-failed).
    #[inline]
    pub fn link_factor(&self, link: u32) -> f64 {
        match &self.faults {
            Some(f) => f.factor[link as usize],
            None => 1.0,
        }
    }

    /// Whether any physical link is hard-failed (masked routing mode).
    #[inline]
    pub fn has_failed_links(&self) -> bool {
        matches!(&self.faults, Some(f) if f.failed > 0)
    }

    /// Snapshots the current failure mask into a comparable value (see
    /// [`FaultSnapshot`]). Returns the default (healthy) snapshot when
    /// no fault has ever been injected or after [`Machine::clear_faults`].
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        match &self.faults {
            None => FaultSnapshot::default(),
            Some(f) => {
                let mut degraded = Vec::with_capacity(f.failed + f.imperfect);
                for (l, &factor) in f.factor.iter().enumerate() {
                    if factor != 1.0 {
                        degraded.push((l as u32, factor));
                    }
                }
                FaultSnapshot {
                    degraded,
                    hard_failed: f.failed,
                }
            }
        }
    }

    /// Re-imposes a previously captured failure mask onto this machine,
    /// replacing whatever mask it currently carries. Returns `false`
    /// (leaving the machine untouched) when the snapshot does not
    /// validate against this topology ([`FaultSnapshot::is_valid_for`])
    /// — the caller decodes snapshots from storage and must get a typed
    /// failure, never the `degrade_link` asserts. On success the
    /// machine's own [`Machine::fault_snapshot`] compares equal to
    /// `snap`, and every derived product (oracle, route cache, inverse
    /// bandwidths) is rebuilt through the same `degrade_link` path an
    /// uninterrupted run would have taken, so downstream cost metrics
    /// are bit-identical.
    pub fn apply_fault_snapshot(&mut self, snap: &FaultSnapshot) -> bool {
        if !snap.is_valid_for(self) {
            return false;
        }
        self.clear_faults();
        for &(link, factor) in &snap.degraded {
            if factor != 1.0 {
                self.degrade_link(link, factor);
            }
        }
        true
    }

    /// The failure factors when at least one link is hard-failed.
    #[inline]
    fn failed_factors(&self) -> Option<&[f64]> {
        match &self.faults {
            Some(f) if f.failed > 0 => Some(&f.factor),
            _ => None,
        }
    }

    /// Rebuilds the router graph over surviving links and discards the
    /// route/distance products (they lazily re-derive masked or
    /// analytic as appropriate).
    fn rebuild_after_failure_change(&mut self) {
        let mut b = GraphBuilder::new(self.topo.num_routers());
        match self.failed_factors() {
            Some(factor) => self.topo.for_each_link(|l, u, v, bw| {
                if factor[l as usize] > 0.0 {
                    b.add_edge(u, v, bw);
                }
            }),
            None => self.topo.for_each_link(|_, u, v, bw| {
                b.add_edge(u, v, bw);
            }),
        }
        self.router_graph = b.build_symmetric();
        self.oracle = OnceLock::new();
        self.route_cache = OnceLock::new();
    }

    /// Hop distances out of terminal router `r` as a dense row
    /// (`row[b]` = hops `r → b`), when the oracle is enabled. Hot loops
    /// hoist this once per pivot router.
    #[inline]
    pub fn dist_row(&self, r: u32) -> Option<&[u16]> {
        self.oracle().map(|o| o.row(r))
    }

    /// The topology backend.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The underlying torus geometry, when the backend is a torus/mesh.
    #[inline]
    pub fn torus(&self) -> Option<&Torus> {
        self.topo.as_torus()
    }

    /// Topology-independent machine parameters.
    #[inline]
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Congestion accounting mode.
    #[inline]
    pub fn link_mode(&self) -> LinkMode {
        self.params.link_mode
    }

    /// Injection (NIC) bandwidth per node, GB/s.
    #[inline]
    pub fn nic_bw(&self) -> f64 {
        self.params.nic_bw
    }

    /// Nearest-neighbor one-way latency, microseconds.
    #[inline]
    pub fn base_latency_us(&self) -> f64 {
        self.params.base_latency_us
    }

    /// Additional latency per hop, microseconds.
    #[inline]
    pub fn hop_latency_us(&self) -> f64 {
        self.params.hop_latency_us
    }

    /// Number of routers `|Vm|` — **all** vertices of the topology
    /// graph, including internal switches that host no nodes (fat-tree
    /// aggregation/core levels). Size BFS workspaces against this.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.topo.num_routers()
    }

    /// Routers that host compute nodes; they occupy ids
    /// `0..num_terminal_routers()`.
    #[inline]
    pub fn num_terminal_routers(&self) -> usize {
        self.topo.num_terminal_routers()
    }

    /// Total number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_terminal_routers() * self.params.nodes_per_router as usize
    }

    /// Processor cores usable per node.
    #[inline]
    pub fn procs_per_node(&self) -> u32 {
        self.params.procs_per_node
    }

    /// Router a node hangs off.
    #[inline]
    pub fn router_of(&self, node: u32) -> u32 {
        node / self.params.nodes_per_router
    }

    /// Node ids attached to router `r` (empty for internal switches).
    #[inline]
    pub fn nodes_of_router(&self, r: u32) -> std::ops::Range<u32> {
        if (r as usize) < self.num_terminal_routers() {
            let npr = self.params.nodes_per_router;
            r * npr..(r + 1) * npr
        } else {
            0..0
        }
    }

    /// Hop distance between two *nodes* (0 when they share a router).
    /// Served from the [`DistanceOracle`] table when built (a single
    /// bounds-checked row index), otherwise from the analytic
    /// [`Topology::distance`]; the two agree exactly, so every consumer
    /// — greedy WH sums, refinement gains, TMAP/SMAP splits — is
    /// bit-identical across the paths.
    #[inline]
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.router_of(a), self.router_of(b));
        match self.oracle() {
            Some(o) => o.distance(ra, rb),
            None => self.topo.distance(ra, rb),
        }
    }

    /// Network diameter in hops.
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.topo.diameter()
    }

    /// The router adjacency graph in CSR form (symmetric; edge weights =
    /// link bandwidths), for BFS traversals.
    #[inline]
    pub fn router_graph(&self) -> &Graph {
        &self.router_graph
    }

    /// Number of channel ids in the active [`LinkMode`] id space. The
    /// space is exact: every id belongs to a routable physical link.
    #[inline]
    pub fn num_links(&self) -> usize {
        match self.params.link_mode {
            LinkMode::Directed => 2 * self.topo.num_physical_links(),
            LinkMode::Undirected => self.topo.num_physical_links(),
        }
    }

    /// Reciprocal bandwidth (`1 / link_bandwidth`) of every channel id,
    /// as one lazily-built shared slice — the per-link cost vector of
    /// volume-congestion accounting, hoisted to machine lifetime.
    pub fn inv_bandwidths(&self) -> &[f64] {
        self.inv_bw.get_or_init(|| {
            (0..self.num_links() as u32)
                .map(|l| 1.0 / self.link_bandwidth(l))
                .collect()
        })
    }

    /// Bandwidth of channel `id` in GB/s, scaled by the failure mask
    /// (a hard-failed link reports zero bandwidth).
    #[inline]
    pub fn link_bandwidth(&self, id: u32) -> f64 {
        let phys = match self.params.link_mode {
            LinkMode::Directed => id / 2,
            LinkMode::Undirected => id,
        };
        let bw = self.topo.physical_link_bw(phys);
        match &self.faults {
            Some(f) => bw * f.factor[phys as usize],
            None => bw,
        }
    }

    /// Latency of a `hops`-hop message path in microseconds.
    #[inline]
    pub fn path_latency_us(&self, hops: u32) -> f64 {
        self.params.base_latency_us + self.params.hop_latency_us * f64::from(hops)
    }

    /// Appends the channel ids of the static route between *nodes* `a`
    /// and `b` onto `out` (empty when they share a router).
    /// Allocation-free once `out` has capacity — the engine's warm
    /// scratch contract depends on this.
    /// Under a failure mask with hard-failed links, routes are served
    /// from the masked route cache (built around the dead links); the
    /// analytic emitters know nothing about link health.
    #[inline]
    pub fn route_links(&self, a: u32, b: u32, out: &mut Vec<u32>) {
        let (ra, rb) = (self.router_of(a), self.router_of(b));
        if ra == rb {
            return;
        }
        if self.has_failed_links() {
            let cache = self
                .route_cache()
                .expect("masked route cache is force-built under failures");
            out.extend_from_slice(cache.route(&self.topo, ra, rb));
            return;
        }
        self.topo.route_links(ra, rb, self.params.link_mode, out);
    }

    /// Route link ids as a fresh vector (diagnostics/tests).
    pub fn route_links_vec(&self, a: u32, b: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.route_links(a, b, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::DragonflyConfig;
    use crate::fat_tree::FatTreeConfig;

    fn m222() -> Machine {
        MachineConfig::small(&[4, 4, 4], 2, 4).build()
    }

    #[test]
    fn node_router_layout() {
        let m = m222();
        assert_eq!(m.num_routers(), 64);
        assert_eq!(m.num_nodes(), 128);
        assert_eq!(m.router_of(0), 0);
        assert_eq!(m.router_of(1), 0);
        assert_eq!(m.router_of(2), 1);
        assert_eq!(m.nodes_of_router(3), 6..8);
    }

    #[test]
    fn fault_snapshot_tracks_degradations_and_clears() {
        let mut m = m222();
        assert_eq!(m.fault_snapshot(), FaultSnapshot::default());
        assert!(m.fault_snapshot().is_healthy());

        m.degrade_link(3, 0.5);
        m.degrade_link(7, 0.0);
        let snap = m.fault_snapshot();
        assert_eq!(snap.degraded, vec![(3, 0.5), (7, 0.0)]);
        assert_eq!(snap.hard_failed, 1);
        assert!(!snap.is_healthy());
        // Stable across reads: the snapshot is a pure function of the mask.
        assert_eq!(m.fault_snapshot(), snap);

        m.restore_link(7);
        let snap = m.fault_snapshot();
        assert_eq!(snap.degraded, vec![(3, 0.5)]);
        assert_eq!(snap.hard_failed, 0);

        m.clear_faults();
        assert_eq!(m.fault_snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn same_router_nodes_have_zero_hops_and_empty_route() {
        let m = m222();
        assert_eq!(m.hops(0, 1), 0);
        assert!(m.route_links_vec(0, 1).is_empty());
    }

    #[test]
    fn route_link_count_matches_hops() {
        let m = m222();
        for a in (0..128u32).step_by(11) {
            for b in (0..128u32).step_by(7) {
                assert_eq!(m.route_links_vec(a, b).len() as u32, m.hops(a, b));
            }
        }
    }

    #[test]
    fn directed_links_distinguish_directions() {
        let m = m222();
        // Pick two nodes on adjacent routers; routes a->b and b->a use
        // different directed channel ids over the same physical link.
        let (a, b) = (0u32, 2u32);
        let ab = m.route_links_vec(a, b);
        let ba = m.route_links_vec(b, a);
        assert_eq!(ab.len(), 1);
        assert_eq!(ba.len(), 1);
        assert_ne!(ab[0], ba[0]);
        assert_eq!(ab[0] / 2, ba[0] / 2);
    }

    #[test]
    fn undirected_links_share_ids() {
        let mut cfg = MachineConfig::small(&[4, 4], 1, 1);
        cfg.link_mode = LinkMode::Undirected;
        let m = cfg.build();
        let ab = m.route_links_vec(0, 1);
        let ba = m.route_links_vec(1, 0);
        assert_eq!(ab, ba);
        assert_eq!(m.num_links(), 16 * 2);
    }

    #[test]
    fn extent_two_wraparound_shares_undirected_ids() {
        // The regression the topology-owned id scheme exists for: both
        // directions of an extent-2 dim tie-break to `positive`, but the
        // physical link must still have ONE undirected id.
        let mut cfg = MachineConfig::small(&[2, 4], 1, 1);
        cfg.link_mode = LinkMode::Undirected;
        let m = cfg.build();
        for y in 0..4u32 {
            let (a, b) = (y * 2, y * 2 + 1); // (0, y) <-> (1, y)
            let ab = m.route_links_vec(a, b);
            let ba = m.route_links_vec(b, a);
            assert_eq!(ab.len(), 1);
            assert_eq!(ab, ba, "{a} <-> {b}");
        }
        // Exact id space: 4 extent-2 links + 8 ring links.
        assert_eq!(m.num_links(), 12);
    }

    #[test]
    fn extent_one_and_mesh_boundaries_have_exact_id_spaces() {
        let m = MachineConfig::small(&[1, 4], 1, 1).build();
        assert_eq!(m.num_links(), 8, "4 ring links x 2 directions");
        let m = MachineConfig::small_mesh(&[4], 1, 1).build();
        assert_eq!(m.num_links(), 6, "3 mesh links x 2 directions");
    }

    #[test]
    fn hopper_preset_shape() {
        let m = MachineConfig::hopper().build();
        assert_eq!(m.num_routers(), 17 * 8 * 24);
        assert_eq!(m.num_nodes(), 2 * 17 * 8 * 24);
        assert_eq!(m.diameter(), 24);
        assert_eq!(m.procs_per_node(), 16);
        // Y-dimension links are the slow ones: route one +y hop from
        // router 0 (nodes 0 and the y-neighbor's first node).
        let t = m.torus().unwrap();
        let y_neighbor = t.neighbor(0, 1, true);
        let route = m.route_links_vec(0, y_neighbor * 2);
        assert_eq!(route.len(), 1);
        assert!((m.link_bandwidth(route[0]) - 4.68).abs() < 1e-12);
        let x_neighbor = t.neighbor(0, 0, true);
        let route = m.route_links_vec(0, x_neighbor * 2);
        assert_eq!(route.len(), 1);
        assert!((m.link_bandwidth(route[0]) - 9.375).abs() < 1e-12);
    }

    #[test]
    fn latency_model_matches_paper_endpoints() {
        let m = MachineConfig::hopper().build();
        assert!((m.path_latency_us(0) - 1.27).abs() < 1e-9);
        assert!((m.path_latency_us(24) - 3.88).abs() < 1e-9);
    }

    #[test]
    fn router_graph_is_six_regular_for_3d() {
        let m = m222();
        let g = m.router_graph();
        for r in 0..g.num_vertices() as u32 {
            assert_eq!(g.degree(r), 6);
        }
    }

    #[test]
    fn fat_tree_machine_shape() {
        let m = FatTreeConfig::small(4, 2, 1).build();
        // k=4: 8 edge switches (terminal), 8 agg, 4 core.
        assert_eq!(m.num_terminal_routers(), 8);
        assert_eq!(m.num_routers(), 20);
        assert_eq!(m.num_nodes(), 16);
        assert_eq!(m.num_links(), 2 * 32);
        // Internal switches host no nodes.
        assert!(m.nodes_of_router(8).is_empty());
        assert!(m.nodes_of_router(19).is_empty());
        // Same-pod and cross-pod distances.
        assert_eq!(m.hops(0, 2), 2);
        assert_eq!(m.hops(0, 4), 4);
        // Router graph degrees: edge = k/2 up, agg = k/2 down + k/2 up,
        // core = k down.
        let g = m.router_graph();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(8), 4);
        assert_eq!(g.degree(16), 4);
    }

    #[test]
    fn dragonfly_machine_shape() {
        let m = DragonflyConfig::small(4, 3, 2).build();
        assert_eq!(m.num_routers(), 12);
        assert_eq!(m.num_terminal_routers(), 12);
        assert_eq!(m.num_nodes(), 24);
        // 4 groups x 3 local links + 6 globals, directed.
        assert_eq!(m.num_links(), 2 * (12 + 6));
        assert_eq!(m.diameter(), 3);
    }

    #[test]
    fn oracle_backs_hops_and_fallback_agrees() {
        let mut m = m222();
        assert!(m.oracle().is_some(), "64 routers is well under threshold");
        let row = m.dist_row(0).unwrap();
        assert_eq!(row.len(), 64);
        let oracle_hops: Vec<u32> = (0..128u32).map(|b| m.hops(0, b)).collect();
        // Disabling the table must not change a single distance.
        m.set_oracle_threshold(0);
        assert!(m.oracle().is_none());
        assert!(m.dist_row(0).is_none());
        let analytic_hops: Vec<u32> = (0..128u32).map(|b| m.hops(0, b)).collect();
        assert_eq!(oracle_hops, analytic_hops);
    }

    #[test]
    fn fault_snapshot_round_trips_bit_identical_and_rejects_corruption() {
        let mut m = MachineConfig::small(&[4, 4], 2, 2).build();
        m.degrade_link(3, 0.25);
        m.degrade_link(9, 0.0);
        let snap = m.fault_snapshot();

        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let (decoded, used) = FaultSnapshot::decode(&bytes).expect("round trip");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, snap);
        for (&(la, fa), &(lb, fb)) in decoded.degraded.iter().zip(&snap.degraded) {
            assert_eq!(la, lb);
            assert_eq!(fa.to_bits(), fb.to_bits());
        }

        // Truncation and in-place corruption are decode failures, not
        // panics: chop the buffer and flip a factor to a NaN pattern.
        assert!(FaultSnapshot::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut bad = bytes.clone();
        let factor_at = 4 + 4; // first record's factor bits
        bad[factor_at..factor_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(FaultSnapshot::decode(&bad).is_none());
    }

    #[test]
    fn apply_fault_snapshot_reproduces_mask_and_rejects_foreign_links() {
        let mut m = MachineConfig::small(&[4, 4], 2, 2).build();
        m.degrade_link(2, 0.5);
        m.degrade_link(11, 0.0);
        let snap = m.fault_snapshot();
        let dists: Vec<u32> = (0..m.num_nodes() as u32).map(|b| m.hops(0, b)).collect();

        let mut fresh = MachineConfig::small(&[4, 4], 2, 2).build();
        // Pre-existing faults must be replaced, not merged.
        fresh.degrade_link(5, 0.75);
        assert!(fresh.apply_fault_snapshot(&snap));
        assert_eq!(fresh.fault_snapshot(), snap);
        assert_eq!(fresh.link_factor(5), 1.0);
        let redists: Vec<u32> = (0..fresh.num_nodes() as u32)
            .map(|b| fresh.hops(0, b))
            .collect();
        assert_eq!(dists, redists);

        // A snapshot naming a link this topology does not have must be
        // refused without touching the machine.
        let foreign = FaultSnapshot {
            degraded: vec![(u32::MAX, 0.5)],
            hard_failed: 0,
        };
        assert!(!foreign.is_valid_for(&fresh));
        assert!(!fresh.apply_fault_snapshot(&foreign));
        assert_eq!(fresh.fault_snapshot(), snap);
    }

    #[test]
    fn route_length_matches_hops_on_all_backends() {
        let machines = [
            MachineConfig::small(&[2, 3], 2, 1).build(),
            FatTreeConfig::small(4, 2, 1).build(),
            DragonflyConfig::small(4, 3, 2).build(),
        ];
        for m in &machines {
            for a in 0..m.num_nodes() as u32 {
                for b in 0..m.num_nodes() as u32 {
                    assert_eq!(
                        m.route_links_vec(a, b).len() as u32,
                        m.hops(a, b),
                        "{}: {a}->{b}",
                        m.topology().summary()
                    );
                }
            }
        }
    }
}
