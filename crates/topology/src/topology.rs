//! The pluggable topology backend behind [`Machine`](crate::Machine).
//!
//! A [`Topology`] is everything the mapping algorithms and the network
//! simulators need from an interconnect: router count, O(ndims)-ish hop
//! distances, static minimal routes emitted directly as **link ids**,
//! the link-id space itself (with bandwidths), and the router adjacency
//! for BFS traversals. Three backends are provided:
//!
//! * [`TorusNet`] — k-ary n-D torus / mesh (the paper's Cray Gemini
//!   model) with dimension-ordered routing;
//! * [`FatTree`](crate::fat_tree::FatTree) — 3-level k-ary fat-tree
//!   (Clos) with deterministic up\*/down\* routing;
//! * [`Dragonfly`](crate::dragonfly::Dragonfly) — dragonfly groups with
//!   minimal local–global–local routing.
//!
//! **The topology owns the link-id space.** Every physical link gets
//! one dense id; in [`LinkMode::Undirected`] that id *is* the channel
//! id, and in [`LinkMode::Directed`] the two channels of link `l` are
//! `2·l` and `2·l + 1`. Because the id is derived from the unordered
//! endpoint pair — never from the direction a route happens to traverse
//! the link — opposite-direction routes between the same routers always
//! hit the same undirected counter. This is what fixes the extent-2
//! wraparound miscount: both directions of such a dimension tie-break
//! to `positive`, so the old hop-direction-derived scheme split a↔b
//! traffic across two ids and silently underreported MC/MMC/AC.
//!
//! The id space is also **exact**: extent-1 dimensions, mesh
//! boundaries, and internal-switch-free levels contribute no phantom
//! slots, so per-link scans in the metrics and the analytic simulator
//! touch only routable links.
//!
//! Dispatch is by enum, not trait object: the route emitters are small
//! arithmetic loops that inline through the match, and the
//! `dispatch_enum_vs_dyn` microbenchmark (crates/bench) showed dynamic
//! dispatch costing measurable extra time per hop on the routing hot
//! path for no flexibility the workspace needs (backends are a closed
//! set compiled in).

use crate::dragonfly::Dragonfly;
use crate::fat_tree::FatTree;
use crate::machine::LinkMode;
use crate::ordering::NodeOrdering;
use crate::routing;
use crate::torus::Torus;

/// A network topology backend: geometry, routing and the link-id space.
#[derive(Clone, Debug)]
pub enum Topology {
    /// k-ary n-D torus or mesh with dimension-ordered routing.
    Torus(TorusNet),
    /// 3-level k-ary fat-tree with up*/down* routing.
    FatTree(FatTree),
    /// Dragonfly with minimal local–global–local routing.
    Dragonfly(Dragonfly),
}

impl Topology {
    /// Total routers (topology-graph vertices), including internal
    /// switches that host no compute nodes (fat-tree aggregation and
    /// core levels). BFS workspaces size against this.
    #[inline]
    pub fn num_routers(&self) -> usize {
        match self {
            Topology::Torus(t) => t.torus.num_routers(),
            Topology::FatTree(f) => f.num_routers(),
            Topology::Dragonfly(d) => d.num_routers(),
        }
    }

    /// Routers that host compute nodes. Terminal routers occupy ids
    /// `0..num_terminal_routers()`; node attachment and distances are
    /// defined on them.
    #[inline]
    pub fn num_terminal_routers(&self) -> usize {
        match self {
            Topology::Torus(t) => t.torus.num_routers(),
            Topology::FatTree(f) => f.num_terminal_routers(),
            Topology::Dragonfly(d) => d.num_routers(),
        }
    }

    /// Number of physical (undirected) links; the id space is exactly
    /// `0..num_physical_links()` and every id is routable.
    #[inline]
    pub fn num_physical_links(&self) -> usize {
        match self {
            Topology::Torus(t) => t.link_bw.len(),
            Topology::FatTree(f) => f.num_physical_links(),
            Topology::Dragonfly(d) => d.num_physical_links(),
        }
    }

    /// Bandwidth of physical link `l` in GB/s.
    #[inline]
    pub fn physical_link_bw(&self, l: u32) -> f64 {
        match self {
            Topology::Torus(t) => t.link_bw[l as usize],
            Topology::FatTree(f) => f.physical_link_bw(l),
            Topology::Dragonfly(d) => d.physical_link_bw(l),
        }
    }

    /// Hop distance between two *terminal* routers (length of the
    /// static minimal route).
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        match self {
            Topology::Torus(t) => t.torus.distance(a, b),
            Topology::FatTree(f) => f.distance(a, b),
            Topology::Dragonfly(d) => d.distance(a, b),
        }
    }

    /// Writes the hop distance from terminal router `a` to every
    /// terminal router (id order) into `out[..num_terminal_routers]` —
    /// the per-source sweep the [`DistanceOracle`]
    /// (crate::oracle::DistanceOracle) build runs once per row. Tori
    /// use the odometer sweep ([`Torus::fill_distances`]), which is
    /// ~an order of magnitude cheaper than per-pair [`distance`]
    /// (Self::distance) calls (no coordinate decode per destination);
    /// the shallow fat-tree/dragonfly distance functions fall back to
    /// the per-pair loop. Values are exactly `distance(a, b) as u16`.
    pub fn fill_distance_row(&self, a: u32, out: &mut [u16]) {
        match self {
            Topology::Torus(t) => t.torus.fill_distances(a, out),
            _ => {
                for (b, slot) in out[..self.num_terminal_routers()].iter_mut().enumerate() {
                    *slot = self.distance(a, b as u32) as u16;
                }
            }
        }
    }

    /// Maximum terminal-pair hop distance.
    #[inline]
    pub fn diameter(&self) -> u32 {
        match self {
            Topology::Torus(t) => t.torus.diameter(),
            Topology::FatTree(f) => f.diameter(),
            Topology::Dragonfly(d) => d.diameter(),
        }
    }

    /// Appends the channel ids of the static route between terminal
    /// routers `a` and `b` onto `out` (exactly `distance(a, b)` of
    /// them; nothing when `a == b`). Routes are pure functions of their
    /// endpoints, so congestion metrics are exact. Allocation-free once
    /// `out` has capacity.
    #[inline]
    pub fn route_links(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>) {
        match self {
            Topology::Torus(t) => t.route_links(a, b, mode, out),
            Topology::FatTree(f) => f.route_links(a, b, mode, out),
            Topology::Dragonfly(d) => d.route_links(a, b, mode, out),
        }
    }

    /// Appends the full router sequence of the static route from `a` to
    /// `b`, **including both endpoints** (just `a` when `a == b`).
    /// Diagnostics and property tests; hot paths use
    /// [`route_links`](Self::route_links).
    pub fn route_routers(&self, a: u32, b: u32, out: &mut Vec<u32>) {
        match self {
            Topology::Torus(t) => t.route_routers(a, b, out),
            Topology::FatTree(f) => f.route_routers(a, b, out),
            Topology::Dragonfly(d) => d.route_routers(a, b, out),
        }
    }

    /// Calls `f(link_id, endpoint_a, endpoint_b, bandwidth)` once per
    /// physical link, in ascending id order. The machine builds its CSR
    /// router graph from this enumeration.
    pub fn for_each_link(&self, f: impl FnMut(u32, u32, u32, f64)) {
        match self {
            Topology::Torus(t) => t.for_each_link(f),
            Topology::FatTree(ft) => ft.for_each_link(f),
            Topology::Dragonfly(d) => d.for_each_link(f),
        }
    }

    /// Terminal routers in scheduler placement order. Tori honor the
    /// requested curve; fat-tree and dragonfly use id order, which
    /// already groups pods / groups contiguously (the locality property
    /// the curve exists to provide).
    pub fn placement_order(&self, ordering: NodeOrdering) -> Vec<u32> {
        match self {
            Topology::Torus(t) => ordering.router_order(&t.torus),
            _ => (0..self.num_terminal_routers() as u32).collect(),
        }
    }

    /// The underlying torus geometry, when this is a torus backend.
    #[inline]
    pub fn as_torus(&self) -> Option<&Torus> {
        match self {
            Topology::Torus(t) => Some(&t.torus),
            _ => None,
        }
    }

    /// One-line human description, e.g. `torus [4, 4, 4]`.
    pub fn summary(&self) -> String {
        match self {
            Topology::Torus(t) => format!(
                "{} {:?}",
                if t.torus.has_wraparound() {
                    "torus"
                } else {
                    "mesh"
                },
                t.torus.dims()
            ),
            Topology::FatTree(f) => format!("fat-tree k={}", f.k()),
            Topology::Dragonfly(d) => {
                format!("dragonfly g={} a={}", d.groups(), d.routers_per_group())
            }
        }
    }
}

/// Torus/mesh backend: [`Torus`] geometry plus the canonical link-id
/// space and per-dimension bandwidths.
///
/// Link ids are assigned at construction: router `r` *owns* the link of
/// its `+1` hop along dimension `d` whenever that hop leads to a
/// distinct router — except on wraparound dimensions of extent 2, where
/// both routers' `+1` hops cross the same physical pair and only the
/// lower-id endpoint owns the (single) link. Extent-1 dimensions and
/// mesh boundaries own nothing, so the id space is exact.
#[derive(Clone, Debug)]
pub struct TorusNet {
    torus: Torus,
    /// `link_of[r * ndims + d]` = physical id of the link generated by
    /// the +1 hop out of `r` along `d`, or `u32::MAX` if `r` owns none.
    link_of: Vec<u32>,
    /// Bandwidth per physical link.
    link_bw: Vec<f64>,
}

impl TorusNet {
    /// Builds the backend; `bw_per_dim` must have one entry per
    /// dimension.
    pub fn new(torus: Torus, bw_per_dim: &[f64]) -> Self {
        assert_eq!(
            torus.ndims(),
            bw_per_dim.len(),
            "bw_per_dim must have one entry per torus dimension"
        );
        let nr = torus.num_routers();
        let nd = torus.ndims();
        let mut link_of = vec![u32::MAX; nr * nd];
        let mut link_bw = Vec::new();
        for r in 0..nr as u32 {
            for d in 0..nd {
                let p = torus.neighbor(r, d, true);
                if p == r {
                    continue; // extent-1 dimension or mesh boundary
                }
                if torus.has_wraparound() && torus.dims()[d] == 2 && r > p {
                    continue; // extent-2 pair: the lower endpoint owns it
                }
                link_of[r as usize * nd + d] = link_bw.len() as u32;
                link_bw.push(bw_per_dim[d]);
            }
        }
        Self {
            torus,
            link_of,
            link_bw,
        }
    }

    /// The torus geometry.
    #[inline]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Channel id of the hop `from → to` along dimension `d` in
    /// direction `positive`, under `mode`.
    #[inline]
    fn channel(&self, from: u32, to: u32, d: usize, positive: bool, mode: LinkMode) -> u32 {
        let wrap2 = self.torus.has_wraparound() && self.torus.dims()[d] == 2;
        // Canonical owner: the router whose +1 hop generated the link.
        // On extent-2 wraparound dims both directions reach the same
        // pair, so ownership falls back to the unordered-pair rule.
        let (owner, reversed) = if wrap2 {
            let o = from.min(to);
            (o, from != o)
        } else if positive {
            (from, false)
        } else {
            (to, true)
        };
        let l = self.link_of[owner as usize * self.torus.ndims() + d];
        debug_assert_ne!(l, u32::MAX, "hop over a nonexistent link");
        match mode {
            LinkMode::Undirected => l,
            LinkMode::Directed => 2 * l + u32::from(reversed),
        }
    }

    // Both route emitters ride on `routing::walk` — the single source
    // of truth for the dimension-ordered walk — so the hot link-id path
    // can never desynchronize from the Hop-level diagnostics route.
    fn route_links(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>) {
        routing::walk(&self.torus, a, b, |from, to, d, positive| {
            out.push(self.channel(from, to, d, positive, mode));
        });
    }

    fn route_routers(&self, a: u32, b: u32, out: &mut Vec<u32>) {
        out.push(a);
        routing::walk(&self.torus, a, b, |_, to, _, _| out.push(to));
    }

    fn for_each_link(&self, mut f: impl FnMut(u32, u32, u32, f64)) {
        let nd = self.torus.ndims();
        for r in 0..self.torus.num_routers() as u32 {
            for d in 0..nd {
                let l = self.link_of[r as usize * nd + d];
                if l != u32::MAX {
                    let p = self.torus.neighbor(r, d, true);
                    f(l, r, p, self.link_bw[l as usize]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(dims: &[u32]) -> TorusNet {
        TorusNet::new(Torus::new(dims), &vec![1.0; dims.len()])
    }

    #[test]
    fn exact_link_count_ordinary_extents() {
        // All extents > 2: every router owns one link per dim.
        let n = net(&[4, 4, 4]);
        assert_eq!(n.link_bw.len(), 64 * 3);
    }

    #[test]
    fn extent_two_links_are_deduplicated() {
        // [2, 4]: dim 0 has 4 links (one per pair), dim 1 has 8.
        let n = net(&[2, 4]);
        assert_eq!(n.link_bw.len(), 4 + 8);
    }

    #[test]
    fn extent_one_dims_own_no_links() {
        let n = net(&[1, 4]);
        assert_eq!(n.link_bw.len(), 4);
    }

    #[test]
    fn mesh_boundaries_own_no_links() {
        let n = TorusNet::new(Torus::new_mesh(&[4, 3]), &[1.0, 1.0]);
        // 4x3 mesh: 3 links per row x 3 rows + 2 links per column x 4.
        assert_eq!(n.link_bw.len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn opposite_routes_share_undirected_ids_on_extent_two() {
        // Both directions across an extent-2 wraparound dim tie-break
        // to `positive` yet cross the SAME physical link: the ids must
        // coincide. (Pairs whose routes differ in other dims legally
        // use different links — different rows / ring halves.)
        let n = net(&[2, 4]);
        for y in 0..4u32 {
            let a = y * 2; // (0, y)
            let b = y * 2 + 1; // (1, y)
            let mut ab = Vec::new();
            let mut ba = Vec::new();
            n.route_links(a, b, LinkMode::Undirected, &mut ab);
            n.route_links(b, a, LinkMode::Undirected, &mut ba);
            assert_eq!(ab.len(), 1);
            assert_eq!(ab, ba, "{a} <-> {b}");
        }
    }

    #[test]
    fn directed_channels_still_distinguish_directions_on_extent_two() {
        let n = net(&[2]);
        let mut ab = Vec::new();
        let mut ba = Vec::new();
        n.route_links(0, 1, LinkMode::Directed, &mut ab);
        n.route_links(1, 0, LinkMode::Directed, &mut ba);
        assert_eq!(ab.len(), 1);
        assert_eq!(ba.len(), 1);
        assert_ne!(ab[0], ba[0]);
        assert_eq!(ab[0] / 2, ba[0] / 2, "same physical link");
    }

    #[test]
    fn route_routers_matches_route_links_length() {
        let n = net(&[5, 4, 3]);
        let topo = Topology::Torus(n);
        let mut links = Vec::new();
        let mut routers = Vec::new();
        for a in (0..60u32).step_by(7) {
            for b in (0..60u32).step_by(11) {
                links.clear();
                routers.clear();
                topo.route_links(a, b, LinkMode::Undirected, &mut links);
                topo.route_routers(a, b, &mut routers);
                assert_eq!(links.len() + 1, routers.len());
                assert_eq!(links.len() as u32, topo.distance(a, b));
                assert_eq!(routers[0], a);
                assert_eq!(*routers.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn for_each_link_enumerates_dense_ascending_ids() {
        let topo = Topology::Torus(net(&[2, 3]));
        let mut next = 0u32;
        topo.for_each_link(|l, a, b, bw| {
            assert_eq!(l, next);
            assert_ne!(a, b);
            assert!(bw > 0.0);
            next += 1;
        });
        assert_eq!(next as usize, topo.num_physical_links());
    }
}
