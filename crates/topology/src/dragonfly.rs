//! Dragonfly backend (Kim, Dally, Scott, Abts: "Technology-Driven,
//! Highly-Scalable Dragonfly Topology", ISCA 2008) — the interconnect
//! family of Cray XC (Aries) and Slingshot supercomputers.
//!
//! `g` groups of `a` routers each; routers within a group are fully
//! connected by *local* links, and every group pair is joined by one
//! *global* link. Each router hosts compute nodes, so all routers are
//! terminal. The global link between groups `i` and `j` attaches, in
//! group `i`, to the router whose local index is `p mod a` where `p` is
//! `j`'s rank among `i`'s peers — the standard round-robin gateway
//! assignment that spreads global endpoints over a group.
//!
//! Routing is minimal and static: a local hop to the gateway (when the
//! source is not the gateway), the global hop, and a local hop from the
//! far gateway (when it is not the destination) — at most 3 hops, and a
//! pure function of the endpoints (no Valiant randomization), so the
//! congestion metrics stay exact.
//!
//! Link ids: the `g·a(a−1)/2` local links first (group-major, lower
//! local pair index first), then the `g(g−1)/2` global links (lower
//! group pair index first). Ids are unordered-pair-canonical by
//! construction; directed channels are `2·l + dir` with `dir = 0` when
//! traversing from the lower router id (local) or lower group id
//! (global).

use crate::machine::{LinkMode, Machine, MachineParams};
use crate::topology::Topology;

/// Configuration for building a dragonfly [`Machine`].
#[derive(Clone, Debug)]
pub struct DragonflyConfig {
    /// Number of groups `g` (≥ 1).
    pub groups: u32,
    /// Routers per group `a` (≥ 1); local links form a clique.
    pub routers_per_group: u32,
    /// Compute nodes per router.
    pub nodes_per_router: u32,
    /// Processor cores usable per node.
    pub procs_per_node: u32,
    /// Intra-group (local) link bandwidth, GB/s.
    pub local_bw: f64,
    /// Inter-group (global) link bandwidth, GB/s.
    pub global_bw: f64,
    /// Congestion accounting mode.
    pub link_mode: LinkMode,
    /// Nearest-neighbor one-way latency, microseconds.
    pub base_latency_us: f64,
    /// Additional latency per hop, microseconds.
    pub hop_latency_us: f64,
    /// Injection (NIC) bandwidth per node, GB/s.
    pub nic_bw: f64,
}

impl DragonflyConfig {
    /// A small unit-bandwidth dragonfly for tests and examples.
    pub fn small(groups: u32, routers_per_group: u32, nodes_per_router: u32) -> Self {
        Self {
            groups,
            routers_per_group,
            nodes_per_router,
            procs_per_node: 1,
            local_bw: 1.0,
            global_bw: 1.0,
            link_mode: LinkMode::Directed,
            base_latency_us: 1.0,
            hop_latency_us: 0.1,
            nic_bw: 1.0,
        }
    }

    /// A Cray XC-style system: 9 groups of 16 routers, 4 nodes per
    /// router, fast local links and slimmer globals.
    pub fn supercomputer() -> Self {
        Self {
            groups: 9,
            routers_per_group: 16,
            nodes_per_router: 4,
            procs_per_node: 16,
            local_bw: 5.25,
            global_bw: 4.7,
            link_mode: LinkMode::Directed,
            base_latency_us: 1.3,
            hop_latency_us: 0.12,
            nic_bw: 8.0,
        }
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        assert!(
            self.groups >= 1 && self.routers_per_group >= 1,
            "dragonfly needs at least one group and one router per group"
        );
        let params = MachineParams {
            nodes_per_router: self.nodes_per_router,
            procs_per_node: self.procs_per_node,
            link_mode: self.link_mode,
            base_latency_us: self.base_latency_us,
            hop_latency_us: self.hop_latency_us,
            nic_bw: self.nic_bw,
        };
        let topo = Topology::Dragonfly(Dragonfly {
            groups: self.groups,
            routers_per_group: self.routers_per_group,
            local_bw: self.local_bw,
            global_bw: self.global_bw,
        });
        Machine::from_topology(topo, params)
    }
}

/// The dragonfly topology backend. See the module docs for the id
/// layout and routing rule.
#[derive(Clone, Debug)]
pub struct Dragonfly {
    groups: u32,
    routers_per_group: u32,
    local_bw: f64,
    global_bw: f64,
}

/// Index of the unordered pair `(x, y)` with `x < y` in the
/// lexicographic enumeration of all pairs over `0..n`.
#[inline]
fn pair_index(x: u32, y: u32, n: u32) -> u32 {
    debug_assert!(x < y && y < n);
    x * (2 * n - x - 1) / 2 + (y - x - 1)
}

impl Dragonfly {
    /// Number of groups.
    #[inline]
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Routers per group.
    #[inline]
    pub fn routers_per_group(&self) -> u32 {
        self.routers_per_group
    }

    /// All routers are terminal.
    #[inline]
    pub fn num_routers(&self) -> usize {
        (self.groups * self.routers_per_group) as usize
    }

    /// Local links per group (clique).
    #[inline]
    fn locals_per_group(&self) -> u32 {
        let a = self.routers_per_group;
        a * (a - 1) / 2
    }

    /// Physical links: per-group cliques plus one global per group pair.
    #[inline]
    pub fn num_physical_links(&self) -> usize {
        let g = self.groups;
        (g * self.locals_per_group() + g * (g - 1) / 2) as usize
    }

    /// Bandwidth of physical link `l`.
    #[inline]
    pub fn physical_link_bw(&self, l: u32) -> f64 {
        if l < self.groups * self.locals_per_group() {
            self.local_bw
        } else {
            self.global_bw
        }
    }

    /// Physical id of the local link between routers `x` and `y`
    /// (local indices) of `group`.
    #[inline]
    fn local_link(&self, group: u32, x: u32, y: u32) -> u32 {
        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
        group * self.locals_per_group() + pair_index(lo, hi, self.routers_per_group)
    }

    /// Physical id of the global link between groups `i` and `j`.
    #[inline]
    fn global_link(&self, i: u32, j: u32) -> u32 {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.groups * self.locals_per_group() + pair_index(lo, hi, self.groups)
    }

    /// Local index, within `group`, of the router terminating the
    /// global link toward `peer`.
    #[inline]
    fn gateway(&self, group: u32, peer: u32) -> u32 {
        debug_assert_ne!(group, peer);
        let p = if peer > group { peer - 1 } else { peer };
        p % self.routers_per_group
    }

    /// Hop distance: 0 same router, 1 same group, else 1 global hop
    /// plus a local hop at each end whose router is not the gateway.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        let ra = self.routers_per_group;
        let (ga, la) = (a / ra, a % ra);
        let (gb, lb) = (b / ra, b % ra);
        if ga == gb {
            return 1;
        }
        1 + u32::from(la != self.gateway(ga, gb)) + u32::from(lb != self.gateway(gb, ga))
    }

    /// Maximum terminal-pair distance.
    #[inline]
    pub fn diameter(&self) -> u32 {
        let (g, a) = (self.groups, self.routers_per_group);
        match (g > 1, a > 1) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 1,
            // A non-gateway source and non-gateway destination exist
            // whenever a group has ≥ 2 routers.
            (true, true) => 3,
        }
    }

    #[inline]
    fn channel(&self, l: u32, reversed: bool, mode: LinkMode) -> u32 {
        match mode {
            LinkMode::Undirected => l,
            LinkMode::Directed => 2 * l + u32::from(reversed),
        }
    }

    /// Emits the minimal local–global–local route as channel ids.
    pub fn route_links(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>) {
        if a == b {
            return;
        }
        let ra = self.routers_per_group;
        let (ga, la) = (a / ra, a % ra);
        let (gb, lb) = (b / ra, b % ra);
        if ga == gb {
            out.push(self.channel(self.local_link(ga, la, lb), la > lb, mode));
            return;
        }
        let gw_a = self.gateway(ga, gb);
        let gw_b = self.gateway(gb, ga);
        if la != gw_a {
            out.push(self.channel(self.local_link(ga, la, gw_a), la > gw_a, mode));
        }
        out.push(self.channel(self.global_link(ga, gb), ga > gb, mode));
        if gw_b != lb {
            out.push(self.channel(self.local_link(gb, gw_b, lb), gw_b > lb, mode));
        }
    }

    /// Emits the router sequence of the route, endpoints included.
    pub fn route_routers(&self, a: u32, b: u32, out: &mut Vec<u32>) {
        out.push(a);
        if a == b {
            return;
        }
        let ra = self.routers_per_group;
        let (ga, la) = (a / ra, a % ra);
        let gb = b / ra;
        if ga == gb {
            out.push(b);
            return;
        }
        let gw_a = self.gateway(ga, gb);
        let gw_b = self.gateway(gb, ga);
        if la != gw_a {
            out.push(ga * ra + gw_a);
        }
        out.push(gb * ra + gw_b);
        if gb * ra + gw_b != b {
            out.push(b);
        }
    }

    /// Enumerates every physical link in ascending id order.
    pub fn for_each_link(&self, mut f: impl FnMut(u32, u32, u32, f64)) {
        let a = self.routers_per_group;
        for group in 0..self.groups {
            for x in 0..a {
                for y in (x + 1)..a {
                    f(
                        self.local_link(group, x, y),
                        group * a + x,
                        group * a + y,
                        self.local_bw,
                    );
                }
            }
        }
        for i in 0..self.groups {
            for j in (i + 1)..self.groups {
                f(
                    self.global_link(i, j),
                    i * a + self.gateway(i, j),
                    j * a + self.gateway(j, i),
                    self.global_bw,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df(g: u32, a: u32) -> Dragonfly {
        Dragonfly {
            groups: g,
            routers_per_group: a,
            local_bw: 1.0,
            global_bw: 1.0,
        }
    }

    #[test]
    fn counts_and_diameter() {
        let d = df(4, 3);
        assert_eq!(d.num_routers(), 12);
        assert_eq!(d.num_physical_links(), 4 * 3 + 6);
        assert_eq!(d.diameter(), 3);
        assert_eq!(df(1, 4).diameter(), 1);
        assert_eq!(df(5, 1).diameter(), 1);
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for x in 0..n {
            for y in (x + 1)..n {
                assert!(seen.insert(pair_index(x, y, n)));
            }
        }
        assert_eq!(seen.len() as u32, n * (n - 1) / 2);
        assert!(seen.iter().all(|&i| i < n * (n - 1) / 2));
    }

    #[test]
    fn route_length_equals_distance_everywhere() {
        let d = df(4, 3);
        let mut out = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                out.clear();
                d.route_links(a, b, LinkMode::Undirected, &mut out);
                assert_eq!(out.len() as u32, d.distance(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn opposite_routes_share_undirected_links() {
        // Minimal dragonfly routing is symmetric: the reverse route
        // visits the same gateways, so undirected ids must match.
        let d = df(5, 4);
        let mut ab = Vec::new();
        let mut ba = Vec::new();
        for a in 0..20u32 {
            for b in 0..20u32 {
                ab.clear();
                ba.clear();
                d.route_links(a, b, LinkMode::Undirected, &mut ab);
                d.route_links(b, a, LinkMode::Undirected, &mut ba);
                ba.reverse();
                assert_eq!(ab, ba, "{a} <-> {b}");
            }
        }
    }

    #[test]
    fn directed_channels_distinguish_directions() {
        let d = df(3, 2);
        let mut ab = Vec::new();
        let mut ba = Vec::new();
        d.route_links(0, 1, LinkMode::Directed, &mut ab);
        d.route_links(1, 0, LinkMode::Directed, &mut ba);
        assert_eq!(ab.len(), 1);
        assert_ne!(ab[0], ba[0]);
        assert_eq!(ab[0] / 2, ba[0] / 2);
    }

    #[test]
    fn routes_are_contiguous_in_the_router_graph() {
        let d = df(4, 3);
        let mut adj = std::collections::HashSet::new();
        d.for_each_link(|_, u, v, _| {
            adj.insert((u, v));
            adj.insert((v, u));
        });
        let mut routers = Vec::new();
        for a in 0..12u32 {
            for b in 0..12u32 {
                if a == b {
                    continue;
                }
                routers.clear();
                d.route_routers(a, b, &mut routers);
                assert_eq!(routers[0], a);
                assert_eq!(*routers.last().unwrap(), b);
                for w in routers.windows(2) {
                    assert!(adj.contains(&(w[0], w[1])), "{a}->{b}: hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn gateways_spread_over_group_routers() {
        let d = df(9, 4);
        // Group 0 has 8 peers spread round-robin over 4 routers.
        let mut counts = [0u32; 4];
        for peer in 1..9u32 {
            counts[d.gateway(0, peer) as usize] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn supercomputer_preset_builds() {
        let m = DragonflyConfig::supercomputer().build();
        assert_eq!(m.num_nodes(), 9 * 16 * 4);
        assert_eq!(m.diameter(), 3);
    }
}
