//! Dense terminal-router hop-distance table (the *distance oracle*).
//!
//! The refinement engines of `umpa-core` evaluate thousands of swap
//! candidates per run, and every candidate costs a handful of hop
//! distances. The analytic [`Topology::distance`] is O(ndims) but pays
//! an enum dispatch plus per-dimension modular arithmetic on every
//! call; the follow-up literature (Deveci et al., TPDS 2018; Schulz &
//! Woydt 2025) precomputes distances instead. A [`DistanceOracle`] is
//! that precomputation: a row-major `n × n` table of `u16` hop counts
//! over the **terminal** routers, built once per machine, so a hot loop
//! hoists one row and then does a single bounds-checked index per
//! distance.
//!
//! The table stores the length of the *static route* between terminal
//! routers — exactly what [`Topology::distance`] returns — not the
//! router-graph shortest path. The two differ on purpose: dragonfly's
//! minimal local–global–local routing can be one hop longer than some
//! graph geodesic through a foreign gateway, and WH must count the hops
//! traffic actually takes.
//!
//! Memory cost is `2·n²` bytes for `n` terminal routers (Hopper's
//! 17×8×24 torus: 3264² × 2 B ≈ 21 MiB). Machines above a configurable
//! router-count threshold ([`crate::machine::DEFAULT_ORACLE_MAX_ROUTERS`])
//! skip the table and fall back to the analytic path — the `Machine`
//! accessors hide the difference.

use crate::topology::Topology;

/// Dense `n × n` hop table over terminal routers `0..n`.
#[derive(Clone, Debug)]
pub struct DistanceOracle {
    /// Number of terminal routers (table is `n × n`).
    n: usize,
    /// Row-major hop counts; `table[a * n + b] = distance(a, b)`.
    table: Vec<u16>,
}

impl DistanceOracle {
    /// Builds the table from the topology's static-route distances, or
    /// returns `None` when the machine is too large (`n > max_routers`)
    /// or a distance overflows `u16` (never for realistic diameters).
    ///
    /// Rows fill through [`Topology::fill_distance_row`] — per-source
    /// sweeps instead of `n²` independent per-pair calls, which cut the
    /// Hopper-torus build from ~365 ms to tens of ms (`oracle_build_ns`
    /// in `BENCH_mapping.json`) while producing the identical table.
    pub fn build(topo: &Topology, max_routers: usize) -> Option<Self> {
        let n = topo.num_terminal_routers();
        if n == 0 || n > max_routers {
            return None;
        }
        if topo.diameter() > u32::from(u16::MAX) {
            return None;
        }
        let mut table = vec![0u16; n * n];
        for a in 0..n as u32 {
            topo.fill_distance_row(a, &mut table[a as usize * n..(a as usize + 1) * n]);
        }
        Some(Self { n, table })
    }

    /// Wraps a precomputed row-major `n × n` table — the constructor
    /// the failure-masked rebuild uses (its BFS distances have no
    /// analytic source to re-derive them from, and `u16::MAX` entries
    /// mark unreachable pairs, so the `build` guards don't apply).
    pub(crate) fn from_table(n: usize, table: Vec<u16>) -> Self {
        debug_assert_eq!(table.len(), n * n);
        Self { n, table }
    }

    /// Number of terminal routers covered.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// Table size in bytes (the `2·n²` memory-cost formula).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u16>()
    }

    /// Hop distance between terminal routers `a` and `b`.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        u32::from(self.table[a as usize * self.n + b as usize])
    }

    /// Row of hop distances out of terminal router `r`: `row(r)[b]` is
    /// the distance `r → b`. Hot loops hoist this once per pivot and
    /// index it per neighbor.
    #[inline]
    pub fn row(&self, r: u32) -> &[u16] {
        &self.table[r as usize * self.n..(r as usize + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::DragonflyConfig;
    use crate::fat_tree::FatTreeConfig;
    use crate::machine::MachineConfig;

    #[test]
    fn table_matches_analytic_distance_on_a_torus() {
        let m = MachineConfig::small(&[4, 3, 2], 1, 1).build();
        let topo = m.topology();
        let o = DistanceOracle::build(topo, 4096).unwrap();
        assert_eq!(o.num_routers(), 24);
        for a in 0..24u32 {
            let row = o.row(a);
            for b in 0..24u32 {
                assert_eq!(u32::from(row[b as usize]), topo.distance(a, b));
                assert_eq!(o.distance(a, b), topo.distance(a, b));
            }
        }
    }

    #[test]
    fn threshold_disables_the_table() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        assert!(DistanceOracle::build(m.topology(), 15).is_none());
        assert!(DistanceOracle::build(m.topology(), 16).is_some());
    }

    #[test]
    fn covers_only_terminal_routers_on_fat_tree() {
        let m = FatTreeConfig::small(4, 2, 1).build();
        let o = DistanceOracle::build(m.topology(), 4096).unwrap();
        // k=4: 8 edge switches are terminal; agg/core are not tabled.
        assert_eq!(o.num_routers(), 8);
        assert_eq!(o.size_bytes(), 8 * 8 * 2);
        assert_eq!(o.distance(0, 1), 2, "same-pod edge switches");
        assert_eq!(o.distance(0, 2), 4, "cross-pod edge switches");
    }

    #[test]
    fn dragonfly_route_lengths_are_tabled() {
        let m = DragonflyConfig::small(4, 3, 2).build();
        let topo = m.topology();
        let o = DistanceOracle::build(topo, 4096).unwrap();
        for a in 0..12u32 {
            for b in 0..12u32 {
                assert_eq!(o.distance(a, b), topo.distance(a, b));
            }
        }
    }
}
