//! Algorithm 1: Greedy Mapping (the paper's `UG` variant).
//!
//! Greedy graph growing over the task graph, placing each task on the
//! allocated node that minimizes its weighted-hop increase:
//!
//! 1. the task with **maximum send+receive volume** (`t_MSRV`) is mapped
//!    first;
//! 2. while fewer than `NBFS` far seeds have been placed, the next task
//!    is the one *farthest from the mapped set* (multi-source BFS on
//!    `Gt`, ties broken toward higher communication volume) and it goes
//!    to a far free node (multi-source BFS on `Gm` from the non-empty
//!    nodes, farthest feasible level);
//! 3. afterwards the next task is popped from the `conn` max-heap — the
//!    unmapped task with the largest total connectivity to mapped
//!    tasks, maintained incrementally per placement — and `GETBESTNODE`
//!    places it: a BFS over the router graph from the nodes of its
//!    mapped neighbors stops at the **first level containing a feasible
//!    node** (the early-exit), and among that level's candidates the
//!    one with minimum WH increase wins.
//!
//! Per the paper, the algorithm is run for `NBFS ∈ {0, 1}` and the
//! mapping with the lower WH is returned. `NBFS` here counts far seeds
//! placed *in addition to* `t_MSRV` (see DESIGN.md — the paper's
//! pseudocode makes 0 and 1 coincide if `t_MSRV` counts as mapped).
//!
//! Candidate scoring runs on the shared batch gain kernel of
//! [`crate::gain`] (DESIGN.md §17): one pass over the pivot's edges
//! gathers its mapped neighbors (the kernel's panel), its unmapped
//! neighbors (the `conn` updates the following placement commit
//! replays) and the BFS seed routers; a compact slot×slot distance
//! panel built once per call answers every hop lookup from a few
//! cache-resident KB instead of the full oracle table; and per-task /
//! per-slot router tables remove every hot-loop division. Since the
//! winning candidate level is level 0 for most placements once the
//! mapping has grown, the BFS itself is skipped whenever a seed router
//! is feasible. Every shortcut is decision-identical to the frozen
//! [`crate::greedy_reference`] engine — `tests/greedy_differential.rs`
//! asserts bit-identical mappings and WH across backends, oracle
//! on/off, and warm/cold scratch.
//!
//! All per-run buffers live in a reusable [`GreedyScratch`]; a warm
//! scratch makes repeated runs allocation-free (DESIGN.md §8). With the
//! `parallel` feature, [`greedy_map`] evaluates its `NBFS` candidates on
//! worker threads and reduces deterministically (lowest WH, ties toward
//! the lower candidate index — identical to the sequential scan).

use umpa_ds::{EpochMarker, IndexedMaxHeap};
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::gain::{fill_place_costs, HopDist};
use crate::mapping::fits;

/// Configuration of the greedy mapper.
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// The `NBFS` values to try; the lowest-WH mapping wins.
    pub nbfs_candidates: Vec<u32>,
    /// Heterogeneity pre-pass (Section III-A: "when the number of
    /// processors in the nodes are not uniform, we map the groups of
    /// tasks with different weights at the beginning … since their
    /// nodes are almost decided due to their uniqueness"): tasks
    /// heavier than this fraction of the largest node capacity are
    /// placed first, in descending weight order, so they still fit.
    pub heavy_first_fraction: f64,
}

// tidy-cold-region: config construction happens once per run, before the mapping loop
impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            nbfs_candidates: vec![0, 1],
            heavy_first_fraction: 0.5,
        }
    }
}
// tidy-end-cold-region

/// Counters from the most recent [`greedy_map_into`] /
/// [`greedy_map_with`] call, accumulated across its `NBFS` candidate
/// runs: how much candidate scoring the batch gain kernel did, and how
/// much of its distance traffic the compact slot panel absorbed.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyRunStats {
    /// Candidate placements scored by the batch gain kernel.
    pub probes: u64,
    /// Distance lookups answered from cache-resident panel rows
    /// (candidate scoring plus the final WH evaluation). Zero when the
    /// allocation exceeds the panel size cap and the per-lookup
    /// fallback ran instead.
    pub row_hits: u64,
}

/// Reusable buffers for one greedy run — BFS workspaces, the `conn`
/// heap, capacity vectors, the gain-kernel panels and the
/// candidate/best mapping buffers. All sized lazily on first use and
/// reused (allocation-free once warm).
#[derive(Default)]
pub struct GreedyScratch {
    /// Working mapping of the current candidate run.
    mapping: Vec<u32>,
    /// Best mapping across candidate runs.
    best: Vec<u32>,
    free: Vec<f64>,
    nonempty_slots: Vec<u32>,
    slot_nonempty: Vec<bool>,
    conn: IndexedMaxHeap,
    bfs_tasks: Bfs,
    bfs_routers: Bfs,
    sources: Vec<u32>,
    heavy: Vec<u32>,
    /// Slot of each mapped task (`u32::MAX` = unmapped); doubles as
    /// the mapped test in the hot loops.
    task_slot: Vec<u32>,
    /// Router of each mapped task — one table store per placement
    /// commit instead of one division per neighbor visit.
    task_router: Vec<u32>,
    /// Router of each allocated slot, built once per call.
    slot_router: Vec<u32>,
    /// Compact slot×slot hop panel ([`HopDist::build_slot_panel`]).
    panel: Vec<u16>,
    /// Panel stride (= slot count); 0 = per-lookup fallback mode.
    panel_stride: usize,
    /// Mapped-neighbor positions (slots in panel mode, routers in
    /// fallback mode) and weights, gathered once per placement.
    nb_keys: Vec<u32>,
    nb_ws: Vec<f64>,
    /// Unmapped neighbors of the pivot, gathered in the same pass; the
    /// placement commit feeds them to the `conn` heap without a second
    /// edge scan.
    unm_ids: Vec<u32>,
    unm_ws: Vec<f64>,
    /// Candidate positions/nodes/slots/costs of the current placement.
    cand_keys: Vec<u32>,
    cand_nodes: Vec<u32>,
    cand_slots: Vec<u32>,
    cand_costs: Vec<f64>,
    /// Per-call router marks (source dedup, feasible-router counting).
    router_mark: EpochMarker,
    /// Feasible-router marks for the BFS fallback: infeasible pops
    /// cost one epoch check instead of a node scan.
    feas_mark: EpochMarker,
    stats: GreedyRunStats,
}

impl GreedyScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kernel counters from the most recent mapping call.
    pub fn stats(&self) -> GreedyRunStats {
        self.stats
    }
}

/// Weighted hops of a mapping. Distances come from the machine's
/// [`DistanceOracle`](umpa_topology::DistanceOracle) table when built
/// and from the analytic backend otherwise (via [`HopDist`], which
/// hoists the oracle check out of the per-message loop); the sums are
/// bit-identical because hop counts are exact integers either way.
pub fn weighted_hops(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> f64 {
    let dist = HopDist::new(machine);
    tg.messages()
        .map(|(s, t, c)| f64::from(dist.node_hops(mapping[s as usize], mapping[t as usize])) * c)
        .sum()
}

/// Total hops of a mapping (unit message costs).
pub fn total_hops(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> f64 {
    tg.messages()
        .map(|(s, t, _)| f64::from(machine.hops(mapping[s as usize], mapping[t as usize])))
        .sum()
}

/// Runs Algorithm 1 for every `NBFS` in the config and returns the
/// mapping with the lowest WH.
///
/// With the `parallel` feature and more than one candidate, the runs
/// execute on worker threads; the reduction (lowest WH, ties toward the
/// lower candidate index) makes the result bit-identical to the
/// sequential path.
// tidy-cold-region: convenience entry point that owns its scratch and result;
// the allocation-free path is `greedy_map_into` with a warm scratch
pub fn greedy_map(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
) -> Vec<u32> {
    // tidy-allow: panic-freedom (API precondition on entry: an empty candidate list has no defined result)
    assert!(!cfg.nbfs_candidates.is_empty());
    #[cfg(feature = "parallel")]
    if cfg.nbfs_candidates.len() > 1 {
        use rayon::prelude::*;
        let runs: Vec<(f64, Vec<u32>)> = cfg
            .nbfs_candidates
            .par_iter()
            .map(|&nbfs| {
                let mut scratch = GreedyScratch::new();
                prepare(machine, alloc, &mut scratch);
                let wh = run_greedy(
                    tg,
                    machine,
                    alloc,
                    nbfs,
                    cfg.heavy_first_fraction,
                    &mut scratch,
                );
                (wh, std::mem::take(&mut scratch.mapping))
            })
            .collect();
        // Deterministic reduction: strict `<` over the candidate order ==
        // "lowest WH wins, ties toward the lower index".
        let mut best = 0;
        for i in 1..runs.len() {
            if runs[i].0 < runs[best].0 {
                best = i;
            }
        }
        // tidy-allow: panic-freedom (unreachable: `best` indexes the non-empty `runs` the scan above produced)
        return runs.into_iter().nth(best).unwrap().1;
    }
    let mut scratch = GreedyScratch::new();
    let mut out = Vec::new();
    greedy_map_into(tg, machine, alloc, cfg, &mut scratch, &mut out);
    out
}
// tidy-end-cold-region

/// Scratch-reusing form of [`greedy_map`]: writes the winning mapping
/// into `out` and returns its WH. Allocation-free once `scratch` and
/// `out` are warm. Always evaluates candidates sequentially (the
/// parallel path needs one scratch per worker — see
/// [`map_many`](crate::pipeline::map_many)).
pub fn greedy_map_into(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
    scratch: &mut GreedyScratch,
    out: &mut Vec<u32>,
) -> f64 {
    // tidy-allow: panic-freedom (API precondition on entry: an empty candidate list has no defined result)
    assert!(!cfg.nbfs_candidates.is_empty());
    prepare(machine, alloc, scratch);
    let mut best_wh = f64::INFINITY;
    for &nbfs in &cfg.nbfs_candidates {
        let wh = run_greedy(tg, machine, alloc, nbfs, cfg.heavy_first_fraction, scratch);
        if wh < best_wh {
            best_wh = wh;
            std::mem::swap(&mut scratch.best, &mut scratch.mapping);
        }
    }
    out.clear();
    out.extend_from_slice(&scratch.best);
    best_wh
}

/// Runs Algorithm 1 with a fixed number of far seeds (default
/// heterogeneity pre-pass threshold).
pub fn greedy_map_with(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    nbfs: u32,
) -> Vec<u32> {
    let mut scratch = GreedyScratch::new();
    prepare(machine, alloc, &mut scratch);
    run_greedy(tg, machine, alloc, nbfs, 0.5, &mut scratch);
    std::mem::take(&mut scratch.mapping)
}

/// Per-call setup shared by every entry point: reset the kernel
/// counters, (re)build the compact slot panel and the slot→router
/// table for this allocation. `run_greedy` assumes these match `alloc`.
fn prepare(machine: &Machine, alloc: &Allocation, scratch: &mut GreedyScratch) {
    scratch.stats = GreedyRunStats::default();
    scratch.panel_stride = HopDist::new(machine).build_slot_panel(alloc, &mut scratch.panel);
    scratch.slot_router.clear();
    scratch
        .slot_router
        .extend((0..alloc.num_nodes()).map(|s| machine.router_of(alloc.node(s))));
}

/// One full greedy run; leaves the mapping in `scratch.mapping` and
/// returns its WH.
fn run_greedy(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    nbfs: u32,
    heavy_first_fraction: f64,
    scratch: &mut GreedyScratch,
) -> f64 {
    let n = tg.num_tasks();
    let mut state = State::new(tg, machine, alloc, scratch);
    if n == 0 {
        return 0.0;
    }
    let total_weight: f64 = (0..n as u32).map(|t| tg.task_weight(t)).sum();
    // tidy-allow: panic-freedom (API precondition checked on entry, before any placement: an undersized allocation cannot host a valid mapping)
    assert!(
        fits(f64::from(alloc.total_procs()), total_weight),
        "allocation too small: task weight {total_weight} > {} procs",
        alloc.total_procs()
    );
    // Heterogeneity pre-pass (Section III-A): with non-uniform node
    // capacities, heavy tasks fit fewer and fewer nodes as the mapping
    // fills up, so they are placed first in descending weight order.
    let caps = alloc.procs_all();
    let non_uniform = caps.windows(2).any(|w| w[0] != w[1]);
    if non_uniform {
        // tidy-allow: panic-freedom (unreachable: the weight invariant above guarantees at least one slot)
        let max_cap = f64::from(*caps.iter().max().unwrap());
        let threshold = heavy_first_fraction * max_cap;
        state.heavy.clear();
        state
            .heavy
            .extend((0..n as u32).filter(|&t| tg.task_weight(t) > threshold));
        // Unstable sort: in-place (keeps the warm-scratch path
        // allocation-free); the id tiebreak makes the order total, so
        // the result is identical to a stable sort.
        state.heavy.sort_unstable_by(|&a, &b| {
            tg.task_weight(b)
                .total_cmp(&tg.task_weight(a))
                .then(a.cmp(&b))
        });
        for i in 0..state.heavy.len() {
            let t = state.heavy[i];
            let (node, slot) = state.best_node_for(t);
            state.place_prepared(t, node, slot);
        }
    }
    // Map t_MSRV to an "arbitrary" node: the first allocated slot of
    // maximum capacity that still fits it (deterministic — `Reverse`
    // makes the earlier slot win capacity ties).
    // tidy-allow: panic-freedom (unreachable: the n == 0 early return above guarantees a nonempty graph)
    let t0 = tg.task_with_max_srv().expect("nonempty graph");
    if !state.is_mapped(t0) {
        let w0 = tg.task_weight(t0);
        let first_slot = (0..alloc.num_nodes())
            .filter(|&s| fits(state.free[s], w0))
            .max_by_key(|&s| (alloc.procs(s), std::cmp::Reverse(s)))
            // tidy-allow: panic-freedom (unreachable: the entry weight check proved total capacity covers all tasks)
            .expect("allocation has room for t0 by the weight invariant");
        state.place_fresh(t0, alloc.node(first_slot), first_slot as u32);
    }
    let mut seeds_placed = 0u32;
    while state.mapped_count < n {
        let tbest = if seeds_placed < nbfs {
            seeds_placed += 1;
            state.farthest_unmapped_task()
        } else {
            state.most_connected_task()
        };
        let (node, slot) = state.best_node_for(tbest);
        state.place_prepared(tbest, node, slot);
    }
    state.final_wh()
}

/// Working state of one greedy run, borrowing all buffers from a
/// [`GreedyScratch`].
struct State<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    dist: HopDist<'a>,
    mapping: &'a mut Vec<u32>,
    task_slot: &'a mut Vec<u32>,
    task_router: &'a mut Vec<u32>,
    slot_router: &'a [u32],
    free: &'a mut Vec<f64>,
    nonempty_slots: &'a mut Vec<u32>,
    slot_nonempty: &'a mut Vec<bool>,
    conn: &'a mut IndexedMaxHeap,
    bfs_tasks: &'a mut Bfs,
    bfs_routers: &'a mut Bfs,
    sources: &'a mut Vec<u32>,
    heavy: &'a mut Vec<u32>,
    nb_keys: &'a mut Vec<u32>,
    nb_ws: &'a mut Vec<f64>,
    unm_ids: &'a mut Vec<u32>,
    unm_ws: &'a mut Vec<f64>,
    cand_keys: &'a mut Vec<u32>,
    cand_nodes: &'a mut Vec<u32>,
    cand_slots: &'a mut Vec<u32>,
    cand_costs: &'a mut Vec<f64>,
    router_mark: &'a mut EpochMarker,
    feas_mark: &'a mut EpochMarker,
    panel: &'a [u16],
    panel_stride: usize,
    stats: &'a mut GreedyRunStats,
    mapped_count: usize,
}

impl<'a> State<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        scratch: &'a mut GreedyScratch,
    ) -> Self {
        let GreedyScratch {
            mapping,
            best: _,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
            task_slot,
            task_router,
            slot_router,
            panel,
            panel_stride,
            nb_keys,
            nb_ws,
            unm_ids,
            unm_ws,
            cand_keys,
            cand_nodes,
            cand_slots,
            cand_costs,
            router_mark,
            feas_mark,
            stats,
        } = scratch;
        let n_tasks = tg.num_tasks();
        let n_slots = alloc.num_nodes();
        mapping.clear();
        mapping.resize(n_tasks, u32::MAX);
        task_slot.clear();
        task_slot.resize(n_tasks, u32::MAX);
        task_router.clear();
        task_router.resize(n_tasks, u32::MAX);
        free.clear();
        free.extend((0..n_slots).map(|s| f64::from(alloc.procs(s))));
        nonempty_slots.clear();
        nonempty_slots.reserve(n_slots);
        slot_nonempty.clear();
        slot_nonempty.resize(n_slots, false);
        conn.reset(n_tasks);
        bfs_tasks.ensure(n_tasks);
        bfs_routers.ensure(machine.num_routers());
        router_mark.ensure_len(machine.num_routers());
        feas_mark.ensure_len(machine.num_routers());
        sources.clear();
        sources.reserve(n_tasks.max(machine.num_routers()));
        Self {
            tg,
            machine,
            alloc,
            dist: HopDist::new(machine),
            mapping,
            task_slot,
            task_router,
            slot_router,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
            nb_keys,
            nb_ws,
            unm_ids,
            unm_ws,
            cand_keys,
            cand_nodes,
            cand_slots,
            cand_costs,
            router_mark,
            feas_mark,
            panel: &panel[..],
            panel_stride: *panel_stride,
            stats,
            mapped_count: 0,
        }
    }

    #[inline]
    fn is_mapped(&self, t: u32) -> bool {
        self.mapping[t as usize] != u32::MAX
    }

    /// The commit common to both placement forms: the mapping and the
    /// position tables, capacity, and the non-empty list.
    #[inline]
    fn commit(&mut self, t: u32, node: u32, slot: u32) {
        debug_assert!(!self.is_mapped(t));
        debug_assert_eq!(self.alloc.slot_of(node), Some(slot));
        debug_assert!(fits(self.free[slot as usize], self.tg.task_weight(t)));
        self.mapping[t as usize] = node;
        self.task_slot[t as usize] = slot;
        self.task_router[t as usize] = self.slot_router[slot as usize];
        self.free[slot as usize] -= self.tg.task_weight(t);
        if !self.slot_nonempty[slot as usize] {
            self.slot_nonempty[slot as usize] = true;
            self.nonempty_slots.push(slot);
        }
        self.mapped_count += 1;
    }

    /// Commits `t` to `node` right after [`Self::best_node_for`] picked
    /// it: the `conn` heap updates (the paper's `conn.update` loop)
    /// replay the unmapped-neighbor list the candidate gather already
    /// collected — same tasks, same order, no second edge scan.
    fn place_prepared(&mut self, t: u32, node: u32, slot: u32) {
        self.commit(t, node, slot);
        self.conn.remove(t);
        for i in 0..self.unm_ids.len() {
            self.conn.add_to_key(self.unm_ids[i], self.unm_ws[i]);
        }
    }

    /// Commits `t` to `node` without a preceding candidate gather (the
    /// `t_MSRV` seed): scans the edges for the heap updates.
    fn place_fresh(&mut self, t: u32, node: u32, slot: u32) {
        self.commit(t, node, slot);
        self.conn.remove(t);
        for (n, c) in self.tg.symmetric().edges(t) {
            if !self.is_mapped(n) {
                self.conn.add_to_key(n, c);
            }
        }
    }

    /// The unmapped task with maximum connectivity to the mapped set;
    /// falls back to the max-SRV unmapped task when the heap is empty
    /// (disconnected task graphs).
    fn most_connected_task(&mut self) -> u32 {
        if let Some((t, _)) = self.conn.pop() {
            return t;
        }
        self.max_srv_unmapped()
            // tidy-allow: panic-freedom (unreachable: the caller loops while mapped_count < n, so an unmapped task exists)
            .expect("loop invariant: an unmapped task exists")
    }

    fn max_srv_unmapped(&self) -> Option<u32> {
        (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t))
            .max_by(|&a, &b| self.tg.srv(a).total_cmp(&self.tg.srv(b)).then(b.cmp(&a)))
    }

    /// Farthest unmapped task from the mapped set via multi-source BFS
    /// on `Gt` (mapped tasks at level 0); ties favor higher SRV. Tasks
    /// in unreached components are "infinitely far": the max-SRV one of
    /// those wins outright (the paper's disconnected rule).
    fn farthest_unmapped_task(&mut self) -> u32 {
        self.sources.clear();
        for t in 0..self.tg.num_tasks() as u32 {
            if self.mapping[t as usize] != u32::MAX {
                self.sources.push(t);
            }
        }
        self.bfs_tasks.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32)> = None; // (level, task)
        while let Some(ev) = self.bfs_tasks.next(self.tg.symmetric()) {
            if self.is_mapped(ev.vertex) {
                continue;
            }
            let better = match best {
                None => true,
                Some((lvl, t)) => {
                    ev.level > lvl
                        || (ev.level == lvl
                            && self
                                .tg
                                .srv(ev.vertex)
                                .total_cmp(&self.tg.srv(t))
                                .then(t.cmp(&ev.vertex))
                                .is_gt())
                }
            };
            if better {
                best = Some((ev.level, ev.vertex));
            }
        }
        // Unreached (disconnected) tasks take precedence.
        let unreached = (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t) && !self.bfs_tasks.was_visited(t))
            .max_by(|&a, &b| self.tg.srv(a).total_cmp(&self.tg.srv(b)).then(b.cmp(&a)));
        unreached
            .or(best.map(|(_, t)| t))
            // tidy-allow: panic-freedom (unreachable: every unmapped task is either BFS-reached or in the unreached scan)
            .expect("an unmapped task must exist")
    }

    /// `GETBESTNODE` of Algorithm 1, on the batch gain kernel. Returns
    /// the chosen `(node, slot)`.
    fn best_node_for(&mut self, t: u32) -> (u32, u32) {
        let w = self.tg.task_weight(t);
        // One pass over the pivot's edges gathers the BFS seed routers
        // and the unmapped neighbors the commit will feed to the
        // `conn` heap. The kernel's neighbor keys/weights are gathered
        // lazily in [`Self::pick_best_candidate`]: with a mostly-full
        // allocation the typical placement has exactly one candidate,
        // whose cost is never needed.
        self.sources.clear();
        self.unm_ids.clear();
        self.unm_ws.clear();
        for (n, c) in self.tg.symmetric().edges(t) {
            if self.task_slot[n as usize] == u32::MAX {
                // A self-loop is skipped in both lists: the reference
                // sees `t` unmapped at gather time and mapped by heap
                // update time.
                if n != t {
                    self.unm_ids.push(n);
                    self.unm_ws.push(c);
                }
                continue;
            }
            self.sources.push(self.task_router[n as usize]);
        }
        if self.sources.is_empty() {
            return self.farthest_free_node(w);
        }
        // Level-0 fast path: the BFS would pop the deduped sources
        // first, in insertion order, and stop at level 0 if any hosts a
        // feasible node — the common case once the mapping has grown.
        // Scan them directly and skip the traversal machinery.
        self.cand_keys.clear();
        self.cand_nodes.clear();
        self.cand_slots.clear();
        self.router_mark.reset();
        for i in 0..self.sources.len() {
            let r = self.sources[i];
            if self.router_mark.mark(r as usize) {
                continue; // duplicate source; BFS keeps the first too
            }
            self.push_candidate(r, w);
        }
        if self.cand_keys.is_empty() {
            // Full early-exiting BFS. Level-0 pops rescan the (known
            // infeasible) sources; once the hit level is found, the
            // capped stepper stops expanding — its children would sit
            // past the hit level and never be consumed. Feasible
            // routers are pre-marked from the (small) slot list, so an
            // infeasible pop costs one epoch check instead of a node
            // scan — the traversal crosses many empty routers when the
            // far-seeded front grows away from the main one.
            self.feas_mark.reset();
            for s in 0..self.alloc.num_nodes() {
                if fits(self.free[s], w) {
                    self.feas_mark.mark(self.slot_router[s] as usize);
                }
            }
            self.bfs_routers.start(self.sources.iter().copied());
            let mut hit_level: Option<u32> = None;
            loop {
                let ev = match hit_level {
                    None => self.bfs_routers.next(self.machine.router_graph()),
                    Some(l) => self.bfs_routers.next_capped(self.machine.router_graph(), l),
                };
                let Some(ev) = ev else { break };
                if let Some(l) = hit_level {
                    if ev.level > l {
                        break;
                    }
                }
                if self.feas_mark.is_marked(ev.vertex as usize) {
                    self.push_candidate(ev.vertex, w);
                    hit_level = Some(ev.level);
                }
            }
        }
        self.pick_best_candidate(t)
    }

    /// Appends router `r`'s candidate (its first feasible node) to the
    /// batch, if it has one. One candidate per router is exact: every
    /// node of a router has the bitwise-same placement cost (distance
    /// depends only on the router), and the strict-`<` selection keeps
    /// the first of equals — so the later feasible nodes the reference
    /// engine also evaluates can never win.
    #[inline]
    fn push_candidate(&mut self, r: u32, w: f64) {
        for node in self.machine.nodes_of_router(r) {
            let Some(slot) = self.alloc.slot_of(node) else {
                continue;
            };
            if !fits(self.free[slot as usize], w) {
                continue;
            }
            self.cand_keys
                .push(if self.panel_stride > 0 { slot } else { r });
            self.cand_nodes.push(node);
            self.cand_slots.push(slot);
            return;
        }
    }

    /// Scores the gathered candidate batch with the shared kernel and
    /// returns the minimum-cost `(node, slot)` (first of equals,
    /// matching the reference's strict-`<` scan in BFS order). A
    /// single-candidate batch short-circuits: its cost cannot affect
    /// the argmin, so the neighbor panel is never even gathered.
    fn pick_best_candidate(&mut self, t: u32) -> (u32, u32) {
        debug_assert!(!self.cand_keys.is_empty());
        self.stats.probes += self.cand_keys.len() as u64;
        if self.cand_keys.len() == 1 {
            return (self.cand_nodes[0], self.cand_slots[0]);
        }
        // Lazily gather the kernel's neighbor panel: position (slot in
        // panel mode, router in fallback mode) and weight per mapped
        // neighbor of `t`, in adjacency order — the order the cost
        // terms accumulate in.
        let panel_mode = self.panel_stride > 0;
        self.nb_keys.clear();
        self.nb_ws.clear();
        for (n, c) in self.tg.symmetric().edges(t) {
            let slot = self.task_slot[n as usize];
            if slot == u32::MAX {
                continue;
            }
            self.nb_keys.push(if panel_mode {
                slot
            } else {
                self.task_router[n as usize]
            });
            self.nb_ws.push(c);
        }
        if panel_mode {
            fill_place_costs(
                self.panel,
                self.panel_stride,
                self.nb_keys,
                self.nb_ws,
                self.cand_keys,
                self.cand_costs,
            );
            self.stats.row_hits += (self.cand_keys.len() * self.nb_keys.len()) as u64;
        } else {
            self.dist.fill_place_costs_hops(
                self.nb_keys,
                self.nb_ws,
                self.cand_keys,
                self.cand_costs,
            );
        }
        let mut best = 0;
        for i in 1..self.cand_costs.len() {
            if self.cand_costs[i] < self.cand_costs[best] {
                best = i;
            }
        }
        (self.cand_nodes[best], self.cand_slots[best])
    }

    /// For tasks with no mapped neighbor: one of the farthest free
    /// allocated nodes from the non-empty set (multi-source BFS on the
    /// router graph). The first feasible node of the deepest feasible
    /// level is returned.
    fn farthest_free_node(&mut self, w: f64) -> (u32, u32) {
        if self.nonempty_slots.is_empty() {
            // No placement context at all: first feasible slot.
            let slot = (0..self.alloc.num_nodes())
                .find(|&s| fits(self.free[s], w))
                // tidy-allow: panic-freedom (unreachable: the entry weight check proved a feasible slot remains for every pivot)
                .expect("allocation has free capacity");
            return (self.alloc.node(slot), slot as u32);
        }
        // Mark the routers that still host a feasible slot, so the BFS
        // below tests feasibility with one load instead of a node scan
        // — and can stop once every feasible router has been seen:
        // later events are all infeasible and the deepest-first winner
        // is already fixed.
        self.router_mark.reset();
        let mut remaining = 0u32;
        for s in 0..self.alloc.num_nodes() {
            if fits(self.free[s], w) && !self.router_mark.mark(self.slot_router[s] as usize) {
                remaining += 1;
            }
        }
        self.sources.clear();
        for i in 0..self.nonempty_slots.len() {
            let s = self.nonempty_slots[i];
            self.sources.push(self.slot_router[s as usize]);
        }
        self.bfs_routers.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32, u32)> = None; // (level, node, slot)
        while let Some(ev) = self.bfs_routers.next(self.machine.router_graph()) {
            if !self.router_mark.is_marked(ev.vertex as usize) {
                continue;
            }
            // Keep only the first candidate of the deepest level: its
            // first feasible node (later nodes never replace it).
            if best.is_none_or(|(lvl, _, _)| ev.level > lvl) {
                let (node, slot) = self
                    .machine
                    .nodes_of_router(ev.vertex)
                    .find_map(|n| {
                        let slot = self.alloc.slot_of(n)?;
                        fits(self.free[slot as usize], w).then_some((n, slot))
                    })
                    // tidy-allow: panic-freedom (unreachable: the pre-mark pass only marks routers holding a feasible slot)
                    .expect("marked router has a feasible slot");
                best = Some((ev.level, node, slot));
            }
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
        best.map(|(_, n, s)| (n, s))
            // tidy-allow: panic-freedom (unreachable: the entry weight check proved a feasible slot remains for every pivot)
            .expect("allocation has free capacity by the weight invariant")
    }

    /// WH of the finished mapping — panel rows when available. The
    /// manual loop walks the directed CSR in the exact order
    /// `TaskGraph::messages` yields (vertices ascending, edges in CSR
    /// order) with the sender's panel row hoisted; same terms, same
    /// order, same exact integer distances as the per-lookup
    /// [`weighted_hops`], hence bit-identical.
    fn final_wh(&mut self) -> f64 {
        if self.panel_stride == 0 {
            return weighted_hops(self.tg, self.machine, self.mapping);
        }
        let stride = self.panel_stride;
        let mut wh = 0.0;
        for s in 0..self.tg.num_tasks() as u32 {
            let row = &self.panel[self.task_slot[s as usize] as usize * stride..][..stride];
            for (t, c) in self.tg.out_edges(s) {
                wh += f64::from(row[self.task_slot[t as usize] as usize]) * c;
            }
        }
        self.stats.row_hits += self.tg.num_messages() as u64;
        wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn machine() -> Machine {
        MachineConfig::small(&[4, 4], 1, 1).build()
    }

    /// A 4-task chain with one heavy hub.
    fn chain() -> TaskGraph {
        TaskGraph::from_messages(4, [(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0)], None)
    }

    #[test]
    fn produces_a_valid_one_to_one_mapping() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(4, 1));
        let tg = chain();
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        // One task per node (capacity 1): all nodes distinct.
        let mut nodes = mapping.clone();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn chain_neighbors_land_adjacent_on_contiguous_alloc() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(4));
        let tg = chain();
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        // A chain on a contiguous 4-node strip: optimal WH has every
        // neighbor pair at distance 1 => WH = 30.
        let wh = weighted_hops(&tg, &m, &mapping);
        assert!(wh <= 40.0, "greedy WH {wh} too far from optimal 30");
    }

    #[test]
    fn beats_a_reversed_random_placement_on_average() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, 3));
        // Ring of 8 tasks.
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).map(|i| (i, (i + 1) % 8, 1.0 + f64::from(i % 3))),
            None,
        );
        let greedy = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        // Adversarial placement: tasks in allocation order but shifted
        // by half the ring (pairs far apart).
        let adversarial: Vec<u32> = (0..8usize).map(|t| alloc.node((t * 5) % 8)).collect();
        let g_wh = weighted_hops(&tg, &m, &greedy);
        let a_wh = weighted_hops(&tg, &m, &adversarial);
        assert!(g_wh <= a_wh, "greedy {g_wh} vs adversarial {a_wh}");
    }

    #[test]
    fn respects_multi_task_capacity() {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(2));
        let tg = TaskGraph::from_messages(8, (0..7u32).map(|i| (i, i + 1, 1.0)), None);
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn disconnected_components_all_get_mapped() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(6));
        // Two disjoint triangles.
        let tg = TaskGraph::from_messages(
            6,
            [
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 0, 2.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
            ],
            None,
        );
        for nbfs in [0, 1, 2] {
            let mapping = greedy_map_with(&tg, &m, &alloc, nbfs);
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn far_seed_spreads_disconnected_components() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(8));
        // Two disjoint pairs; with a far seed the second pair should not
        // crowd the first.
        let tg = TaskGraph::from_messages(4, [(0, 1, 5.0), (2, 3, 5.0)], None);
        let mapping = greedy_map_with(&tg, &m, &alloc, 1);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        // Pairs themselves should be adjacent (free capacity abounds).
        assert!(m.hops(mapping[0], mapping[1]) <= 1);
        assert!(m.hops(mapping[2], mapping[3]) <= 1);
    }

    #[test]
    fn isolated_tasks_are_still_placed() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(3));
        let tg = TaskGraph::from_messages(3, [(0, 1, 1.0)], None); // task 2 isolated
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        assert_ne!(mapping[2], u32::MAX);
    }

    #[test]
    fn nbfs_variants_agree_on_validity_and_pick_lower_wh() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(6, 5));
        let tg = TaskGraph::from_messages(
            6,
            [
                (0, 1, 3.0),
                (1, 2, 1.0),
                (3, 4, 3.0),
                (4, 5, 1.0),
                (0, 3, 0.5),
            ],
            None,
        );
        let w0 = weighted_hops(&tg, &m, &greedy_map_with(&tg, &m, &alloc, 0));
        let w1 = weighted_hops(&tg, &m, &greedy_map_with(&tg, &m, &alloc, 1));
        let combined = weighted_hops(
            &tg,
            &m,
            &greedy_map(&tg, &m, &alloc, &GreedyConfig::default()),
        );
        assert!((combined - w0.min(w1)).abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let m = machine();
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
            None,
        );
        let cfg = GreedyConfig::default();
        let mut scratch = GreedyScratch::new();
        let mut out = Vec::new();
        // Different allocations back to back through one warm scratch.
        for seed in 0..6u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            greedy_map_into(&tg, &m, &alloc, &cfg, &mut scratch, &mut out);
            let fresh = greedy_map(&tg, &m, &alloc, &cfg);
            assert_eq!(out, fresh, "seed {seed}: warm scratch diverged");
        }
    }

    #[test]
    fn heterogeneous_capacities_place_heavy_tasks_first() {
        // Nodes with capacities [4, 2, 2]; tasks with weights
        // [4, 2, 2]. Without the pre-pass, placing a weight-2 task on
        // the capacity-4 node first would strand the weight-4 task.
        let m = MachineConfig::small(&[8], 1, 4).build();
        let mut alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(3));
        alloc.set_procs(vec![4, 2, 2]);
        let tg = TaskGraph::from_messages(
            3,
            [(0, 1, 1.0), (1, 2, 5.0), (2, 0, 1.0)],
            Some(vec![4.0, 2.0, 2.0]),
        );
        for nbfs in [0, 1] {
            let mapping = greedy_map_with(&tg, &m, &alloc, nbfs);
            validate_mapping(&tg, &alloc, &mapping).unwrap();
            // The weight-4 task must sit on the capacity-4 node.
            assert_eq!(mapping[0], alloc.node(0), "nbfs={nbfs}");
        }
    }

    #[test]
    fn uniform_capacities_skip_the_pre_pass() {
        // With uniform capacities the pre-pass must not fire (it would
        // degrade the greedy order): results equal the documented path.
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(4, 1));
        let tg = chain();
        let a = greedy_map_with(&tg, &m, &alloc, 0);
        let cfg = GreedyConfig {
            nbfs_candidates: vec![0],
            heavy_first_fraction: 0.0, // would catch everything if it fired
        };
        let b = greedy_map(&tg, &m, &alloc, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn t0_lands_on_the_earliest_slot_when_capacities_tie() {
        // Regression for the documented "prefer the earlier slot on
        // ties" rule: on an all-equal-capacity allocation t_MSRV must
        // land on slot 0, for any slot count and seed.
        let m = machine();
        let tg = chain();
        let t0 = tg.task_with_max_srv().unwrap();
        for seed in 0..5u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(6, seed));
            let mapping = greedy_map_with(&tg, &m, &alloc, 0);
            assert_eq!(mapping[t0 as usize], alloc.node(0), "seed {seed}");
        }
    }

    #[test]
    fn kernel_stats_are_populated_and_panel_backed_on_small_allocs() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, 3));
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).map(|i| (i, (i + 1) % 8, 1.0 + f64::from(i % 3))),
            None,
        );
        let mut scratch = GreedyScratch::new();
        let mut out = Vec::new();
        greedy_map_into(
            &tg,
            &m,
            &alloc,
            &GreedyConfig::default(),
            &mut scratch,
            &mut out,
        );
        let stats = scratch.stats();
        assert!(stats.probes > 0, "no candidates scored");
        assert!(stats.row_hits > 0, "panel should serve a small allocation");
    }

    #[test]
    #[should_panic(expected = "allocation too small")]
    fn oversubscription_panics() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(2));
        let tg = chain();
        greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
    }
}
