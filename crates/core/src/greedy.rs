//! Algorithm 1: Greedy Mapping (the paper's `UG` variant).
//!
//! Greedy graph growing over the task graph, placing each task on the
//! allocated node that minimizes its weighted-hop increase:
//!
//! 1. the task with **maximum send+receive volume** (`t_MSRV`) is mapped
//!    first;
//! 2. while fewer than `NBFS` far seeds have been placed, the next task
//!    is the one *farthest from the mapped set* (multi-source BFS on
//!    `Gt`, ties broken toward higher communication volume) and it goes
//!    to a far free node (multi-source BFS on `Gm` from the non-empty
//!    nodes, farthest feasible level);
//! 3. afterwards the next task is popped from the `conn` max-heap — the
//!    unmapped task with the largest total connectivity to mapped
//!    tasks — and `GETBESTNODE` places it: a BFS over the router graph
//!    from the nodes of its mapped neighbors stops at the **first level
//!    containing a feasible node** (the early-exit), and among that
//!    level's candidates the one with minimum WH increase wins.
//!
//! Per the paper, the algorithm is run for `NBFS ∈ {0, 1}` and the
//! mapping with the lower WH is returned. `NBFS` here counts far seeds
//! placed *in addition to* `t_MSRV` (see DESIGN.md — the paper's
//! pseudocode makes 0 and 1 coincide if `t_MSRV` counts as mapped).
//!
//! All per-run buffers live in a reusable [`GreedyScratch`]; a warm
//! scratch makes repeated runs allocation-free (DESIGN.md §8). With the
//! `parallel` feature, [`greedy_map`] evaluates its `NBFS` candidates on
//! worker threads and reduces deterministically (lowest WH, ties toward
//! the lower candidate index — identical to the sequential scan).

use umpa_ds::IndexedMaxHeap;
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::gain::HopDist;
use crate::mapping::fits;

/// Configuration of the greedy mapper.
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// The `NBFS` values to try; the lowest-WH mapping wins.
    pub nbfs_candidates: Vec<u32>,
    /// Heterogeneity pre-pass (Section III-A: "when the number of
    /// processors in the nodes are not uniform, we map the groups of
    /// tasks with different weights at the beginning … since their
    /// nodes are almost decided due to their uniqueness"): tasks
    /// heavier than this fraction of the largest node capacity are
    /// placed first, in descending weight order, so they still fit.
    pub heavy_first_fraction: f64,
}

// tidy-cold-region: config construction happens once per run, before the mapping loop
impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            nbfs_candidates: vec![0, 1],
            heavy_first_fraction: 0.5,
        }
    }
}
// tidy-end-cold-region

/// Reusable buffers for one greedy run — BFS workspaces, the `conn`
/// heap, capacity vectors and the candidate/best mapping buffers. All
/// sized lazily on first use and reused (allocation-free once warm).
#[derive(Default)]
pub struct GreedyScratch {
    /// Working mapping of the current candidate run.
    mapping: Vec<u32>,
    /// Best mapping across candidate runs.
    best: Vec<u32>,
    free: Vec<f64>,
    nonempty_slots: Vec<u32>,
    slot_nonempty: Vec<bool>,
    conn: IndexedMaxHeap,
    bfs_tasks: Bfs,
    bfs_routers: Bfs,
    sources: Vec<u32>,
    heavy: Vec<u32>,
}

impl GreedyScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Weighted hops of a mapping. Distances come from the machine's
/// [`DistanceOracle`](umpa_topology::DistanceOracle) table when built
/// and from the analytic backend otherwise (via [`HopDist`], which
/// hoists the oracle check out of the per-message loop); the sums are
/// bit-identical because hop counts are exact integers either way.
pub fn weighted_hops(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> f64 {
    let dist = HopDist::new(machine);
    tg.messages()
        .map(|(s, t, c)| f64::from(dist.node_hops(mapping[s as usize], mapping[t as usize])) * c)
        .sum()
}

/// Total hops of a mapping (unit message costs).
pub fn total_hops(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> f64 {
    tg.messages()
        .map(|(s, t, _)| f64::from(machine.hops(mapping[s as usize], mapping[t as usize])))
        .sum()
}

/// Runs Algorithm 1 for every `NBFS` in the config and returns the
/// mapping with the lowest WH.
///
/// With the `parallel` feature and more than one candidate, the runs
/// execute on worker threads; the reduction (lowest WH, ties toward the
/// lower candidate index) makes the result bit-identical to the
/// sequential path.
// tidy-cold-region: convenience entry point that owns its scratch and result;
// the allocation-free path is `greedy_map_into` with a warm scratch
pub fn greedy_map(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
) -> Vec<u32> {
    assert!(!cfg.nbfs_candidates.is_empty());
    #[cfg(feature = "parallel")]
    if cfg.nbfs_candidates.len() > 1 {
        use rayon::prelude::*;
        let runs: Vec<(f64, Vec<u32>)> = cfg
            .nbfs_candidates
            .par_iter()
            .map(|&nbfs| {
                let mut scratch = GreedyScratch::new();
                let wh = run_greedy(
                    tg,
                    machine,
                    alloc,
                    nbfs,
                    cfg.heavy_first_fraction,
                    &mut scratch,
                );
                (wh, std::mem::take(&mut scratch.mapping))
            })
            .collect();
        // Deterministic reduction: strict `<` over the candidate order ==
        // "lowest WH wins, ties toward the lower index".
        let mut best = 0;
        for i in 1..runs.len() {
            if runs[i].0 < runs[best].0 {
                best = i;
            }
        }
        return runs.into_iter().nth(best).unwrap().1;
    }
    let mut scratch = GreedyScratch::new();
    let mut out = Vec::new();
    greedy_map_into(tg, machine, alloc, cfg, &mut scratch, &mut out);
    out
}
// tidy-end-cold-region

/// Scratch-reusing form of [`greedy_map`]: writes the winning mapping
/// into `out` and returns its WH. Allocation-free once `scratch` and
/// `out` are warm. Always evaluates candidates sequentially (the
/// parallel path needs one scratch per worker — see
/// [`map_many`](crate::pipeline::map_many)).
pub fn greedy_map_into(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
    scratch: &mut GreedyScratch,
    out: &mut Vec<u32>,
) -> f64 {
    assert!(!cfg.nbfs_candidates.is_empty());
    let mut best_wh = f64::INFINITY;
    for &nbfs in &cfg.nbfs_candidates {
        let wh = run_greedy(tg, machine, alloc, nbfs, cfg.heavy_first_fraction, scratch);
        if wh < best_wh {
            best_wh = wh;
            std::mem::swap(&mut scratch.best, &mut scratch.mapping);
        }
    }
    out.clear();
    out.extend_from_slice(&scratch.best);
    best_wh
}

/// Runs Algorithm 1 with a fixed number of far seeds (default
/// heterogeneity pre-pass threshold).
pub fn greedy_map_with(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    nbfs: u32,
) -> Vec<u32> {
    let mut scratch = GreedyScratch::new();
    run_greedy(tg, machine, alloc, nbfs, 0.5, &mut scratch);
    std::mem::take(&mut scratch.mapping)
}

/// One full greedy run; leaves the mapping in `scratch.mapping` and
/// returns its WH.
fn run_greedy(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    nbfs: u32,
    heavy_first_fraction: f64,
    scratch: &mut GreedyScratch,
) -> f64 {
    let n = tg.num_tasks();
    let mut state = State::new(tg, machine, alloc, scratch);
    if n == 0 {
        return 0.0;
    }
    let total_weight: f64 = (0..n as u32).map(|t| tg.task_weight(t)).sum();
    assert!(
        fits(f64::from(alloc.total_procs()), total_weight),
        "allocation too small: task weight {total_weight} > {} procs",
        alloc.total_procs()
    );
    // Heterogeneity pre-pass (Section III-A): with non-uniform node
    // capacities, heavy tasks fit fewer and fewer nodes as the mapping
    // fills up, so they are placed first in descending weight order.
    let caps = alloc.procs_all();
    let non_uniform = caps.windows(2).any(|w| w[0] != w[1]);
    if non_uniform {
        let max_cap = f64::from(*caps.iter().max().unwrap());
        let threshold = heavy_first_fraction * max_cap;
        state.heavy.clear();
        state
            .heavy
            .extend((0..n as u32).filter(|&t| tg.task_weight(t) > threshold));
        // Unstable sort: in-place (keeps the warm-scratch path
        // allocation-free); the id tiebreak makes the order total, so
        // the result is identical to a stable sort.
        state.heavy.sort_unstable_by(|&a, &b| {
            tg.task_weight(b)
                .partial_cmp(&tg.task_weight(a))
                .unwrap()
                .then(a.cmp(&b))
        });
        for i in 0..state.heavy.len() {
            let t = state.heavy[i];
            let node = state.best_node_for(t);
            state.place(t, node);
        }
    }
    // Map t_MSRV to an "arbitrary" node: the first allocated slot of
    // maximum capacity that still fits it (deterministic).
    let t0 = tg.task_with_max_srv().expect("nonempty graph");
    if !state.is_mapped(t0) {
        let w0 = tg.task_weight(t0);
        let first_slot = (0..alloc.num_nodes())
            .filter(|&s| fits(state.free[s], w0))
            .max_by(|&a, &b| {
                alloc.procs(a).cmp(&alloc.procs(b)).then(b.cmp(&a)) // prefer the earlier slot on ties
            })
            .expect("allocation has room for t0 by the weight invariant");
        state.place(t0, alloc.node(first_slot));
    }
    let mut seeds_placed = 0u32;
    while state.mapped_count < n {
        let tbest = if seeds_placed < nbfs {
            seeds_placed += 1;
            state.farthest_unmapped_task()
        } else {
            state.most_connected_task()
        };
        let node = state.best_node_for(tbest);
        state.place(tbest, node);
    }
    weighted_hops(tg, machine, state.mapping)
}

/// Working state of one greedy run, borrowing all buffers from a
/// [`GreedyScratch`].
struct State<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    mapping: &'a mut Vec<u32>,
    free: &'a mut Vec<f64>,
    nonempty_slots: &'a mut Vec<u32>,
    slot_nonempty: &'a mut Vec<bool>,
    conn: &'a mut IndexedMaxHeap,
    bfs_tasks: &'a mut Bfs,
    bfs_routers: &'a mut Bfs,
    sources: &'a mut Vec<u32>,
    heavy: &'a mut Vec<u32>,
    mapped_count: usize,
}

impl<'a> State<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        scratch: &'a mut GreedyScratch,
    ) -> Self {
        let GreedyScratch {
            mapping,
            best: _,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
        } = scratch;
        let n_tasks = tg.num_tasks();
        let n_slots = alloc.num_nodes();
        mapping.clear();
        mapping.resize(n_tasks, u32::MAX);
        free.clear();
        free.extend((0..n_slots).map(|s| f64::from(alloc.procs(s))));
        nonempty_slots.clear();
        nonempty_slots.reserve(n_slots);
        slot_nonempty.clear();
        slot_nonempty.resize(n_slots, false);
        conn.reset(n_tasks);
        bfs_tasks.ensure(n_tasks);
        bfs_routers.ensure(machine.num_routers());
        sources.clear();
        sources.reserve(n_tasks.max(machine.num_routers()));
        Self {
            tg,
            machine,
            alloc,
            mapping,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
            mapped_count: 0,
        }
    }

    #[inline]
    fn is_mapped(&self, t: u32) -> bool {
        self.mapping[t as usize] != u32::MAX
    }

    /// Commits `t` to `node`, maintaining capacity, the non-empty list
    /// and the connectivity heap (the paper's `conn.update` loop).
    fn place(&mut self, t: u32, node: u32) {
        debug_assert!(!self.is_mapped(t));
        let slot = self.alloc.slot_of(node).expect("node not allocated") as usize;
        debug_assert!(fits(self.free[slot], self.tg.task_weight(t)));
        self.mapping[t as usize] = node;
        self.free[slot] -= self.tg.task_weight(t);
        if !self.slot_nonempty[slot] {
            self.slot_nonempty[slot] = true;
            self.nonempty_slots.push(slot as u32);
        }
        self.conn.remove(t);
        for (n, c) in self.tg.symmetric().edges(t) {
            if !self.is_mapped(n) {
                self.conn.add_to_key(n, c);
            }
        }
        self.mapped_count += 1;
    }

    /// The unmapped task with maximum connectivity to the mapped set;
    /// falls back to the max-SRV unmapped task when the heap is empty
    /// (disconnected task graphs).
    fn most_connected_task(&mut self) -> u32 {
        if let Some((t, _)) = self.conn.pop() {
            return t;
        }
        self.max_srv_unmapped()
            .expect("loop invariant: an unmapped task exists")
    }

    fn max_srv_unmapped(&self) -> Option<u32> {
        (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t))
            .max_by(|&a, &b| {
                self.tg
                    .srv(a)
                    .partial_cmp(&self.tg.srv(b))
                    .unwrap()
                    .then(b.cmp(&a))
            })
    }

    /// Farthest unmapped task from the mapped set via multi-source BFS
    /// on `Gt` (mapped tasks at level 0); ties favor higher SRV. Tasks
    /// in unreached components are "infinitely far": the max-SRV one of
    /// those wins outright (the paper's disconnected rule).
    fn farthest_unmapped_task(&mut self) -> u32 {
        self.sources.clear();
        for t in 0..self.tg.num_tasks() as u32 {
            if self.mapping[t as usize] != u32::MAX {
                self.sources.push(t);
            }
        }
        self.bfs_tasks.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32)> = None; // (level, task)
        while let Some(ev) = self.bfs_tasks.next(self.tg.symmetric()) {
            if self.is_mapped(ev.vertex) {
                continue;
            }
            let better = match best {
                None => true,
                Some((lvl, t)) => {
                    ev.level > lvl
                        || (ev.level == lvl
                            && (self.tg.srv(ev.vertex), std::cmp::Reverse(ev.vertex))
                                > (self.tg.srv(t), std::cmp::Reverse(t)))
                }
            };
            if better {
                best = Some((ev.level, ev.vertex));
            }
        }
        // Unreached (disconnected) tasks take precedence.
        let unreached = (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t) && !self.bfs_tasks.was_visited(t))
            .max_by(|&a, &b| {
                self.tg
                    .srv(a)
                    .partial_cmp(&self.tg.srv(b))
                    .unwrap()
                    .then(b.cmp(&a))
            });
        unreached
            .or(best.map(|(_, t)| t))
            .expect("an unmapped task must exist")
    }

    /// WH increase of placing `t` on `node`, given its mapped neighbors.
    fn wh_increase(&self, t: u32, node: u32) -> f64 {
        self.tg
            .symmetric()
            .edges(t)
            .filter(|&(n, _)| self.is_mapped(n))
            .map(|(n, c)| f64::from(self.machine.hops(node, self.mapping[n as usize])) * c)
            .sum()
    }

    /// `GETBESTNODE` of Algorithm 1.
    fn best_node_for(&mut self, t: u32) -> u32 {
        let w = self.tg.task_weight(t);
        let has_mapped_neighbor = self
            .tg
            .symmetric()
            .neighbors(t)
            .iter()
            .any(|&n| self.is_mapped(n));
        if !has_mapped_neighbor {
            return self.farthest_free_node(w);
        }
        // Multi-source BFS from the routers hosting t's mapped neighbors.
        self.sources.clear();
        for &n in self.tg.symmetric().neighbors(t) {
            if self.mapping[n as usize] != u32::MAX {
                self.sources
                    .push(self.machine.router_of(self.mapping[n as usize]));
            }
        }
        self.bfs_routers.start(self.sources.iter().copied());
        let mut best: Option<(f64, u32)> = None;
        let mut hit_level: Option<u32> = None;
        while let Some(ev) = self.bfs_routers.next(self.machine.router_graph()) {
            // Early exit: once a feasible level is fully consumed, stop.
            if let Some(l) = hit_level {
                if ev.level > l {
                    break;
                }
            }
            for node in self.machine.nodes_of_router(ev.vertex) {
                let Some(slot) = self.alloc.slot_of(node) else {
                    continue;
                };
                if !fits(self.free[slot as usize], w) {
                    continue;
                }
                hit_level = Some(ev.level);
                let inc = self.wh_increase(t, node);
                if best.as_ref().is_none_or(|&(b, _)| inc < b) {
                    best = Some((inc, node));
                }
            }
        }
        best.map(|(_, n)| n)
            .expect("allocation has free capacity by the weight invariant")
    }

    /// For tasks with no mapped neighbor: one of the farthest free
    /// allocated nodes from the non-empty set (multi-source BFS on the
    /// router graph). The first feasible node of the deepest feasible
    /// level is returned.
    fn farthest_free_node(&mut self, w: f64) -> u32 {
        if self.nonempty_slots.is_empty() {
            // No placement context at all: first feasible slot.
            let slot = (0..self.alloc.num_nodes())
                .find(|&s| fits(self.free[s], w))
                .expect("allocation has free capacity");
            return self.alloc.node(slot);
        }
        self.sources.clear();
        for i in 0..self.nonempty_slots.len() {
            let s = self.nonempty_slots[i];
            self.sources
                .push(self.machine.router_of(self.alloc.node(s as usize)));
        }
        self.bfs_routers.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32)> = None; // (level, node)
        while let Some(ev) = self.bfs_routers.next(self.machine.router_graph()) {
            for node in self.machine.nodes_of_router(ev.vertex) {
                let Some(slot) = self.alloc.slot_of(node) else {
                    continue;
                };
                if !fits(self.free[slot as usize], w) {
                    continue;
                }
                // Keep only the first candidate of the deepest level.
                if best.is_none_or(|(lvl, _)| ev.level > lvl) {
                    best = Some((ev.level, node));
                }
            }
        }
        best.map(|(_, n)| n)
            .expect("allocation has free capacity by the weight invariant")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn machine() -> Machine {
        MachineConfig::small(&[4, 4], 1, 1).build()
    }

    /// A 4-task chain with one heavy hub.
    fn chain() -> TaskGraph {
        TaskGraph::from_messages(4, [(0, 1, 10.0), (1, 2, 10.0), (2, 3, 10.0)], None)
    }

    #[test]
    fn produces_a_valid_one_to_one_mapping() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(4, 1));
        let tg = chain();
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        // One task per node (capacity 1): all nodes distinct.
        let mut nodes = mapping.clone();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn chain_neighbors_land_adjacent_on_contiguous_alloc() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(4));
        let tg = chain();
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        // A chain on a contiguous 4-node strip: optimal WH has every
        // neighbor pair at distance 1 => WH = 30.
        let wh = weighted_hops(&tg, &m, &mapping);
        assert!(wh <= 40.0, "greedy WH {wh} too far from optimal 30");
    }

    #[test]
    fn beats_a_reversed_random_placement_on_average() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, 3));
        // Ring of 8 tasks.
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).map(|i| (i, (i + 1) % 8, 1.0 + f64::from(i % 3))),
            None,
        );
        let greedy = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        // Adversarial placement: tasks in allocation order but shifted
        // by half the ring (pairs far apart).
        let adversarial: Vec<u32> = (0..8usize).map(|t| alloc.node((t * 5) % 8)).collect();
        let g_wh = weighted_hops(&tg, &m, &greedy);
        let a_wh = weighted_hops(&tg, &m, &adversarial);
        assert!(g_wh <= a_wh, "greedy {g_wh} vs adversarial {a_wh}");
    }

    #[test]
    fn respects_multi_task_capacity() {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(2));
        let tg = TaskGraph::from_messages(8, (0..7u32).map(|i| (i, i + 1, 1.0)), None);
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn disconnected_components_all_get_mapped() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(6));
        // Two disjoint triangles.
        let tg = TaskGraph::from_messages(
            6,
            [
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 0, 2.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
            ],
            None,
        );
        for nbfs in [0, 1, 2] {
            let mapping = greedy_map_with(&tg, &m, &alloc, nbfs);
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn far_seed_spreads_disconnected_components() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(8));
        // Two disjoint pairs; with a far seed the second pair should not
        // crowd the first.
        let tg = TaskGraph::from_messages(4, [(0, 1, 5.0), (2, 3, 5.0)], None);
        let mapping = greedy_map_with(&tg, &m, &alloc, 1);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        // Pairs themselves should be adjacent (free capacity abounds).
        assert!(m.hops(mapping[0], mapping[1]) <= 1);
        assert!(m.hops(mapping[2], mapping[3]) <= 1);
    }

    #[test]
    fn isolated_tasks_are_still_placed() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(3));
        let tg = TaskGraph::from_messages(3, [(0, 1, 1.0)], None); // task 2 isolated
        let mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        assert_ne!(mapping[2], u32::MAX);
    }

    #[test]
    fn nbfs_variants_agree_on_validity_and_pick_lower_wh() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(6, 5));
        let tg = TaskGraph::from_messages(
            6,
            [
                (0, 1, 3.0),
                (1, 2, 1.0),
                (3, 4, 3.0),
                (4, 5, 1.0),
                (0, 3, 0.5),
            ],
            None,
        );
        let w0 = weighted_hops(&tg, &m, &greedy_map_with(&tg, &m, &alloc, 0));
        let w1 = weighted_hops(&tg, &m, &greedy_map_with(&tg, &m, &alloc, 1));
        let combined = weighted_hops(
            &tg,
            &m,
            &greedy_map(&tg, &m, &alloc, &GreedyConfig::default()),
        );
        assert!((combined - w0.min(w1)).abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let m = machine();
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
            None,
        );
        let cfg = GreedyConfig::default();
        let mut scratch = GreedyScratch::new();
        let mut out = Vec::new();
        // Different allocations back to back through one warm scratch.
        for seed in 0..6u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            greedy_map_into(&tg, &m, &alloc, &cfg, &mut scratch, &mut out);
            let fresh = greedy_map(&tg, &m, &alloc, &cfg);
            assert_eq!(out, fresh, "seed {seed}: warm scratch diverged");
        }
    }

    #[test]
    fn heterogeneous_capacities_place_heavy_tasks_first() {
        // Nodes with capacities [4, 2, 2]; tasks with weights
        // [4, 2, 2]. Without the pre-pass, placing a weight-2 task on
        // the capacity-4 node first would strand the weight-4 task.
        let m = MachineConfig::small(&[8], 1, 4).build();
        let mut alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(3));
        alloc.set_procs(vec![4, 2, 2]);
        let tg = TaskGraph::from_messages(
            3,
            [(0, 1, 1.0), (1, 2, 5.0), (2, 0, 1.0)],
            Some(vec![4.0, 2.0, 2.0]),
        );
        for nbfs in [0, 1] {
            let mapping = greedy_map_with(&tg, &m, &alloc, nbfs);
            validate_mapping(&tg, &alloc, &mapping).unwrap();
            // The weight-4 task must sit on the capacity-4 node.
            assert_eq!(mapping[0], alloc.node(0), "nbfs={nbfs}");
        }
    }

    #[test]
    fn uniform_capacities_skip_the_pre_pass() {
        // With uniform capacities the pre-pass must not fire (it would
        // degrade the greedy order): results equal the documented path.
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(4, 1));
        let tg = chain();
        let a = greedy_map_with(&tg, &m, &alloc, 0);
        let cfg = GreedyConfig {
            nbfs_candidates: vec![0],
            heavy_first_fraction: 0.0, // would catch everything if it fired
        };
        let b = greedy_map(&tg, &m, &alloc, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "allocation too small")]
    fn oversubscription_panics() {
        let m = machine();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(2));
        let tg = chain();
        greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
    }
}
