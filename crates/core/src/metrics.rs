//! The six mapping metrics of Section II.
//!
//! All metrics route every directed message `(t1, t2) ∈ Et` along the
//! machine's static shortest path and aggregate per link:
//!
//! * `TH`  — total hops, Σ dilation;
//! * `WH`  — weighted hops, Σ dilation · c;
//! * `MMC` — max messages crossing one link;
//! * `MC`  — max volume congestion, max_e Σ volume(e) / bw(e);
//! * `AMC` — average message congestion over *used* links (= TH / |Etm|);
//! * `AC`  — average volume congestion over used links.
//!
//! Two identities hold by construction and are exercised as tests and
//! property tests: `TH = Σ_e Congestion(e)` and `WH = Σ_e VC(e)·bw(e)`.

use umpa_graph::TaskGraph;
use umpa_topology::Machine;

/// Evaluated mapping metrics plus the per-link congestion state they
/// were derived from.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Total hop count.
    pub th: f64,
    /// Weighted hop count.
    pub wh: f64,
    /// Maximum message congestion.
    pub mmc: f64,
    /// Maximum volume congestion.
    pub mc: f64,
    /// Average message congestion over used links.
    pub amc: f64,
    /// Average volume congestion over used links.
    pub ac: f64,
    /// Number of links carrying at least one message (`|Etm|`).
    pub used_links: usize,
    /// Messages crossing each link (indexed by link id).
    pub msg_congestion: Vec<f64>,
    /// Traffic volume crossing each link (indexed by link id).
    pub vol_traffic: Vec<f64>,
}

impl MetricsReport {
    /// The four headline metrics in Figure 2's order.
    pub fn headline(&self) -> [f64; 4] {
        [self.th, self.wh, self.mmc, self.mc]
    }
}

/// Computes every metric for `mapping` (`mapping[t]` = node id of `t`).
pub fn evaluate(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> MetricsReport {
    assert_eq!(mapping.len(), tg.num_tasks());
    let nl = machine.num_links();
    let mut msg = vec![0.0f64; nl];
    let mut vol = vec![0.0f64; nl];
    let mut th = 0.0;
    let mut wh = 0.0;
    let mut links: Vec<u32> = Vec::new();
    for (s, t, c) in tg.messages() {
        let (a, b) = (mapping[s as usize], mapping[t as usize]);
        links.clear();
        machine.route_links(a, b, &mut links);
        let hops = links.len() as f64;
        th += hops;
        wh += hops * c;
        for &l in &links {
            msg[l as usize] += 1.0;
            vol[l as usize] += c;
        }
    }
    let mut mmc = 0.0f64;
    let mut mc = 0.0f64;
    let mut sum_vc = 0.0;
    let mut used = 0usize;
    for l in 0..nl {
        if msg[l] > 0.0 {
            used += 1;
        }
        mmc = mmc.max(msg[l]);
        let vc = vol[l] / machine.link_bandwidth(l as u32);
        mc = mc.max(vc);
        sum_vc += vc;
    }
    let amc = if used > 0 { th / used as f64 } else { 0.0 };
    let ac = if used > 0 { sum_vc / used as f64 } else { 0.0 };
    MetricsReport {
        th,
        wh,
        mmc,
        mc,
        amc,
        ac,
        used_links: used,
        msg_congestion: msg,
        vol_traffic: vol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::MachineConfig;

    /// 1-D 8-torus, 1 node per router, unit bandwidth.
    fn line_machine() -> Machine {
        MachineConfig::small(&[8], 1, 1).build()
    }

    #[test]
    fn single_message_metrics() {
        let m = line_machine();
        let tg = TaskGraph::from_messages(2, [(0, 1, 3.0)], None);
        // Place tasks 2 hops apart.
        let r = evaluate(&tg, &m, &[0, 2]);
        assert_eq!(r.th, 2.0);
        assert_eq!(r.wh, 6.0);
        assert_eq!(r.mmc, 1.0);
        assert_eq!(r.mc, 3.0);
        assert_eq!(r.used_links, 2);
        assert_eq!(r.amc, 1.0);
        assert_eq!(r.ac, 3.0);
    }

    #[test]
    fn th_equals_sum_of_link_congestion() {
        let m = line_machine();
        let tg = TaskGraph::from_messages(
            4,
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 1.0)],
            None,
        );
        let r = evaluate(&tg, &m, &[0, 2, 5, 7]);
        let sum: f64 = r.msg_congestion.iter().sum();
        assert!((r.th - sum).abs() < 1e-9);
    }

    #[test]
    fn wh_equals_sum_of_weighted_link_traffic() {
        let m = line_machine();
        let tg = TaskGraph::from_messages(3, [(0, 2, 4.0), (1, 0, 2.0)], None);
        let r = evaluate(&tg, &m, &[1, 4, 6]);
        let sum: f64 = (0..m.num_links() as u32)
            .map(|l| r.vol_traffic[l as usize]) // bw = 1 here
            .sum();
        assert!((r.wh - sum).abs() < 1e-9);
    }

    #[test]
    fn opposing_messages_use_disjoint_directed_channels() {
        let m = line_machine();
        let tg = TaskGraph::from_messages(2, [(0, 1, 1.0), (1, 0, 1.0)], None);
        let r = evaluate(&tg, &m, &[0, 1]);
        // Directed links: each direction has its own channel, so no link
        // sees 2 messages.
        assert_eq!(r.mmc, 1.0);
        assert_eq!(r.used_links, 2);
    }

    #[test]
    fn colocated_tasks_cost_nothing() {
        let m = MachineConfig::small(&[4], 2, 2).build();
        let tg = TaskGraph::from_messages(2, [(0, 1, 9.0)], None);
        // Nodes 0 and 1 share router 0.
        let r = evaluate(&tg, &m, &[0, 1]);
        assert_eq!(r.th, 0.0);
        assert_eq!(r.wh, 0.0);
        assert_eq!(r.mc, 0.0);
        assert_eq!(r.used_links, 0);
        assert_eq!(r.amc, 0.0);
    }

    #[test]
    fn bandwidth_scales_volume_congestion() {
        let mut cfg = MachineConfig::small(&[4, 4], 1, 1);
        cfg.bw_per_dim = vec![2.0, 0.5];
        let m = cfg.build();
        let tg = TaskGraph::from_messages(2, [(0, 1, 4.0)], None);
        // One hop along dim 0 (bw 2): VC = 2. One hop along dim 1 (bw .5): VC = 8.
        let r_x = evaluate(&tg, &m, &[0, 1]);
        assert_eq!(r_x.mc, 2.0);
        let r_y = evaluate(&tg, &m, &[0, 4]);
        assert_eq!(r_y.mc, 8.0);
    }

    #[test]
    fn shared_links_accumulate() {
        let m = line_machine();
        // Two messages both crossing link 1->2.
        let tg = TaskGraph::from_messages(4, [(0, 2, 1.0), (1, 3, 1.0)], None);
        let r = evaluate(&tg, &m, &[0, 1, 2, 3]);
        assert_eq!(r.mmc, 2.0); // the 1->2 link carries both
        assert_eq!(r.mc, 2.0);
    }
}
