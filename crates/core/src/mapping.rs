//! Mapping representation and validation.
//!
//! A mapping `Γ : Vt → Va` is stored as `Vec<u32>`: `mapping[t]` is the
//! machine node id hosting task `t`. Validation checks the two
//! feasibility conditions of the problem statement: every task sits on
//! an *allocated* node, and no node's processor capacity is exceeded by
//! the total weight of its tasks.

use umpa_graph::TaskGraph;
use umpa_topology::Allocation;

// Re-exported from `eps` where all engine tolerances now live; kept
// here because `fits` is its natural companion and downstream code
// imports it from `mapping`.
pub use crate::eps::CAPACITY_EPS;

/// Whether a task of `weight` fits in `free` remaining capacity, under
/// the engine-wide [`CAPACITY_EPS`] tolerance. For swap feasibility
/// pass `free + departing_weight`.
#[inline]
pub fn fits(free: f64, weight: f64) -> bool {
    free + CAPACITY_EPS >= weight
}

/// Why a mapping is infeasible.
#[derive(Clone, Debug, PartialEq)]
pub enum MappingError {
    /// The mapping vector length differs from the task count.
    LengthMismatch {
        /// Entries in the mapping vector.
        got: usize,
        /// Tasks in the task graph.
        expected: usize,
    },
    /// A task was placed on a node outside the allocation.
    UnallocatedNode {
        /// Offending task.
        task: u32,
        /// The node it was placed on.
        node: u32,
    },
    /// A node's capacity is exceeded.
    OverCapacity {
        /// The overloaded node.
        node: u32,
        /// Total task weight placed there.
        load: f64,
        /// Its processor capacity.
        capacity: f64,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::LengthMismatch { got, expected } => {
                write!(f, "mapping has {got} entries for {expected} tasks")
            }
            MappingError::UnallocatedNode { task, node } => {
                write!(f, "task {task} mapped to unallocated node {node}")
            }
            MappingError::OverCapacity {
                node,
                load,
                capacity,
            } => write!(
                f,
                "node {node} holds task weight {load} over capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

/// Checks that `mapping` is a feasible `Γ` for `tg` on `alloc`.
pub fn validate_mapping(
    tg: &TaskGraph,
    alloc: &Allocation,
    mapping: &[u32],
) -> Result<(), MappingError> {
    if mapping.len() != tg.num_tasks() {
        return Err(MappingError::LengthMismatch {
            got: mapping.len(),
            expected: tg.num_tasks(),
        });
    }
    let mut load = vec![0.0f64; alloc.num_nodes()];
    for (t, &node) in mapping.iter().enumerate() {
        match alloc.slot_of(node) {
            Some(slot) => load[slot as usize] += tg.task_weight(t as u32),
            None => {
                return Err(MappingError::UnallocatedNode {
                    task: t as u32,
                    node,
                })
            }
        }
    }
    for (slot, &slot_load) in load.iter().enumerate() {
        let cap = f64::from(alloc.procs(slot));
        if !fits(cap, slot_load) {
            return Err(MappingError::OverCapacity {
                node: alloc.node(slot),
                load: slot_load,
                capacity: cap,
            });
        }
    }
    Ok(())
}

/// Boolean convenience over [`validate_mapping`] for callers that only
/// branch on feasibility (assertions, differential harnesses); the
/// typed [`MappingError`] carries the diagnosis when you need it.
#[inline]
pub fn is_valid_mapping(tg: &TaskGraph, alloc: &Allocation, mapping: &[u32]) -> bool {
    validate_mapping(tg, alloc, mapping).is_ok()
}

/// Remaining capacity per allocation slot under `mapping` (tasks may be
/// partially placed: unmapped entries are `u32::MAX`).
pub fn free_capacity(tg: &TaskGraph, alloc: &Allocation, mapping: &[u32]) -> Vec<f64> {
    let mut free: Vec<f64> = (0..alloc.num_nodes())
        .map(|s| f64::from(alloc.procs(s)))
        .collect();
    for (t, &node) in mapping.iter().enumerate() {
        if node == u32::MAX {
            continue;
        }
        if let Some(slot) = alloc.slot_of(node) {
            free[slot as usize] -= tg.task_weight(t as u32);
        }
    }
    free
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::{AllocSpec, Allocation, MachineConfig};

    fn setup() -> (umpa_topology::Machine, Allocation, TaskGraph) {
        let m = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(4));
        let tg = TaskGraph::from_messages(4, [(0, 1, 1.0), (2, 3, 1.0)], None);
        (m, alloc, tg)
    }

    #[test]
    fn valid_mapping_passes() {
        let (_, alloc, tg) = setup();
        let mapping: Vec<u32> = (0..4).map(|t| alloc.node(t)).collect();
        assert_eq!(validate_mapping(&tg, &alloc, &mapping), Ok(()));
    }

    #[test]
    fn two_tasks_fit_a_two_proc_node() {
        let (_, alloc, tg) = setup();
        let mapping = vec![alloc.node(0), alloc.node(0), alloc.node(1), alloc.node(1)];
        assert_eq!(validate_mapping(&tg, &alloc, &mapping), Ok(()));
    }

    #[test]
    fn over_capacity_is_reported() {
        let (_, alloc, tg) = setup();
        let mapping = vec![alloc.node(0); 4];
        assert!(matches!(
            validate_mapping(&tg, &alloc, &mapping),
            Err(MappingError::OverCapacity { .. })
        ));
    }

    #[test]
    fn unallocated_node_is_reported() {
        let (m, alloc, tg) = setup();
        let outside = (0..m.num_nodes() as u32)
            .find(|&n| !alloc.contains(n))
            .unwrap();
        let mapping = vec![alloc.node(0), outside, alloc.node(1), alloc.node(2)];
        assert_eq!(
            validate_mapping(&tg, &alloc, &mapping),
            Err(MappingError::UnallocatedNode {
                task: 1,
                node: outside
            })
        );
    }

    #[test]
    fn mapping_error_composes_as_std_error() {
        // `?` through `Box<dyn Error>`: the conversion only exists
        // because MappingError implements std::error::Error + Display.
        fn check(tg: &TaskGraph, alloc: &Allocation) -> Result<(), Box<dyn std::error::Error>> {
            validate_mapping(tg, alloc, &[0, 1])?;
            Ok(())
        }
        let (_, alloc, tg) = setup();
        let err = check(&tg, &alloc).unwrap_err();
        assert_eq!(err.to_string(), "mapping has 2 entries for 4 tasks");
    }

    #[test]
    fn length_mismatch_is_reported() {
        let (_, alloc, tg) = setup();
        assert!(matches!(
            validate_mapping(&tg, &alloc, &[0, 1]),
            Err(MappingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn free_capacity_tracks_partial_mappings() {
        let (_, alloc, tg) = setup();
        let mapping = vec![alloc.node(0), u32::MAX, alloc.node(0), u32::MAX];
        let free = free_capacity(&tg, &alloc, &mapping);
        assert_eq!(free[0], 0.0);
        assert_eq!(free[1], 2.0);
    }
}
