//! Algorithm 2: WH Refinement (the paper's `UWH` variant).
//!
//! Kernighan–Lin-style task swaps on an existing mapping:
//!
//! * a max-heap `whHeap` orders tasks by the WH they individually incur
//!   (`TASKWHOPS`);
//! * for the popped task `t_wh`, swap partners are sought in **BFS
//!   order** over the machine graph starting from the nodes of
//!   `Γ[nghbor(t_wh)]` — the closer a node is to `t_wh`'s neighbors, the
//!   likelier the swap helps;
//! * the scan early-exits after `Δ` evaluated candidates (paper value
//!   8), the first improving swap is applied immediately, and the heap
//!   keys of both tasks' neighborhoods are refreshed;
//! * a pass ends when the heap empties; the next pass runs only if the
//!   previous one improved WH by more than 0.5 % (paper's threshold).
//!
//! All per-run buffers (heap, BFS workspace, slot residency) live in a
//! reusable [`WhScratch`]; a warm scratch makes repeated refinements
//! allocation-free (DESIGN.md §8). Slot residency uses the flat
//! [`SlotBuckets`] registry — O(1) task moves instead of `Vec::retain`.
//!
//! Gain evaluation is **incremental and mutation-free** (DESIGN.md
//! §11): swap gains come from [`HopDist::swap_gain`] — distance-oracle
//! rows (or the analytic fallback) over the two tasks' neighbor lists,
//! with the t1–t2 edge handled by an explicit correction term — instead
//! of virtually relocating tasks and recomputing their full WH.

use umpa_ds::{IndexedMaxHeap, SlotBuckets};
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::eps::{DRIFT_EPS, GAIN_EPS};
use crate::gain::HopDist;
use crate::greedy::weighted_hops;
use crate::mapping::fits;

/// Configuration of the WH refinement.
#[derive(Clone, Copy, Debug)]
pub struct WhRefineConfig {
    /// Max evaluated swap candidates per popped task (`Δ`).
    pub delta: usize,
    /// Minimum relative WH improvement for another pass (paper: 0.5 %).
    pub min_rel_improvement: f64,
    /// Hard cap on passes.
    pub max_passes: u32,
}

impl Default for WhRefineConfig {
    fn default() -> Self {
        Self {
            delta: 8,
            min_rel_improvement: 0.005,
            max_passes: 64,
        }
    }
}

/// Reusable buffers for one refinement run.
#[derive(Default)]
pub struct WhScratch {
    buckets: SlotBuckets,
    free: Vec<f64>,
    heap: IndexedMaxHeap,
    bfs: Bfs,
    sources: Vec<u32>,
}

impl WhScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Refines `mapping` in place to lower WH; returns the final WH.
pub fn wh_refine(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &WhRefineConfig,
) -> f64 {
    let mut scratch = WhScratch::new();
    wh_refine_scratch(tg, machine, alloc, mapping, cfg, &mut scratch)
}

/// Scratch-reusing form of [`wh_refine`]; allocation-free once
/// `scratch` is warm.
pub fn wh_refine_scratch(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &WhRefineConfig,
    scratch: &mut WhScratch,
) -> f64 {
    assert_eq!(mapping.len(), tg.num_tasks());
    let mut r = Refiner::new(tg, machine, alloc, mapping, scratch);
    let mut wh = weighted_hops(tg, machine, r.mapping);
    for _ in 0..cfg.max_passes {
        let improved = r.run_pass(cfg.delta);
        let new_wh = wh - improved;
        debug_assert!(
            (new_wh - weighted_hops(tg, machine, r.mapping)).abs() < DRIFT_EPS * (1.0 + new_wh),
            "incremental WH drifted"
        );
        if wh <= 0.0 || (wh - new_wh) / wh <= cfg.min_rel_improvement {
            wh = new_wh;
            break;
        }
        wh = new_wh;
    }
    wh
}

/// Frontier-restricted form of [`wh_refine_scratch`] for incremental
/// remap: only the tasks in `frontier` (each listed once) are
/// reconsidered for swaps/moves — swap partners may still be any task
/// the BFS candidate scan reaches — and passes stop at
/// `cfg.max_passes` as usual, so repair cost scales with the damage
/// neighborhood, not the job. Returns the final **global** WH.
pub fn wh_refine_frontier_scratch(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    frontier: &[u32],
    cfg: &WhRefineConfig,
    scratch: &mut WhScratch,
) -> f64 {
    assert_eq!(mapping.len(), tg.num_tasks());
    let mut r = Refiner::new(tg, machine, alloc, mapping, scratch);
    let mut wh = weighted_hops(tg, machine, r.mapping);
    for _ in 0..cfg.max_passes {
        let improved = r.run_pass_frontier(cfg.delta, frontier);
        let new_wh = wh - improved;
        debug_assert!(
            (new_wh - weighted_hops(tg, machine, r.mapping)).abs() < DRIFT_EPS * (1.0 + new_wh),
            "incremental WH drifted"
        );
        if wh <= 0.0 || (wh - new_wh) / wh <= cfg.min_rel_improvement {
            wh = new_wh;
            break;
        }
        wh = new_wh;
    }
    wh
}

struct Refiner<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    /// Oracle-or-analytic distances and the incremental gain kernel.
    dist: HopDist<'a>,
    mapping: &'a mut [u32],
    /// Tasks hosted by each allocation slot (flat registry).
    buckets: &'a mut SlotBuckets,
    /// Free capacity per slot.
    free: &'a mut Vec<f64>,
    heap: &'a mut IndexedMaxHeap,
    bfs: &'a mut Bfs,
    sources: &'a mut Vec<u32>,
}

impl<'a> Refiner<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        mapping: &'a mut [u32],
        scratch: &'a mut WhScratch,
    ) -> Self {
        let WhScratch {
            buckets,
            free,
            heap,
            bfs,
            sources,
        } = scratch;
        buckets.reset(alloc.num_nodes(), tg.num_tasks());
        free.clear();
        free.extend((0..alloc.num_nodes()).map(|s| f64::from(alloc.procs(s))));
        for (t, &node) in mapping.iter().enumerate() {
            let slot = alloc.slot_of(node).expect("mapping must be feasible") as usize;
            buckets.insert(slot, t as u32);
            free[slot] -= tg.task_weight(t as u32);
        }
        heap.reset(tg.num_tasks());
        bfs.ensure(machine.num_routers());
        Self {
            tg,
            machine,
            alloc,
            dist: HopDist::new(machine),
            mapping,
            buckets,
            free,
            heap,
            bfs,
            sources,
        }
    }

    /// `TASKWHOPS`: WH incurred by `t` under the current mapping.
    #[inline]
    fn task_wh(&self, t: u32) -> f64 {
        self.dist.task_wh(self.tg, self.mapping, t)
    }

    /// WH gain (positive = improvement) of swapping `t1` with
    /// `(node2, t2)`; `t2 = None` means moving `t1` onto the free
    /// capacity of `node2`'s slot. Incremental — no mapping writes.
    #[inline]
    fn swap_gain(&self, t1: u32, t2: Option<u32>, node2: u32) -> f64 {
        self.dist.swap_gain(self.tg, self.mapping, t1, t2, node2)
    }

    /// Commits a swap/move found by the candidate scan.
    fn commit(&mut self, t1: u32, t2: Option<u32>, node2: u32) {
        let node1 = self.mapping[t1 as usize];
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        let slot2 = self.alloc.slot_of(node2).unwrap() as usize;
        let w1 = self.tg.task_weight(t1);
        self.mapping[t1 as usize] = node2;
        self.buckets.relocate(slot1, slot2, t1);
        self.free[slot1] += w1;
        self.free[slot2] -= w1;
        if let Some(t) = t2 {
            let w2 = self.tg.task_weight(t);
            self.mapping[t as usize] = node1;
            self.buckets.relocate(slot2, slot1, t);
            self.free[slot2] += w2;
            self.free[slot1] -= w2;
        }
    }

    /// Refreshes `task`'s heap key if still enqueued.
    fn refresh(&mut self, task: u32) {
        if self.heap.contains(task) {
            let key = self.task_wh(task);
            self.heap.change_key(task, key);
        }
    }

    /// One refinement pass; returns the total WH improvement achieved.
    fn run_pass(&mut self, delta: usize) -> f64 {
        let n = self.tg.num_tasks();
        self.heap.reset(n);
        for t in 0..n as u32 {
            let key = self.task_wh(t);
            self.heap.push(t, key);
        }
        self.drain_heap(delta)
    }

    /// A pass that pivots only on `frontier` tasks (each listed once):
    /// the incremental-remap restriction. Swap *partners* are still
    /// found anywhere the BFS reaches — only the set of tasks whose
    /// placement is reconsidered is bounded.
    fn run_pass_frontier(&mut self, delta: usize, frontier: &[u32]) -> f64 {
        self.heap.reset(self.tg.num_tasks());
        for &t in frontier {
            let key = self.task_wh(t);
            self.heap.push(t, key);
        }
        self.drain_heap(delta)
    }

    /// Pops tasks by incurred WH and applies first-improving swaps.
    fn drain_heap(&mut self, delta: usize) -> f64 {
        let mut pass_gain = 0.0;
        while let Some((twh, key)) = self.heap.pop() {
            if key <= 0.0 {
                // Remaining tasks incur no WH; nothing to gain.
                break;
            }
            if let Some((gain, t2, node2)) = self.find_swap(twh, delta) {
                pass_gain += gain;
                self.commit(twh, t2, node2);
                // Refresh heap keys of both neighborhoods (+ partner).
                if let Some(t) = t2 {
                    self.refresh(t);
                    for i in 0..self.tg.symmetric().neighbors(t).len() {
                        let u = self.tg.symmetric().neighbors(t)[i];
                        self.refresh(u);
                    }
                }
                for i in 0..self.tg.symmetric().neighbors(twh).len() {
                    let u = self.tg.symmetric().neighbors(twh)[i];
                    self.refresh(u);
                }
            }
        }
        pass_gain
    }

    /// BFS-ordered candidate scan for `twh`; returns the first improving
    /// `(gain, partner, node)` within `delta` evaluations.
    fn find_swap(&mut self, twh: u32, delta: usize) -> Option<(f64, Option<u32>, u32)> {
        let node1 = self.mapping[twh as usize];
        let w1 = self.tg.task_weight(twh);
        // Loop-invariant: twh stays on node1 for the whole scan.
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        self.sources.clear();
        for &nb in self.tg.symmetric().neighbors(twh) {
            self.sources
                .push(self.machine.router_of(self.mapping[nb as usize]));
        }
        if self.sources.is_empty() {
            return None; // no neighbors → its WH is 0 anyway
        }
        self.bfs.start(self.sources.iter().copied());
        let mut evaluated = 0usize;
        loop {
            let ev = self.bfs.next(self.machine.router_graph())?;
            for node2 in self.machine.nodes_of_router(ev.vertex) {
                if node2 == node1 {
                    continue;
                }
                let Some(slot2) = self.alloc.slot_of(node2) else {
                    continue;
                };
                let slot2 = slot2 as usize;
                // Swap candidates: every task on the node, plus a pure
                // move when the free capacity admits t_wh. Nothing in
                // this scan mutates the registry (gains are
                // mutation-free), so residents are iterated in place —
                // no scratch copy.
                for t2 in self.buckets.iter(slot2) {
                    // Capacity check for the exchange.
                    let w2 = self.tg.task_weight(t2);
                    if !fits(self.free[slot2] + w2, w1) || !fits(self.free[slot1] + w1, w2) {
                        continue;
                    }
                    let gain = self.swap_gain(twh, Some(t2), node2);
                    evaluated += 1;
                    if gain > GAIN_EPS {
                        return Some((gain, Some(t2), node2));
                    }
                    if evaluated >= delta {
                        return None;
                    }
                }
                if fits(self.free[slot2], w1) {
                    let gain = self.swap_gain(twh, None, node2);
                    evaluated += 1;
                    if gain > GAIN_EPS {
                        return Some((gain, None, node2));
                    }
                    if evaluated >= delta {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_map, GreedyConfig};
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn ring_tg(n: u32) -> TaskGraph {
        TaskGraph::from_messages(n as usize, (0..n).map(|i| (i, (i + 1) % n, 2.0)), None)
    }

    #[test]
    fn refinement_repairs_a_shuffled_mapping() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(8));
        let tg = ring_tg(8);
        // Pessimal-ish: stride-3 placement of the ring.
        let mut mapping: Vec<u32> = (0..8usize).map(|t| alloc.node(t * 3 % 8)).collect();
        let before = weighted_hops(&tg, &m, &mapping);
        let after = wh_refine(&tg, &m, &alloc, &mut mapping, &WhRefineConfig::default());
        assert!(after < before, "no improvement: {before} -> {after}");
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        assert!((weighted_hops(&tg, &m, &mapping) - after).abs() < 1e-9);
    }

    #[test]
    fn never_worsens_wh() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        for seed in 0..4u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let tg = ring_tg(8);
            let mut mapping = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
            let before = weighted_hops(&tg, &m, &mapping);
            let after = wh_refine(&tg, &m, &alloc, &mut mapping, &WhRefineConfig::default());
            assert!(after <= before + 1e-9, "seed {seed}: {before} -> {after}");
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let tg = ring_tg(8);
        let mut scratch = WhScratch::new();
        for seed in 0..6u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let base = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
            let mut warm = base.clone();
            let mut fresh = base.clone();
            let wh_warm = wh_refine_scratch(
                &tg,
                &m,
                &alloc,
                &mut warm,
                &WhRefineConfig::default(),
                &mut scratch,
            );
            let wh_fresh = wh_refine(&tg, &m, &alloc, &mut fresh, &WhRefineConfig::default());
            assert_eq!(warm, fresh, "seed {seed}: warm scratch diverged");
            assert_eq!(wh_warm, wh_fresh);
        }
    }

    #[test]
    fn optimal_mapping_is_a_fixed_point() {
        let m = MachineConfig::small(&[8], 1, 1).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(8));
        let tg = ring_tg(8);
        // The identity ring placement on a ring machine is optimal (all
        // neighbors at distance 1, WH = 8 pairs * 2.0 * 2 dirs... WH
        // counts directed messages: 8 * 2.0 = 16).
        let mut mapping: Vec<u32> = (0..8usize).map(|t| alloc.node(t)).collect();
        let wh0 = weighted_hops(&tg, &m, &mapping);
        let wh1 = wh_refine(&tg, &m, &alloc, &mut mapping, &WhRefineConfig::default());
        assert_eq!(wh0, wh1);
    }

    #[test]
    fn delta_one_is_weaker_or_equal_to_delta_eight() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(10, 2));
        let tg = TaskGraph::from_messages(
            10,
            (0..10u32).flat_map(|i| [(i, (i + 1) % 10, 1.0), (i, (i + 3) % 10, 0.5)]),
            None,
        );
        let base = greedy_map(&tg, &m, &alloc, &GreedyConfig::default());
        let mut m1 = base.clone();
        let mut m8 = base.clone();
        let wh1 = wh_refine(
            &tg,
            &m,
            &alloc,
            &mut m1,
            &WhRefineConfig {
                delta: 1,
                ..Default::default()
            },
        );
        let wh8 = wh_refine(&tg, &m, &alloc, &mut m8, &WhRefineConfig::default());
        assert!(wh8 <= wh1 + 1e-9, "Δ=8 ({wh8}) should beat Δ=1 ({wh1})");
    }

    #[test]
    fn moves_onto_free_capacity_when_beneficial() {
        let m = MachineConfig::small(&[8], 1, 2).build();
        // 3 nodes, 2 procs each; 4 tasks: pair (0,1) and pair (2,3).
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::contiguous(3));
        let tg = TaskGraph::from_messages(4, [(0, 1, 5.0), (2, 3, 5.0)], None);
        // Bad start: 0 and 1 split across far nodes.
        let mut mapping = vec![alloc.node(0), alloc.node(2), alloc.node(1), alloc.node(1)];
        let after = wh_refine(&tg, &m, &alloc, &mut mapping, &WhRefineConfig::default());
        // 0 and 1 should end co-located (or adjacent at worst).
        assert!(after <= 5.0, "WH after refine = {after}");
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }
}
