//! Multilevel coarsen–map–refine engine for task graphs far larger
//! than the machine.
//!
//! The paper evaluates its pipeline on task graphs sized to the
//! allocation; the direct pipeline's phase-1 partitioner is what limits
//! it — recursive bisection over a million-task graph costs minutes.
//! The standard route to quality-at-scale (Schulz & Woydt's
//! shared-memory hierarchical process mapping; Deveci et al.'s
//! geometric multilevel strategies) is multilevel:
//!
//! 1. **Coarsen** the task graph by heavy-edge matching into a
//!    hierarchy of quotient graphs until it is a small multiple of the
//!    allocation size. Matching is *capacity-aware*: a pair is merged
//!    only while the combined weight stays under
//!    [`MultilevelConfig::max_vertex_frac`] of the largest allocated
//!    node capacity, so every coarse vertex still fits a node and the
//!    coarsest graph remains mappable.
//! 2. **Map** the coarsest graph with the existing engine: Algorithm 1
//!    greedy growth plus the kind's full-budget refinement (Algorithm 2
//!    for `UWH`, Algorithm 3 for `UMC`/`UMMC`). Coarsening has already
//!    played METIS's phase-1 role, so no separate grouping pass runs.
//! 3. **Uncoarsen** level by level: project the mapping through the
//!    matching (`mapping_fine[v] = mapping_coarse[map[v]]` — weights
//!    are exact sums, so feasibility is preserved verbatim) and run
//!    *bounded* refinement passes at each level
//!    ([`MultilevelConfig::refine_passes`], skipped above
//!    [`MultilevelConfig::refine_max_vertices`]) using the PR-3
//!    incremental-gain fast path.
//!
//! Everything steady-state lives in a [`MultilevelScratch`] that
//! follows the [`MapperScratch`] discipline: the hierarchy's per-level
//! [`TaskGraph`]s rebuild in place through
//! [`umpa_graph::TaskGraphScratch`], matching buffers are reused, and a
//! warm run performs **zero heap allocations** (verified by
//! `tests/alloc_free.rs` on every topology backend, oracle on and off).

use umpa_graph::{TaskGraph, TaskGraphScratch};
use umpa_partition::coarsen::heavy_edge_matching;
use umpa_topology::{Allocation, Machine};

use crate::cong_refine::congestion_refine_scratch;
use crate::greedy::greedy_map_into;
use crate::pipeline::{MapperKind, PipelineConfig};
use crate::scratch::MapperScratch;
use crate::wh_refine::{wh_refine_scratch, WhRefineConfig};

/// Coarsening stalls when a matching round shrinks the graph by less
/// than 5 % — the remaining structure (stars, isolated vertices,
/// capacity-blocked pairs) no longer pays for another level.
const STALL_FRACTION: f64 = 0.95;

/// Configuration of the multilevel engine (defaults tuned for the
/// million-task acceptance run on the Hopper preset).
#[derive(Clone, Debug)]
pub struct MultilevelConfig {
    /// Coarsening stops once a level has at most
    /// `coarsen_factor × |Va|` vertices. The default of 8 keeps enough
    /// placement granularity at the coarsest level for the greedy
    /// engine to pack communicating blocks onto same-router node pairs
    /// — pushing below ~4 measurably hurts WH (blocks get too big for
    /// swap refinement to repair), while raising it only costs coarsest
    /// mapping time.
    pub coarsen_factor: f64,
    /// …floored at this many vertices (small graphs skip coarsening
    /// entirely and are mapped directly).
    pub coarsen_min: usize,
    /// Matched-pair weight cap as a fraction of the largest allocated
    /// node capacity. Below 1.0 leaves packing slack for the coarsest
    /// greedy placement; 0.5 keeps at least two coarse vertices per
    /// node's worth of weight. Merging turns the coarsest placement
    /// into a bin-packing problem, so on instances whose total task
    /// weight nearly equals the allocation's capacity, lower this
    /// further (coarse vertices get finer and packing slack grows).
    pub max_vertex_frac: f64,
    /// Refinement budget per uncoarsening level: WH refinement runs at
    /// most this many passes, and congestion refinement accepts at
    /// most `refine_passes × |V_level|` moves (one "pass" moving every
    /// vertex once). `0` makes uncoarsening projection-only. The
    /// coarsest level runs the kind's full budget instead.
    pub refine_passes: u32,
    /// Skip per-level refinement on levels with more vertices than
    /// this — the per-level budget that keeps million-task runs fast.
    pub refine_max_vertices: usize,
    /// Heavy-edge matching seed (per-level seeds derive from it).
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            coarsen_factor: 8.0,
            coarsen_min: 64,
            max_vertex_frac: 0.5,
            refine_passes: 2,
            refine_max_vertices: 1 << 16,
            seed: 0x5EED,
        }
    }
}

/// Shape of one finished multilevel run (for diagnostics, the perf
/// tracker and tests; the mapping itself goes to the caller's buffer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultilevelStats {
    /// Hierarchy depth (0 = the graph was mapped directly).
    pub levels: usize,
    /// Vertices of the coarsest graph actually mapped.
    pub coarsest_tasks: usize,
}

/// One hierarchy level: the coarse graph, the fine→coarse vertex map
/// that produced it, and the node assignment filled in on the way back
/// up. All buffers are reused across runs.
#[derive(Default)]
struct Level {
    /// Quotient task graph at this level (volumes summed).
    tg: TaskGraph,
    /// Message-count view (`UMMC` refinement only; empty otherwise).
    cnt: TaskGraph,
    /// `map[v]` = this level's vertex id for the finer level's `v`.
    map: Vec<u32>,
    /// Node id per vertex of `tg` (filled during uncoarsening).
    mapping: Vec<u32>,
}

/// Owns every buffer of the multilevel engine: the level hierarchy,
/// matching workspaces and the [`TaskGraphScratch`] the quotient
/// rebuilds run through. Lives inside [`MapperScratch`]; one warm
/// scratch serves any problem shape (DESIGN.md §12).
#[derive(Default)]
pub struct MultilevelScratch {
    levels: Vec<Level>,
    /// Random matching order buffer.
    order: Vec<u32>,
    /// Matching partner per vertex (`u32::MAX` = unmatched).
    mate: Vec<u32>,
    /// Quotient/rebuild workspace shared by every level.
    tg: TaskGraphScratch,
    /// Composed fine-task → coarsest-vertex map of the last run.
    pub(crate) group_of: Vec<u32>,
    /// Fine-level message-count view (`UMMC` only).
    cnt0: TaskGraph,
}

impl MultilevelScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Heavy-edge matching on `tg`'s symmetric view under the merged-weight
/// `cap`; writes the fine→coarse map and returns the coarse vertex
/// count. Deterministic per seed. The matching kernel itself is the
/// partitioner's [`heavy_edge_matching`] — the capacity cap rides in as
/// its admission predicate (the symmetric view's vertex weights are the
/// task weights, so the cap reads them directly).
fn match_level(
    tg: &TaskGraph,
    cap: f64,
    seed: u64,
    order: &mut Vec<u32>,
    mate: &mut Vec<u32>,
    map: &mut Vec<u32>,
) -> usize {
    let g = tg.symmetric();
    heavy_edge_matching(
        g,
        seed,
        |v, u| g.vertex_weight(v) + g.vertex_weight(u) <= cap,
        order,
        mate,
        map,
    )
}

/// Runs the full coarsen–map–refine engine for one of the greedy-family
/// mappers, writing the fine mapping into `out` (allocation-free once
/// `scratch` and `out` are warm). The composed fine→coarsest map of the
/// run is left in the scratch for the pipeline wrapper.
///
/// # Panics
///
/// Panics for the `DEF`/`TMAP`/`SMAP` baselines — those do not
/// decompose over a hierarchy; route them through the direct pipeline
/// (`map_multilevel` in [`crate::pipeline`] does so automatically).
pub fn multilevel_map_into(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
    scratch: &mut MapperScratch,
    out: &mut Vec<u32>,
) -> MultilevelStats {
    assert!(
        matches!(
            kind,
            MapperKind::Greedy
                | MapperKind::GreedyWh
                | MapperKind::GreedyMc
                | MapperKind::GreedyMmc
        ),
        "multilevel engine supports the greedy family, not {}",
        kind.name()
    );
    let MapperScratch {
        greedy,
        wh,
        cong,
        multilevel: ml,
        ..
    } = scratch;
    let mlcfg = &cfg.multilevel;
    let n = fine.num_tasks();
    ml.group_of.clear();
    ml.group_of.extend(0..n as u32);
    if n == 0 {
        out.clear();
        return MultilevelStats::default();
    }
    let want_counts = kind == MapperKind::GreedyMmc;
    if want_counts {
        // The `UMMC` view: every fine message counts 1, weights real.
        ml.cnt0.rebuild_from_messages(
            n,
            fine.messages().map(|(s, t, _)| (s, t, 1.0)),
            Some(fine.directed().vertex_weights()),
            &mut ml.tg,
        );
    }
    // --- Coarsening ----------------------------------------------------
    // Merged-weight cap. Beyond the configured fraction of the largest
    // node, the cap is clamped to `slack / |Va|`: if every coarse
    // vertex weighs at most that, a placement failure (every slot's
    // free capacity below the vertex weight) would need the total free
    // capacity to drop under the allocation's slack — impossible. This
    // makes the coarsest greedy placement provably packable whenever
    // the *fine* weights already are, at the cost of shallower
    // coarsening on nearly-full allocations (coarsening depth is
    // driven by the caller's fill factor).
    let max_cap = alloc.procs_all().iter().copied().max().unwrap_or(0);
    let total_weight: f64 = (0..n as u32).map(|t| fine.task_weight(t)).sum();
    let slack = f64::from(alloc.total_procs()) - total_weight;
    let cap =
        (mlcfg.max_vertex_frac * f64::from(max_cap)).min(slack / alloc.num_nodes().max(1) as f64);
    let target =
        ((mlcfg.coarsen_factor * alloc.num_nodes() as f64).ceil() as usize).max(mlcfg.coarsen_min);
    let mut active = 0usize;
    loop {
        let cur_n = if active == 0 {
            n
        } else {
            ml.levels[active - 1].tg.num_tasks()
        };
        if cur_n <= target {
            break;
        }
        if active == ml.levels.len() {
            ml.levels.push(Level::default());
        }
        let (built, rest) = ml.levels.split_at_mut(active);
        let level = &mut rest[0];
        let prev_tg: &TaskGraph = if active == 0 {
            fine
        } else {
            &built[active - 1].tg
        };
        let coarse_n = match_level(
            prev_tg,
            cap,
            mlcfg.seed.wrapping_add(active as u64),
            &mut ml.order,
            &mut ml.mate,
            &mut level.map,
        );
        if coarse_n as f64 > STALL_FRACTION * cur_n as f64 {
            break;
        }
        prev_tg.group_quotient_into(&level.map, coarse_n, false, &mut level.tg, &mut ml.tg);
        if want_counts {
            let prev_cnt: &TaskGraph = if active == 0 {
                &ml.cnt0
            } else {
                &built[active - 1].cnt
            };
            prev_cnt.group_quotient_into(&level.map, coarse_n, false, &mut level.cnt, &mut ml.tg);
        }
        if active == 0 {
            ml.group_of.clear();
            ml.group_of.extend_from_slice(&level.map);
        } else {
            for g in ml.group_of.iter_mut() {
                *g = level.map[*g as usize];
            }
        }
        active += 1;
    }
    // --- Coarsest mapping (full-budget refinement) ---------------------
    let stats = MultilevelStats {
        levels: active,
        coarsest_tasks: if active == 0 {
            n
        } else {
            ml.levels[active - 1].tg.num_tasks()
        },
    };
    if active == 0 {
        // Nothing to coarsen: the graph is machine-sized (or refuses to
        // shrink) — map it directly with the engine.
        greedy_map_into(fine, machine, alloc, &cfg.greedy, greedy, out);
        match kind {
            MapperKind::GreedyWh => {
                wh_refine_scratch(fine, machine, alloc, out, &cfg.wh, wh);
            }
            MapperKind::GreedyMc => {
                congestion_refine_scratch(fine, machine, alloc, out, &cfg.cong_volume, cong);
            }
            MapperKind::GreedyMmc => {
                congestion_refine_scratch(&ml.cnt0, machine, alloc, out, &cfg.cong_messages, cong);
            }
            _ => {}
        }
        return stats;
    }
    {
        let (_, tail) = ml.levels.split_at_mut(active - 1);
        let top = &mut tail[0];
        greedy_map_into(
            &top.tg,
            machine,
            alloc,
            &cfg.greedy,
            greedy,
            &mut top.mapping,
        );
        match kind {
            MapperKind::GreedyWh => {
                wh_refine_scratch(&top.tg, machine, alloc, &mut top.mapping, &cfg.wh, wh);
            }
            MapperKind::GreedyMc => {
                congestion_refine_scratch(
                    &top.tg,
                    machine,
                    alloc,
                    &mut top.mapping,
                    &cfg.cong_volume,
                    cong,
                );
            }
            MapperKind::GreedyMmc => {
                congestion_refine_scratch(
                    &top.cnt,
                    machine,
                    alloc,
                    &mut top.mapping,
                    &cfg.cong_messages,
                    cong,
                );
            }
            _ => {}
        }
    }
    // --- Uncoarsening: project, then bounded refinement per level ------
    let wh_cfg = WhRefineConfig {
        max_passes: mlcfg.refine_passes,
        ..cfg.wh
    };
    // Algorithm 3 has no pass notion (it terminates when the most
    // congested link yields no swap), so its per-level budget caps
    // *accepted moves* at `refine_passes × |V_level|` — one "pass"
    // moving every vertex once — under the configured ceiling.
    let cong_budget = |base: &crate::cong_refine::CongRefineConfig, n_level: usize| {
        crate::cong_refine::CongRefineConfig {
            max_moves: base.max_moves.min(
                mlcfg
                    .refine_passes
                    .saturating_mul(n_level.min(u32::MAX as usize) as u32),
            ),
            ..*base
        }
    };
    for i in (0..active).rev() {
        let (built, rest) = ml.levels.split_at_mut(i);
        let level = &rest[0];
        // Project this level's node assignment onto the finer level.
        let (finer_tg, finer_cnt, finer_mapping): (&TaskGraph, &TaskGraph, &mut Vec<u32>) =
            if i == 0 {
                (fine, &ml.cnt0, &mut *out)
            } else {
                let below = &mut built[i - 1];
                (&below.tg, &below.cnt, &mut below.mapping)
            };
        finer_mapping.clear();
        finer_mapping.extend(level.map.iter().map(|&c| level.mapping[c as usize]));
        let n_level = finer_tg.num_tasks();
        if n_level > mlcfg.refine_max_vertices || mlcfg.refine_passes == 0 {
            continue;
        }
        match kind {
            MapperKind::GreedyWh => {
                wh_refine_scratch(finer_tg, machine, alloc, finer_mapping, &wh_cfg, wh);
            }
            MapperKind::GreedyMc => {
                congestion_refine_scratch(
                    finer_tg,
                    machine,
                    alloc,
                    finer_mapping,
                    &cong_budget(&cfg.cong_volume, n_level),
                    cong,
                );
            }
            MapperKind::GreedyMmc => {
                congestion_refine_scratch(
                    finer_cnt,
                    machine,
                    alloc,
                    finer_mapping,
                    &cong_budget(&cfg.cong_messages, n_level),
                    cong,
                );
            }
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::weighted_hops;
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn big_ring(n: u32, weight: f64) -> TaskGraph {
        TaskGraph::from_messages(
            n as usize,
            (0..n).flat_map(|i| [(i, (i + 1) % n, 4.0), (i, (i + 7) % n, 1.0)]),
            Some(vec![weight; n as usize]),
        )
    }

    fn ml_cfg() -> PipelineConfig {
        PipelineConfig {
            multilevel: MultilevelConfig {
                coarsen_min: 8,
                coarsen_factor: 1.5,
                ..MultilevelConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn hierarchy_forms_and_mapping_is_feasible() {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, 3));
        let tg = big_ring(128, 0.125); // total weight 16 of 32 procs
        let cfg = ml_cfg();
        let mut scratch = MapperScratch::new();
        let mut out = Vec::new();
        let stats = multilevel_map_into(
            &tg,
            &m,
            &alloc,
            MapperKind::GreedyWh,
            &cfg,
            &mut scratch,
            &mut out,
        );
        assert!(stats.levels >= 2, "expected a real hierarchy: {stats:?}");
        assert!(stats.coarsest_tasks < 32);
        validate_mapping(&tg, &alloc, &out).unwrap();
        assert_eq!(scratch.multilevel.group_of.len(), 128);
        let max_group = scratch.multilevel.group_of.iter().max().copied().unwrap();
        assert_eq!(max_group as usize + 1, stats.coarsest_tasks);
    }

    #[test]
    fn matching_respects_the_weight_cap() {
        let tg = big_ring(64, 1.0);
        let (mut order, mut mate, mut map) = (Vec::new(), Vec::new(), Vec::new());
        let coarse_n = match_level(&tg, 2.0, 7, &mut order, &mut mate, &mut map);
        // Pairs of weight 2 at most: at least half the vertices remain.
        assert!(coarse_n >= 32);
        let mut w = vec![0.0; coarse_n];
        for v in 0..64u32 {
            w[map[v as usize] as usize] += tg.task_weight(v);
        }
        assert!(w.iter().all(|&x| x <= 2.0 + 1e-9));
    }

    #[test]
    fn warm_scratch_is_bit_identical_to_fresh() {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let cfg = ml_cfg();
        let mut scratch = MapperScratch::new();
        let mut warm = Vec::new();
        for seed in 0..4u64 {
            let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let tg = big_ring(96 + 16 * seed as u32, 0.2);
            multilevel_map_into(
                &tg,
                &m,
                &alloc,
                MapperKind::GreedyWh,
                &cfg,
                &mut scratch,
                &mut warm,
            );
            let mut fresh = Vec::new();
            multilevel_map_into(
                &tg,
                &m,
                &alloc,
                MapperKind::GreedyWh,
                &cfg,
                &mut MapperScratch::new(),
                &mut fresh,
            );
            assert_eq!(warm, fresh, "seed {seed}: warm scratch diverged");
        }
    }

    #[test]
    fn refined_multilevel_never_trails_projection_on_wh() {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let alloc = umpa_topology::Allocation::generate(&m, &AllocSpec::sparse(10, 5));
        let tg = big_ring(160, 0.2);
        let cfg = ml_cfg();
        let mut scratch = MapperScratch::new();
        let (mut ug, mut uwh) = (Vec::new(), Vec::new());
        multilevel_map_into(
            &tg,
            &m,
            &alloc,
            MapperKind::Greedy,
            &cfg,
            &mut scratch,
            &mut ug,
        );
        multilevel_map_into(
            &tg,
            &m,
            &alloc,
            MapperKind::GreedyWh,
            &cfg,
            &mut scratch,
            &mut uwh,
        );
        let wh_ug = weighted_hops(&tg, &m, &ug);
        let wh_uwh = weighted_hops(&tg, &m, &uwh);
        assert!(
            wh_uwh <= wh_ug + 1e-9,
            "UWH multilevel {wh_uwh} trails UG multilevel {wh_ug}"
        );
    }
}
