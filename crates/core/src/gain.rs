//! Incremental, mutation-free weighted-hop gain evaluation.
//!
//! Both refinement engines (Algorithms 2 and 3) repeatedly ask "how
//! much WH does swapping `t1` with `t2` save?". The original
//! implementation answered by *virtually relocating* the tasks —
//! writing `mapping[]`, recomputing both tasks' full WH, and writing it
//! back — four neighbor-list scans plus two mapping mutations per
//! candidate. The incremental formulation here needs two scans and no
//! writes:
//!
//! ```text
//! gain = Σ_{n ∈ N(t1), n ≠ t2} c₁ₙ · (d[r1][pos_n] − d[r2][pos_n])
//!      + Σ_{n ∈ N(t2), n ≠ t1} c₂ₙ · (d[r2][pos_n] − d[r1][pos_n])
//! ```
//!
//! where `r1`/`r2` are the routers the tasks sit on and `pos_n` the
//! router of neighbor `n`. The `n ≠ partner` exclusions are the
//! **t1–t2 edge correction term**: that edge spans `d(r1, r2)` both
//! before and after a swap, so its true gain contribution is zero,
//! while the naive per-neighbor sums (which read the partner's *old*
//! position) would each add a spurious `c₁₂·d(r1, r2)`. Skipping the
//! partner subtracts exactly that spurious term (DESIGN.md §11).
//!
//! Distances come from the [`DistanceOracle`] rows when the machine has
//! one — `d[r]` is hoisted once per pivot and indexed per neighbor —
//! and from the analytic [`Topology::distance`] otherwise. Both arms
//! evaluate the same float expression in the same order, and hop counts
//! are exact integers either way, so the two paths produce bit-identical
//! gains (and therefore bit-identical refinement decisions).

use umpa_graph::TaskGraph;
use umpa_topology::{Allocation, DistanceOracle, Machine, Topology};

/// Largest allocation (in slots) for which [`HopDist::build_slot_panel`]
/// materializes the compact slot×slot distance panel. Beyond this the
/// quadratic build and footprint stop paying for themselves (the
/// multilevel coarsest-level greedy can see thousands of slots) and
/// callers fall back to per-lookup [`HopDist`] dispatch.
pub(crate) const MAX_PANEL_SLOTS: usize = 128;

/// Hop-distance access for one refinement run: the oracle table when
/// built, the analytic backend otherwise. Cheap to construct; hot loops
/// call [`swap_gain`](Self::swap_gain)/[`task_wh`](Self::task_wh).
pub(crate) struct HopDist<'a> {
    oracle: Option<&'a DistanceOracle>,
    topo: &'a Topology,
    nodes_per_router: u32,
}

impl<'a> HopDist<'a> {
    pub(crate) fn new(machine: &'a Machine) -> Self {
        Self {
            oracle: machine.oracle(),
            topo: machine.topology(),
            nodes_per_router: machine.params().nodes_per_router,
        }
    }

    /// Router a node hangs off (mirrors `Machine::router_of`).
    #[inline]
    pub(crate) fn router_of(&self, node: u32) -> u32 {
        node / self.nodes_per_router
    }

    /// Hop distance between two *nodes* — the oracle-or-analytic
    /// dispatch in one place, with the oracle option hoisted at
    /// construction (unlike `Machine::hops`, which re-checks the
    /// `OnceLock` per call).
    #[inline]
    pub(crate) fn node_hops(&self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.router_of(a), self.router_of(b));
        match self.oracle {
            Some(o) => o.distance(ra, rb),
            None => self.topo.distance(ra, rb),
        }
    }

    /// `TASKWHOPS`: the WH task `t` incurs under `mapping`.
    #[inline]
    pub(crate) fn task_wh(&self, tg: &TaskGraph, mapping: &[u32], t: u32) -> f64 {
        let r = self.router_of(mapping[t as usize]);
        match self.oracle {
            Some(o) => {
                let row = o.row(r);
                tg.symmetric()
                    .edges(t)
                    .map(|(n, c)| f64::from(row[self.router_of(mapping[n as usize]) as usize]) * c)
                    .sum()
            }
            None => tg
                .symmetric()
                .edges(t)
                .map(|(n, c)| {
                    f64::from(self.topo.distance(r, self.router_of(mapping[n as usize]))) * c
                })
                .sum(),
        }
    }

    /// WH gain (positive = improvement) of swapping `t1` with
    /// `(node2, t2)`; `t2 = None` is a pure move onto free capacity.
    /// Reads `mapping` without touching it.
    pub(crate) fn swap_gain(
        &self,
        tg: &TaskGraph,
        mapping: &[u32],
        t1: u32,
        t2: Option<u32>,
        node2: u32,
    ) -> f64 {
        let npr = self.nodes_per_router;
        let pos = move |t: u32| mapping[t as usize] / npr;
        self.swap_gain_over(tg, pos, pos(t1), t1, t2, self.router_of(node2))
    }

    /// Fills the WH **damage** (negated swap gain) of swapping `t1`
    /// with each candidate in `cand` (`.1` = candidate task, `.0`
    /// written), all candidates targeting router `r2`. One oracle-row
    /// hoist serves the whole panel, and the `t1` half is computed once
    /// and reused for every candidate that is not a neighbor of `t1`
    /// (`is_nb`) — that half never takes the skip branch for a
    /// non-neighbor, so reusing it is bitwise identical to evaluating
    /// each candidate independently, at a fraction of the overhead.
    /// `routers[t]` must equal `router_of(mapping[t])`, which also
    /// removes the per-neighbor `node / nodes_per_router` division
    /// [`swap_gain`](Self::swap_gain) pays.
    pub(crate) fn fill_swap_damages(
        &self,
        tg: &TaskGraph,
        routers: &[u32],
        t1: u32,
        r2: u32,
        is_nb: impl Fn(u32) -> bool,
        cand: &mut [(f64, u32)],
    ) {
        let pos = |t: u32| routers[t as usize];
        let r1 = routers[t1 as usize];
        match self.oracle {
            Some(o) => {
                let (row1, row2) = (o.row(r1), o.row(r2));
                let fwd = |p: u32| i32::from(row1[p as usize]) - i32::from(row2[p as usize]);
                let rev = |p: u32| i32::from(row2[p as usize]) - i32::from(row1[p as usize]);
                let mut base: Option<f64> = None;
                for slot in cand.iter_mut() {
                    let t = slot.1;
                    let half1 = if is_nb(t) {
                        gain_half(tg, pos, t1, t, fwd)
                    } else {
                        *base.get_or_insert_with(|| gain_half(tg, pos, t1, u32::MAX, fwd))
                    };
                    slot.0 = -(half1 + gain_half(tg, pos, t, t1, rev));
                }
            }
            None => {
                let fwd =
                    |p: u32| self.topo.distance(r1, p) as i32 - self.topo.distance(r2, p) as i32;
                let rev =
                    |p: u32| self.topo.distance(r2, p) as i32 - self.topo.distance(r1, p) as i32;
                let mut base: Option<f64> = None;
                for slot in cand.iter_mut() {
                    let t = slot.1;
                    let half1 = if is_nb(t) {
                        gain_half(tg, pos, t1, t, fwd)
                    } else {
                        *base.get_or_insert_with(|| gain_half(tg, pos, t1, u32::MAX, fwd))
                    };
                    slot.0 = -(half1 + gain_half(tg, pos, t, t1, rev));
                }
            }
        }
    }

    /// Builds the compact slot×slot hop-distance panel for `alloc`:
    /// `out[a * s + b]` is the router hop distance between the nodes of
    /// slots `a` and `b`, with `s = alloc.num_nodes()` returned as the
    /// stride. Every distance greedy evaluates is between two allocated
    /// slots, so this pulls the whole working set out of the (on big
    /// machines, tens-of-MB) oracle table into a few cache-resident KB.
    /// Values are read through the same oracle-or-analytic dispatch as
    /// [`node_hops`](Self::node_hops) — exact integer hop counts either
    /// way — so sums over panel entries are bit-identical to sums over
    /// per-lookup distances. Returns 0 (panel disabled, `out` cleared)
    /// when the allocation exceeds [`MAX_PANEL_SLOTS`].
    pub(crate) fn build_slot_panel(&self, alloc: &Allocation, out: &mut Vec<u16>) -> usize {
        let s = alloc.num_nodes();
        out.clear();
        if s > MAX_PANEL_SLOTS {
            return 0;
        }
        out.resize(s * s, 0);
        // The router graph is undirected and both distance backends are
        // symmetric, so fill the upper triangle and mirror — one oracle
        // row hoist serves a whole panel row.
        for a in 0..s {
            let ra = self.router_of(alloc.node(a));
            match self.oracle {
                Some(o) => {
                    let row = o.row(ra);
                    for b in a..s {
                        let d = row[self.router_of(alloc.node(b)) as usize];
                        out[a * s + b] = d;
                        out[b * s + a] = d;
                    }
                }
                None => {
                    for b in a..s {
                        let d = self.topo.distance(ra, self.router_of(alloc.node(b)));
                        debug_assert!(d <= u32::from(u16::MAX));
                        out[a * s + b] = d as u16;
                        out[b * s + a] = d as u16;
                    }
                }
            }
        }
        s
    }

    /// Placement-cost kernel, per-lookup fallback arm: for each
    /// candidate router in `keys`, the weighted-hop increase of placing
    /// the pivot there — `Σ d(key, nb_router) · w` over the mapped
    /// neighbors, terms in neighbor order. Used when the allocation is
    /// too large for the compact panel; one oracle-row hoist still
    /// serves each candidate's whole neighbor scan.
    pub(crate) fn fill_place_costs_hops(
        &self,
        nb_routers: &[u32],
        nb_ws: &[f64],
        keys: &[u32],
        costs: &mut Vec<f64>,
    ) {
        costs.clear();
        match self.oracle {
            Some(o) => {
                for &r in keys {
                    let row = o.row(r);
                    let mut inc = 0.0;
                    for (&p, &w) in nb_routers.iter().zip(nb_ws) {
                        inc += f64::from(row[p as usize]) * w;
                    }
                    costs.push(inc);
                }
            }
            None => {
                for &r in keys {
                    let mut inc = 0.0;
                    for (&p, &w) in nb_routers.iter().zip(nb_ws) {
                        inc += f64::from(self.topo.distance(r, p)) * w;
                    }
                    costs.push(inc);
                }
            }
        }
    }

    /// Shared body of the gain evaluations; `pos` resolves a task's
    /// router and monomorphizes per caller (no dispatch in the
    /// neighbor loop).
    #[inline]
    fn swap_gain_over(
        &self,
        tg: &TaskGraph,
        pos: impl Fn(u32) -> u32 + Copy,
        r1: u32,
        t1: u32,
        t2: Option<u32>,
        r2: u32,
    ) -> f64 {
        let skip1 = t2.unwrap_or(u32::MAX);
        match self.oracle {
            Some(o) => {
                let (row1, row2) = (o.row(r1), o.row(r2));
                let mut gain = gain_half(tg, pos, t1, skip1, |p| {
                    i32::from(row1[p as usize]) - i32::from(row2[p as usize])
                });
                if let Some(t2) = t2 {
                    gain += gain_half(tg, pos, t2, t1, |p| {
                        i32::from(row2[p as usize]) - i32::from(row1[p as usize])
                    });
                }
                gain
            }
            None => {
                let mut gain = gain_half(tg, pos, t1, skip1, |p| {
                    self.topo.distance(r1, p) as i32 - self.topo.distance(r2, p) as i32
                });
                if let Some(t2) = t2 {
                    gain += gain_half(tg, pos, t2, t1, |p| {
                        self.topo.distance(r2, p) as i32 - self.topo.distance(r1, p) as i32
                    });
                }
                gain
            }
        }
    }
}

/// Placement-cost kernel, panel arm: for each candidate slot in
/// `keys`, the weighted-hop increase of placing the pivot there —
/// `Σ d(key, nb_slot) · w` over the mapped neighbors (`nb_slots` /
/// `nb_ws` parallel, terms in neighbor order). `panel` is the
/// [`HopDist::build_slot_panel`] matrix with the given `stride`; one
/// panel row is hoisted per candidate and the whole scan runs on
/// cache-resident u16 rows with no dispatch — the SIMD-friendly shape.
/// Term order and the `f64::from(hops) * w` orientation match the
/// per-candidate reference evaluation bit for bit.
pub(crate) fn fill_place_costs(
    panel: &[u16],
    stride: usize,
    nb_slots: &[u32],
    nb_ws: &[f64],
    keys: &[u32],
    costs: &mut Vec<f64>,
) {
    costs.clear();
    for &k in keys {
        let row = &panel[k as usize * stride..][..stride];
        let mut inc = 0.0;
        for (&s, &w) in nb_slots.iter().zip(nb_ws) {
            inc += f64::from(row[s as usize]) * w;
        }
        costs.push(inc);
    }
}

/// One task's side of the incremental gain: Σ c·Δd over its neighbors,
/// excluding `skip` (the t1–t2 edge correction term — see module docs).
#[inline]
fn gain_half(
    tg: &TaskGraph,
    pos: impl Fn(u32) -> u32,
    t: u32,
    skip: u32,
    hop_delta: impl Fn(u32) -> i32,
) -> f64 {
    let mut g = 0.0;
    for (n, c) in tg.symmetric().edges(t) {
        if n == skip {
            continue;
        }
        g += c * f64::from(hop_delta(pos(n)));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use umpa_topology::{AllocSpec, Allocation, MachineConfig};

    /// Reference gain by brute force: mutate a copy, recompute total WH.
    fn brute_gain(
        tg: &TaskGraph,
        machine: &Machine,
        mapping: &[u32],
        t1: u32,
        t2: Option<u32>,
        node2: u32,
    ) -> f64 {
        let total = |m: &[u32]| -> f64 {
            tg.messages()
                .map(|(s, d, c)| f64::from(machine.hops(m[s as usize], m[d as usize])) * c)
                .sum()
        };
        let mut after = mapping.to_vec();
        let node1 = after[t1 as usize];
        after[t1 as usize] = node2;
        if let Some(t2) = t2 {
            after[t2 as usize] = node1;
        }
        total(mapping) - total(&after)
    }

    #[test]
    fn incremental_gain_matches_brute_force_including_adjacent_swaps() {
        let m = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 7));
        let tg = TaskGraph::from_messages(
            10,
            (0..10u32).flat_map(|i| [(i, (i + 1) % 10, 2.0), (i, (i + 3) % 10, 0.5)]),
            None,
        );
        let mapping: Vec<u32> = (0..10usize).map(|t| alloc.node(t % 8)).collect();
        let dist = HopDist::new(&m);
        for t1 in 0..10u32 {
            for t2 in 0..10u32 {
                if t1 == t2 {
                    continue;
                }
                let node2 = mapping[t2 as usize];
                let inc = dist.swap_gain(&tg, &mapping, t1, Some(t2), node2);
                let brute = brute_gain(&tg, &m, &mapping, t1, Some(t2), node2);
                assert!(
                    (inc - brute).abs() < 1e-9,
                    "swap {t1}<->{t2}: incremental {inc} vs brute {brute}"
                );
            }
            // Pure moves onto every allocated node.
            for s in 0..8usize {
                let node2 = alloc.node(s);
                let inc = dist.swap_gain(&tg, &mapping, t1, None, node2);
                let brute = brute_gain(&tg, &m, &mapping, t1, None, node2);
                assert!((inc - brute).abs() < 1e-9, "move {t1}->{node2}");
            }
        }
    }

    #[test]
    fn panel_damages_match_per_candidate_swap_gains_bitwise() {
        // The congestion engine's batched candidate scan must rank
        // exactly as per-candidate evaluation would — including the
        // shared-base shortcut for non-neighbors of the pivot.
        for oracle_on in [true, false] {
            let mut m = MachineConfig::small(&[4, 3], 1, 2).build();
            if !oracle_on {
                m.set_oracle_threshold(0);
            }
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(6, 3));
            let tg = TaskGraph::from_messages(
                10,
                (0..10u32).flat_map(|i| [(i, (i + 1) % 10, 2.0), (i, (i + 3) % 10, 0.5)]),
                None,
            );
            let mapping: Vec<u32> = (0..10usize).map(|t| alloc.node(t % 6)).collect();
            let routers: Vec<u32> = mapping.iter().map(|&n| m.router_of(n)).collect();
            let dist = HopDist::new(&m);
            for t1 in 0..10u32 {
                let nbs: Vec<u32> = tg.symmetric().neighbors(t1).to_vec();
                for r2 in 0..12u32 {
                    let mut cand: Vec<(f64, u32)> =
                        (0..10u32).filter(|&t| t != t1).map(|t| (0.0, t)).collect();
                    dist.fill_swap_damages(&tg, &routers, t1, r2, |t| nbs.contains(&t), &mut cand);
                    for &(damage, t) in &cand {
                        // Reference: the mapping-based evaluation with the
                        // partner virtually on some node of router r2 (the
                        // gain only depends on the router).
                        let node2 = r2 * m.params().nodes_per_router;
                        let want = -dist.swap_gain(&tg, &mapping, t1, Some(t), node2);
                        assert_eq!(
                            damage.to_bits(),
                            want.to_bits(),
                            "t1={t1} t={t} r2={r2} oracle={oracle_on}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slot_panel_matches_machine_hops_on_every_pair() {
        for oracle_on in [true, false] {
            let mut m = MachineConfig::small(&[4, 3, 2], 2, 2).build();
            if !oracle_on {
                m.set_oracle_threshold(0);
            }
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(9, 5));
            let dist = HopDist::new(&m);
            let mut panel = Vec::new();
            let stride = dist.build_slot_panel(&alloc, &mut panel);
            assert_eq!(stride, alloc.num_nodes());
            for a in 0..stride {
                for b in 0..stride {
                    assert_eq!(
                        u32::from(panel[a * stride + b]),
                        m.hops(alloc.node(a), alloc.node(b)),
                        "slots {a},{b} oracle={oracle_on}"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_panel_disabled_beyond_the_size_cap() {
        let m = MachineConfig::small(&[16, 16], 1, 1).build();
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(MAX_PANEL_SLOTS + 1, 5));
        let dist = HopDist::new(&m);
        let mut panel = vec![7u16; 4];
        assert_eq!(dist.build_slot_panel(&alloc, &mut panel), 0);
        assert!(panel.is_empty());
    }

    #[test]
    fn place_cost_kernels_match_per_candidate_reference_bitwise() {
        // Both kernel arms (panel rows, per-lookup hops) must reproduce
        // the frozen reference's per-candidate `Σ f64::from(hops) * w`
        // accumulation bit for bit, since greedy breaks float ties by
        // strict `<` over these sums.
        for oracle_on in [true, false] {
            let mut m = MachineConfig::small(&[4, 3], 2, 2).build();
            if !oracle_on {
                m.set_oracle_threshold(0);
            }
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 3));
            let dist = HopDist::new(&m);
            let mut panel = Vec::new();
            let stride = dist.build_slot_panel(&alloc, &mut panel);
            // Pretend tasks sit on slots 0..5 with skewed weights.
            let nb_slots: Vec<u32> = vec![0, 3, 1, 4, 2];
            let nb_ws: Vec<f64> = vec![2.0, 0.5, 1.25, 3.0, 0.75];
            let keys: Vec<u32> = (0..stride as u32).collect();
            let mut costs = Vec::new();
            fill_place_costs(&panel, stride, &nb_slots, &nb_ws, &keys, &mut costs);
            let nb_routers: Vec<u32> = nb_slots
                .iter()
                .map(|&s| m.router_of(alloc.node(s as usize)))
                .collect();
            let key_routers: Vec<u32> = keys
                .iter()
                .map(|&s| m.router_of(alloc.node(s as usize)))
                .collect();
            let mut costs_hops = Vec::new();
            dist.fill_place_costs_hops(&nb_routers, &nb_ws, &key_routers, &mut costs_hops);
            for (i, &k) in keys.iter().enumerate() {
                let node = alloc.node(k as usize);
                let want: f64 = nb_slots
                    .iter()
                    .zip(&nb_ws)
                    .map(|(&s, &w)| f64::from(m.hops(node, alloc.node(s as usize))) * w)
                    .sum();
                assert_eq!(costs[i].to_bits(), want.to_bits(), "panel k={k}");
                assert_eq!(costs_hops[i].to_bits(), want.to_bits(), "hops k={k}");
            }
        }
    }

    #[test]
    fn oracle_and_analytic_gains_are_bit_identical() {
        let mut analytic = MachineConfig::small(&[4, 3], 1, 2).build();
        analytic.set_oracle_threshold(0);
        let oracle = MachineConfig::small(&[4, 3], 1, 2).build();
        let alloc = Allocation::generate(&oracle, &AllocSpec::sparse(6, 3));
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).map(|i| (i, (i + 1) % 8, 1.0 + f64::from(i))),
            None,
        );
        let mapping: Vec<u32> = (0..8usize).map(|t| alloc.node(t % 6)).collect();
        let d_oracle = HopDist::new(&oracle);
        let d_analytic = HopDist::new(&analytic);
        for t1 in 0..8u32 {
            for t2 in 0..8u32 {
                if t1 == t2 {
                    continue;
                }
                let node2 = mapping[t2 as usize];
                let a = d_oracle.swap_gain(&tg, &mapping, t1, Some(t2), node2);
                let b = d_analytic.swap_gain(&tg, &mapping, t1, Some(t2), node2);
                assert_eq!(a.to_bits(), b.to_bits(), "swap {t1}<->{t2}");
                let ka = d_oracle.task_wh(&tg, &mapping, t1);
                let kb = d_analytic.task_wh(&tg, &mapping, t1);
                assert_eq!(ka.to_bits(), kb.to_bits(), "task_wh {t1}");
            }
        }
    }
}
