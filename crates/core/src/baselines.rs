//! Baseline mappers: `DEF`, `TMAP`, `SMAP`.
//!
//! * [`def_mapping`] — Hopper's default SMP-STYLE placement: consecutive
//!   MPI ranks fill a node, nodes are taken in the allocation's
//!   placement-curve order (Section IV-B explains why this baseline is
//!   already decent: partitioners give nearby parts nearby ids and the
//!   curve keeps nearby nodes close);
//! * [`tmap_mapping`] — the best LibTopoMap variant per the paper:
//!   recursive bipartitioning of the task graph against a geometric
//!   bipartition of the allocated nodes. The paper-documented fallback
//!   ("if TMAP's MC value is not smaller than DEF's, it returns the DEF
//!   mapping") is applied by the pipeline, which has the fine-grain
//!   graph needed to compare;
//! * [`smap_mapping`] — Scotch-style dual recursive bipartitioning: the
//!   node set is split by a farthest-pair two-center rule (graph
//!   distance), the task set by min-cut bisection, and the halves are
//!   matched.

use crate::mapping::fits;
use umpa_graph::TaskGraph;
use umpa_partition::bisect::{multilevel_bisect, BisectConfig};
use umpa_topology::{Allocation, Machine};

/// SMP-STYLE default placement: task `t` goes to the allocation slot
/// whose processor range contains rank `t`.
pub fn def_mapping(tg: &TaskGraph, alloc: &Allocation) -> Vec<u32> {
    let mut mapping = Vec::with_capacity(tg.num_tasks());
    let mut slot = 0usize;
    let mut free = f64::from(alloc.procs(0));
    for t in 0..tg.num_tasks() as u32 {
        let w = tg.task_weight(t);
        while !fits(free, w) {
            slot += 1;
            assert!(
                slot < alloc.num_nodes(),
                "allocation too small for the SMP-style fill"
            );
            free = f64::from(alloc.procs(slot));
        }
        free -= w;
        mapping.push(alloc.node(slot));
    }
    mapping
}

/// Grouping used by `DEF`: `group_of[t]` = allocation slot index of the
/// SMP-style fill (consecutive ranks per node).
pub fn def_groups(tg: &TaskGraph, alloc: &Allocation) -> Vec<u32> {
    let mapping = def_mapping(tg, alloc);
    mapping
        .iter()
        .map(|&node| alloc.slot_of(node).unwrap())
        .collect()
}

/// How a dual-recursive-bipartitioning baseline splits the node set.
#[derive(Clone, Copy, Debug)]
enum NodeSplit {
    /// Median cut along the torus dimension with the widest coordinate
    /// spread (LibTopoMap-style geometric recursion).
    Geometric,
    /// Farthest-pair two-center split by hop distance (Scotch-style
    /// architecture bipartition).
    TwoCenter,
}

/// LibTopoMap-like mapping (recursive graph bipartitioning variant).
pub fn tmap_mapping(tg: &TaskGraph, machine: &Machine, alloc: &Allocation, seed: u64) -> Vec<u32> {
    dual_recursive(tg, machine, alloc, NodeSplit::Geometric, seed)
}

/// Scotch-like dual recursive bipartitioning mapping.
pub fn smap_mapping(tg: &TaskGraph, machine: &Machine, alloc: &Allocation, seed: u64) -> Vec<u32> {
    dual_recursive(tg, machine, alloc, NodeSplit::TwoCenter, seed)
}

fn dual_recursive(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    split: NodeSplit,
    seed: u64,
) -> Vec<u32> {
    let mut mapping = vec![u32::MAX; tg.num_tasks()];
    let tasks: Vec<u32> = (0..tg.num_tasks() as u32).collect();
    let slots: Vec<u32> = (0..alloc.num_nodes() as u32).collect();
    recurse(
        tg,
        machine,
        alloc,
        split,
        seed,
        tasks,
        slots,
        &mut mapping,
        1,
    );
    debug_assert!(mapping.iter().all(|&n| n != u32::MAX));
    mapping
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    split: NodeSplit,
    seed: u64,
    tasks: Vec<u32>,
    slots: Vec<u32>,
    mapping: &mut [u32],
    depth_id: u64,
) {
    if tasks.is_empty() {
        return;
    }
    if slots.len() == 1 {
        let node = alloc.node(slots[0] as usize);
        for t in tasks {
            mapping[t as usize] = node;
        }
        return;
    }
    // -- Split the node set.
    let (s1, s2) = match split {
        NodeSplit::Geometric => geometric_split(machine, alloc, &slots),
        NodeSplit::TwoCenter => two_center_split(machine, alloc, &slots),
    };
    let cap = |ss: &[u32]| -> f64 { ss.iter().map(|&s| f64::from(alloc.procs(s as usize))).sum() };
    let (cap1, cap2) = (cap(&s1), cap(&s2));
    // -- Split the task set proportionally by min-cut bisection.
    let sub = tg.symmetric().induced_subgraph(&tasks);
    let total_w = sub.total_vertex_weight();
    let target_left = total_w * cap1 / (cap1 + cap2);
    let cfg = BisectConfig {
        epsilon: 0.02,
        seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(depth_id),
        ..BisectConfig::default()
    };
    let mut side = multilevel_bisect(&sub, target_left, &cfg);
    enforce_capacity(&sub, &mut side, cap1, cap2);
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for (i, &t) in tasks.iter().enumerate() {
        if side[i] == 0 {
            t1.push(t);
        } else {
            t2.push(t);
        }
    }
    recurse(
        tg,
        machine,
        alloc,
        split,
        seed,
        t1,
        s1,
        mapping,
        depth_id * 2,
    );
    recurse(
        tg,
        machine,
        alloc,
        split,
        seed,
        t2,
        s2,
        mapping,
        depth_id * 2 + 1,
    );
}

/// Forces the bisection under the hard capacities by migrating the
/// least-connected vertices of the overloaded side.
fn enforce_capacity(sub: &umpa_graph::Graph, side: &mut [u8], cap1: f64, cap2: f64) {
    loop {
        let mut w = [0.0f64; 2];
        for (i, &s) in side.iter().enumerate() {
            w[s as usize] += sub.vertex_weight(i as u32);
        }
        let over = if !fits(cap1, w[0]) {
            0u8
        } else if !fits(cap2, w[1]) {
            1u8
        } else {
            break;
        };
        // Vertex of the overloaded side with the most attraction (or
        // least repulsion) toward the other side.
        let best = (0..side.len())
            .filter(|&i| side[i] == over)
            .max_by(|&a, &b| {
                let gain = |v: usize| -> f64 {
                    sub.edges(v as u32)
                        .map(|(n, wgt)| if side[n as usize] == over { -wgt } else { wgt })
                        .sum()
                };
                gain(a).partial_cmp(&gain(b)).unwrap().then(b.cmp(&a))
            })
            .expect("overloaded side cannot be empty");
        side[best] = 1 - over;
    }
}

/// Median cut along the coordinate with the widest spread. Coordinates
/// only exist on the torus backend; hierarchical topologies (fat-tree,
/// dragonfly) fall back to the distance-based two-center split, which
/// is how LibTopoMap degrades on non-grid machines too.
fn geometric_split(machine: &Machine, alloc: &Allocation, slots: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let Some(torus) = machine.torus() else {
        return two_center_split(machine, alloc, slots);
    };
    let nd = torus.ndims();
    let coord = |slot: u32, d: usize| torus.coord(machine.router_of(alloc.node(slot as usize)), d);
    // Spread per dimension (bounding box; wraparound ignored for the
    // emulation — LibTopoMap treats coordinates the same way).
    let mut best_dim = 0usize;
    let mut best_spread = 0u32;
    for d in 0..nd {
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for &s in slots {
            let c = coord(s, d);
            lo = lo.min(c);
            hi = hi.max(c);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            best_dim = d;
        }
    }
    let mut order: Vec<u32> = slots.to_vec();
    order.sort_by_key(|&s| {
        let mut key = [0u32; 8];
        for (d, k) in key.iter_mut().take(nd).enumerate() {
            *k = coord(s, (best_dim + d) % nd);
        }
        (key, s)
    });
    split_by_capacity(alloc, order)
}

/// Farthest-pair two-center split.
fn two_center_split(machine: &Machine, alloc: &Allocation, slots: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let node = |s: u32| alloc.node(s as usize);
    let far_from = |a: u32| -> u32 {
        *slots
            .iter()
            .max_by_key(|&&s| (machine.hops(node(a), node(s)), std::cmp::Reverse(s)))
            .unwrap()
    };
    let c1 = far_from(slots[0]);
    let c2 = far_from(c1);
    let mut order: Vec<u32> = slots.to_vec();
    // Most c1-sided first: sorted by dist(c1) − dist(c2).
    order.sort_by_key(|&s| {
        let d1 = machine.hops(node(c1), node(s)) as i64;
        let d2 = machine.hops(node(c2), node(s)) as i64;
        (d1 - d2, s)
    });
    split_by_capacity(alloc, order)
}

/// Splits an ordered slot list at the capacity midpoint.
fn split_by_capacity(alloc: &Allocation, order: Vec<u32>) -> (Vec<u32>, Vec<u32>) {
    let total: f64 = order
        .iter()
        .map(|&s| f64::from(alloc.procs(s as usize)))
        .sum();
    let mut acc = 0.0;
    let mut cutpoint = order.len() / 2;
    for (i, &s) in order.iter().enumerate() {
        acc += f64::from(alloc.procs(s as usize));
        if acc >= total / 2.0 {
            cutpoint = (i + 1).min(order.len() - 1).max(1);
            break;
        }
    }
    let (a, b) = order.split_at(cutpoint);
    (a.to_vec(), b.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn setup(nodes: usize, procs: u32) -> (Machine, Allocation) {
        let m = MachineConfig::small(&[4, 4], 1, procs).build();
        let a = Allocation::generate(&m, &AllocSpec::sparse(nodes, 3));
        (m, a)
    }

    #[test]
    fn def_fills_slots_in_order() {
        let (_, alloc) = setup(4, 2);
        let tg = TaskGraph::from_messages(8, (0..7u32).map(|i| (i, i + 1, 1.0)), None);
        let mapping = def_mapping(&tg, &alloc);
        assert_eq!(mapping[0], alloc.node(0));
        assert_eq!(mapping[1], alloc.node(0));
        assert_eq!(mapping[2], alloc.node(1));
        assert_eq!(mapping[7], alloc.node(3));
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn def_groups_match_def_mapping() {
        let (_, alloc) = setup(4, 2);
        let tg = TaskGraph::from_messages(8, (0..7u32).map(|i| (i, i + 1, 1.0)), None);
        let groups = def_groups(&tg, &alloc);
        assert_eq!(groups, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn tmap_produces_valid_mappings() {
        let (m, alloc) = setup(8, 1);
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).map(|i| (i, (i + 1) % 8, 1.0 + f64::from(i % 2))),
            None,
        );
        let mapping = tmap_mapping(&tg, &m, &alloc, 5);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn smap_produces_valid_mappings() {
        let (m, alloc) = setup(8, 1);
        let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 3) % 8, 1.0)), None);
        let mapping = smap_mapping(&tg, &m, &alloc, 5);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn dual_rb_keeps_clusters_together() {
        // Two 4-cliques, 8 single-proc nodes: each clique should end on
        // 4 nodes forming one side of the recursion.
        let (m, alloc) = setup(8, 1);
        let mut msgs = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4u32 {
                for j in (i + 1)..4 {
                    msgs.push((base + i, base + j, 10.0));
                }
            }
        }
        msgs.push((0, 4, 0.1)); // faint inter-cluster link
        let tg = TaskGraph::from_messages(8, msgs, None);
        let mapping = tmap_mapping(&tg, &m, &alloc, 1);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        // Check the top split separated the cliques: tasks 0-3 share a
        // side iff no task of 4-7 is on a node of that side's set.
        use std::collections::HashSet;
        let a: HashSet<u32> = (0..4).map(|t| mapping[t as usize]).collect();
        let b: HashSet<u32> = (4..8).map(|t| mapping[t as usize]).collect();
        assert!(a.is_disjoint(&b), "cliques interleaved: {a:?} vs {b:?}");
    }

    #[test]
    fn multi_task_nodes_respect_capacity() {
        let (m, alloc) = setup(4, 2);
        let tg = TaskGraph::from_messages(8, (0..8u32).map(|i| (i, (i + 1) % 8, 1.0)), None);
        for f in [tmap_mapping, smap_mapping] {
            let mapping = f(&tg, &m, &alloc, 2);
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn geometric_split_separates_along_widest_dimension() {
        let m = MachineConfig::small(&[8, 2], 1, 1).build();
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(16));
        let slots: Vec<u32> = (0..16).collect();
        let (s1, s2) = geometric_split(&m, &alloc, &slots);
        assert_eq!(s1.len() + s2.len(), 16);
        // The x-extents of the two halves should barely overlap.
        let max_x1 = s1
            .iter()
            .map(|&s| {
                m.torus()
                    .unwrap()
                    .coord(m.router_of(alloc.node(s as usize)), 0)
            })
            .max()
            .unwrap();
        let min_x2 = s2
            .iter()
            .map(|&s| {
                m.torus()
                    .unwrap()
                    .coord(m.router_of(alloc.node(s as usize)), 0)
            })
            .min()
            .unwrap();
        assert!(
            max_x1 <= min_x2 + 1,
            "x ranges overlap: {max_x1} vs {min_x2}"
        );
    }
}
