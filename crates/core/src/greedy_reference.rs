//! The **pre-rewrite** greedy mapping engine, preserved as the
//! differential-testing reference for the rewritten hot path in
//! [`crate::greedy`].
//!
//! This is the gain-kernel PR's frozen copy of Algorithm 1 as it stood
//! before: every candidate node re-scans the pivot task's neighbor list
//! through `Machine::hops` (an `OnceLock` check and two router
//! divisions per distance), the router BFS expands every popped vertex
//! even after the feasible level is known, and the final WH is summed
//! through per-message oracle-table lookups. The rewritten engine must
//! stay **bit-identical** to this one — same seed choices, same BFS
//! candidate order, same tie-breaks, same mapping and same returned WH
//! bits — which `tests/greedy_differential.rs` asserts across the
//! backend × oracle × scratch matrix.
//!
//! Not part of the public API surface (`#[doc(hidden)]`); nothing in
//! the serving paths calls it.

use umpa_ds::IndexedMaxHeap;
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::gain::HopDist;
use crate::greedy::GreedyConfig;
use crate::mapping::fits;

/// Reusable buffers of the reference engine (the pre-rewrite
/// `GreedyScratch`, verbatim).
#[derive(Default)]
pub struct GreedyReferenceScratch {
    mapping: Vec<u32>,
    best: Vec<u32>,
    free: Vec<f64>,
    nonempty_slots: Vec<u32>,
    slot_nonempty: Vec<bool>,
    conn: IndexedMaxHeap,
    bfs_tasks: Bfs,
    bfs_routers: Bfs,
    sources: Vec<u32>,
    heavy: Vec<u32>,
}

impl GreedyReferenceScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The pre-rewrite `weighted_hops`, kept private to the freeze so the
/// reference is self-contained even if the live helper evolves.
fn weighted_hops_reference(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> f64 {
    let dist = HopDist::new(machine);
    tg.messages()
        .map(|(s, t, c)| f64::from(dist.node_hops(mapping[s as usize], mapping[t as usize])) * c)
        .sum()
}

/// The pre-rewrite `greedy_map_into`, verbatim: runs Algorithm 1 for
/// every `NBFS` candidate sequentially, writes the winning mapping into
/// `out` and returns its WH.
pub fn greedy_map_into_reference(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &GreedyConfig,
    scratch: &mut GreedyReferenceScratch,
    out: &mut Vec<u32>,
) -> f64 {
    assert!(!cfg.nbfs_candidates.is_empty());
    let mut best_wh = f64::INFINITY;
    for &nbfs in &cfg.nbfs_candidates {
        let wh = run_greedy(tg, machine, alloc, nbfs, cfg.heavy_first_fraction, scratch);
        if wh < best_wh {
            best_wh = wh;
            std::mem::swap(&mut scratch.best, &mut scratch.mapping);
        }
    }
    out.clear();
    out.extend_from_slice(&scratch.best);
    best_wh
}

/// One full reference run; leaves the mapping in `scratch.mapping` and
/// returns its WH.
fn run_greedy(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    nbfs: u32,
    heavy_first_fraction: f64,
    scratch: &mut GreedyReferenceScratch,
) -> f64 {
    let n = tg.num_tasks();
    let mut state = State::new(tg, machine, alloc, scratch);
    if n == 0 {
        return 0.0;
    }
    let total_weight: f64 = (0..n as u32).map(|t| tg.task_weight(t)).sum();
    assert!(
        fits(f64::from(alloc.total_procs()), total_weight),
        "allocation too small: task weight {total_weight} > {} procs",
        alloc.total_procs()
    );
    let caps = alloc.procs_all();
    let non_uniform = caps.windows(2).any(|w| w[0] != w[1]);
    if non_uniform {
        let max_cap = f64::from(*caps.iter().max().unwrap());
        let threshold = heavy_first_fraction * max_cap;
        state.heavy.clear();
        state
            .heavy
            .extend((0..n as u32).filter(|&t| tg.task_weight(t) > threshold));
        state.heavy.sort_unstable_by(|&a, &b| {
            tg.task_weight(b)
                .partial_cmp(&tg.task_weight(a))
                .unwrap()
                .then(a.cmp(&b))
        });
        for i in 0..state.heavy.len() {
            let t = state.heavy[i];
            let node = state.best_node_for(t);
            state.place(t, node);
        }
    }
    let t0 = tg.task_with_max_srv().expect("nonempty graph");
    if !state.is_mapped(t0) {
        let w0 = tg.task_weight(t0);
        let first_slot = (0..alloc.num_nodes())
            .filter(|&s| fits(state.free[s], w0))
            .max_by(|&a, &b| alloc.procs(a).cmp(&alloc.procs(b)).then(b.cmp(&a)))
            .expect("allocation has room for t0 by the weight invariant");
        state.place(t0, alloc.node(first_slot));
    }
    let mut seeds_placed = 0u32;
    while state.mapped_count < n {
        let tbest = if seeds_placed < nbfs {
            seeds_placed += 1;
            state.farthest_unmapped_task()
        } else {
            state.most_connected_task()
        };
        let node = state.best_node_for(tbest);
        state.place(tbest, node);
    }
    weighted_hops_reference(tg, machine, state.mapping)
}

/// Working state of one reference run.
struct State<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    mapping: &'a mut Vec<u32>,
    free: &'a mut Vec<f64>,
    nonempty_slots: &'a mut Vec<u32>,
    slot_nonempty: &'a mut Vec<bool>,
    conn: &'a mut IndexedMaxHeap,
    bfs_tasks: &'a mut Bfs,
    bfs_routers: &'a mut Bfs,
    sources: &'a mut Vec<u32>,
    heavy: &'a mut Vec<u32>,
    mapped_count: usize,
}

impl<'a> State<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        scratch: &'a mut GreedyReferenceScratch,
    ) -> Self {
        let GreedyReferenceScratch {
            mapping,
            best: _,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
        } = scratch;
        let n_tasks = tg.num_tasks();
        let n_slots = alloc.num_nodes();
        mapping.clear();
        mapping.resize(n_tasks, u32::MAX);
        free.clear();
        free.extend((0..n_slots).map(|s| f64::from(alloc.procs(s))));
        nonempty_slots.clear();
        nonempty_slots.reserve(n_slots);
        slot_nonempty.clear();
        slot_nonempty.resize(n_slots, false);
        conn.reset(n_tasks);
        bfs_tasks.ensure(n_tasks);
        bfs_routers.ensure(machine.num_routers());
        sources.clear();
        sources.reserve(n_tasks.max(machine.num_routers()));
        Self {
            tg,
            machine,
            alloc,
            mapping,
            free,
            nonempty_slots,
            slot_nonempty,
            conn,
            bfs_tasks,
            bfs_routers,
            sources,
            heavy,
            mapped_count: 0,
        }
    }

    #[inline]
    fn is_mapped(&self, t: u32) -> bool {
        self.mapping[t as usize] != u32::MAX
    }

    fn place(&mut self, t: u32, node: u32) {
        debug_assert!(!self.is_mapped(t));
        let slot = self.alloc.slot_of(node).expect("node not allocated") as usize;
        debug_assert!(fits(self.free[slot], self.tg.task_weight(t)));
        self.mapping[t as usize] = node;
        self.free[slot] -= self.tg.task_weight(t);
        if !self.slot_nonempty[slot] {
            self.slot_nonempty[slot] = true;
            self.nonempty_slots.push(slot as u32);
        }
        self.conn.remove(t);
        for (n, c) in self.tg.symmetric().edges(t) {
            if !self.is_mapped(n) {
                self.conn.add_to_key(n, c);
            }
        }
        self.mapped_count += 1;
    }

    fn most_connected_task(&mut self) -> u32 {
        if let Some((t, _)) = self.conn.pop() {
            return t;
        }
        self.max_srv_unmapped()
            .expect("loop invariant: an unmapped task exists")
    }

    fn max_srv_unmapped(&self) -> Option<u32> {
        (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t))
            .max_by(|&a, &b| {
                self.tg
                    .srv(a)
                    .partial_cmp(&self.tg.srv(b))
                    .unwrap()
                    .then(b.cmp(&a))
            })
    }

    fn farthest_unmapped_task(&mut self) -> u32 {
        self.sources.clear();
        for t in 0..self.tg.num_tasks() as u32 {
            if self.mapping[t as usize] != u32::MAX {
                self.sources.push(t);
            }
        }
        self.bfs_tasks.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32)> = None; // (level, task)
        while let Some(ev) = self.bfs_tasks.next(self.tg.symmetric()) {
            if self.is_mapped(ev.vertex) {
                continue;
            }
            let better = match best {
                None => true,
                Some((lvl, t)) => {
                    ev.level > lvl
                        || (ev.level == lvl
                            && (self.tg.srv(ev.vertex), std::cmp::Reverse(ev.vertex))
                                > (self.tg.srv(t), std::cmp::Reverse(t)))
                }
            };
            if better {
                best = Some((ev.level, ev.vertex));
            }
        }
        let unreached = (0..self.tg.num_tasks() as u32)
            .filter(|&t| !self.is_mapped(t) && !self.bfs_tasks.was_visited(t))
            .max_by(|&a, &b| {
                self.tg
                    .srv(a)
                    .partial_cmp(&self.tg.srv(b))
                    .unwrap()
                    .then(b.cmp(&a))
            });
        unreached
            .or(best.map(|(_, t)| t))
            .expect("an unmapped task must exist")
    }

    fn wh_increase(&self, t: u32, node: u32) -> f64 {
        self.tg
            .symmetric()
            .edges(t)
            .filter(|&(n, _)| self.is_mapped(n))
            .map(|(n, c)| f64::from(self.machine.hops(node, self.mapping[n as usize])) * c)
            .sum()
    }

    fn best_node_for(&mut self, t: u32) -> u32 {
        let w = self.tg.task_weight(t);
        let has_mapped_neighbor = self
            .tg
            .symmetric()
            .neighbors(t)
            .iter()
            .any(|&n| self.is_mapped(n));
        if !has_mapped_neighbor {
            return self.farthest_free_node(w);
        }
        self.sources.clear();
        for &n in self.tg.symmetric().neighbors(t) {
            if self.mapping[n as usize] != u32::MAX {
                self.sources
                    .push(self.machine.router_of(self.mapping[n as usize]));
            }
        }
        self.bfs_routers.start(self.sources.iter().copied());
        let mut best: Option<(f64, u32)> = None;
        let mut hit_level: Option<u32> = None;
        while let Some(ev) = self.bfs_routers.next(self.machine.router_graph()) {
            if let Some(l) = hit_level {
                if ev.level > l {
                    break;
                }
            }
            for node in self.machine.nodes_of_router(ev.vertex) {
                let Some(slot) = self.alloc.slot_of(node) else {
                    continue;
                };
                if !fits(self.free[slot as usize], w) {
                    continue;
                }
                hit_level = Some(ev.level);
                let inc = self.wh_increase(t, node);
                if best.as_ref().is_none_or(|&(b, _)| inc < b) {
                    best = Some((inc, node));
                }
            }
        }
        best.map(|(_, n)| n)
            .expect("allocation has free capacity by the weight invariant")
    }

    fn farthest_free_node(&mut self, w: f64) -> u32 {
        if self.nonempty_slots.is_empty() {
            let slot = (0..self.alloc.num_nodes())
                .find(|&s| fits(self.free[s], w))
                .expect("allocation has free capacity");
            return self.alloc.node(slot);
        }
        self.sources.clear();
        for i in 0..self.nonempty_slots.len() {
            let s = self.nonempty_slots[i];
            self.sources
                .push(self.machine.router_of(self.alloc.node(s as usize)));
        }
        self.bfs_routers.start(self.sources.iter().copied());
        let mut best: Option<(u32, u32)> = None; // (level, node)
        while let Some(ev) = self.bfs_routers.next(self.machine.router_graph()) {
            for node in self.machine.nodes_of_router(ev.vertex) {
                let Some(slot) = self.alloc.slot_of(node) else {
                    continue;
                };
                if !fits(self.free[slot as usize], w) {
                    continue;
                }
                if best.is_none_or(|(lvl, _)| ev.level > lvl) {
                    best = Some((ev.level, node));
                }
            }
        }
        best.map(|(_, n)| n)
            .expect("allocation has free capacity by the weight invariant")
    }
}
