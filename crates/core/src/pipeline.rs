//! The two-phase mapping pipeline of Section III-A.
//!
//! Phase 1 (common preprocessing): the fine MPI task graph is
//! partitioned into `|Va|` node groups — METIS's role in the paper —
//! with target weights equal to each node's processor count, and the
//! balance is fixed exactly with a single FM iteration so every group
//! fits its node. Phase 2 (the mapper under test): the coarse group
//! graph is mapped onto the allocated nodes by one of `DEF`, `TMAP`,
//! `SMAP`, `UG`, `UWH`, `UMC`, `UMMC`. The composed fine mapping is what
//! the metrics and simulators consume.
//!
//! Timing: `elapsed` covers phase 2 only — the paper's Figure 3 measures
//! mapping-algorithm time, with the partitioning phase shared by all
//! methods (and the refinement variants' time including the `UG` run
//! they start from).
//!
//! Serving shape: [`map_tasks_with`] threads a warm [`MapperScratch`]
//! through phase 2 so its hot path is allocation-free, and [`map_many`]
//! batches requests — sequentially through one scratch, or (with the
//! `parallel` feature) across a per-worker scratch pool with outputs in
//! request order, bit-identical to the sequential path.

use std::time::{Duration, Instant};

use umpa_graph::TaskGraph;
use umpa_partition::{fix_balance, recursive_bisection, MlConfig};
use umpa_topology::{Allocation, Machine};

use crate::baselines::{def_groups, def_mapping, smap_mapping, tmap_mapping};
use crate::cong_refine::{congestion_refine_scratch, CongRefineConfig};
use crate::greedy::{greedy_map_into, GreedyConfig};
use crate::metrics::evaluate;
use crate::multilevel::{multilevel_map_into, MultilevelConfig};
use crate::scratch::MapperScratch;
use crate::wh_refine::{wh_refine_scratch, WhRefineConfig};

/// The seven mapping algorithms of Figure 2, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapperKind {
    /// Hopper's default SMP-style placement.
    Def,
    /// LibTopoMap (best variant) with the DEF fallback rule.
    Tmap,
    /// Scotch-style dual recursive bipartitioning.
    Smap,
    /// Algorithm 1 (greedy, `UG`).
    Greedy,
    /// Algorithm 1 + Algorithm 2 (`UWH`).
    GreedyWh,
    /// Algorithm 1 + Algorithm 3 on volume congestion (`UMC`).
    GreedyMc,
    /// Algorithm 1 + Algorithm 3 on message congestion (`UMMC`).
    GreedyMmc,
}

impl MapperKind {
    /// All mappers in Figure 2's display order (D, T, S, G, WH, MC, MMC).
    pub fn all() -> [MapperKind; 7] {
        [
            MapperKind::Def,
            MapperKind::Tmap,
            MapperKind::Smap,
            MapperKind::Greedy,
            MapperKind::GreedyWh,
            MapperKind::GreedyMc,
            MapperKind::GreedyMmc,
        ]
    }

    /// One step down the quality/cost ladder, or `None` from the floor.
    ///
    /// The ladder a deadline-bound serving layer (e.g. `umpa-service`)
    /// walks when a request's time budget is tight or its queue is
    /// deep: congestion refinement (`UMC`/`UMMC`) → WH refinement
    /// (`UWH`) → greedy only (`UG`) → the instant `DEF` projection.
    /// Each step strictly cheapens phase 2; `DEF` additionally skips
    /// the phase-1 partitioning, so the floor costs microseconds. The
    /// `TMAP`/`SMAP` baselines have no cheap intermediate form and
    /// degrade straight to `DEF`.
    pub fn degrade(self) -> Option<MapperKind> {
        match self {
            MapperKind::GreedyMc | MapperKind::GreedyMmc => Some(MapperKind::GreedyWh),
            MapperKind::GreedyWh => Some(MapperKind::Greedy),
            MapperKind::Greedy | MapperKind::Tmap | MapperKind::Smap => Some(MapperKind::Def),
            MapperKind::Def => None,
        }
    }

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            MapperKind::Def => "DEF",
            MapperKind::Tmap => "TMAP",
            MapperKind::Smap => "SMAP",
            MapperKind::Greedy => "UG",
            MapperKind::GreedyWh => "UWH",
            MapperKind::GreedyMc => "UMC",
            MapperKind::GreedyMmc => "UMMC",
        }
    }
}

/// Pipeline configuration (paper defaults).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Node-grouping partitioner settings (the "METIS" phase).
    pub ml: MlConfig,
    /// Algorithm 1 settings.
    pub greedy: GreedyConfig,
    /// Algorithm 2 settings.
    pub wh: WhRefineConfig,
    /// Algorithm 3 settings for the volume variant.
    pub cong_volume: CongRefineConfig,
    /// Algorithm 3 settings for the message variant.
    pub cong_messages: CongRefineConfig,
    /// Multilevel coarsen–map–refine settings (the [`map_multilevel`]
    /// strategy for graphs far larger than the machine).
    pub multilevel: MultilevelConfig,
    /// Run Algorithm 2 on the *fine* task graph after composing (the
    /// §III-B alternative the paper declines by default: fine-level
    /// swaps can lower WH further but may increase the total internode
    /// volume, and cost more time). Applies to `GreedyWh` only.
    pub fine_wh_refine: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            ml: MlConfig::default(),
            greedy: GreedyConfig::default(),
            wh: WhRefineConfig::default(),
            cong_volume: CongRefineConfig::volume(),
            cong_messages: CongRefineConfig::messages(),
            multilevel: MultilevelConfig::default(),
            fine_wh_refine: false,
            seed: 1,
        }
    }
}

/// How a request turns its task graph into a mapping: the paper's
/// two-phase pipeline, or the multilevel engine for graphs far larger
/// than the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MapStrategy {
    /// Phase-1 grouping (recursive bisection) + phase-2 mapping — the
    /// paper's flow, right for machine-sized graphs.
    #[default]
    Direct,
    /// Coarsen–map–refine over a heavy-edge-matching hierarchy
    /// ([`crate::multilevel`]) — right when `|Vt| ≫ |Va|`.
    Multilevel,
}

/// Result of the full pipeline.
#[derive(Clone, Debug)]
pub struct MappingOutcome {
    /// Node id per fine task (`Γ` composed through the grouping).
    pub fine_mapping: Vec<u32>,
    /// Node-group id per fine task (phase-1 output; for `DEF`, the
    /// consecutive-rank grouping).
    pub group_of: Vec<u32>,
    /// Wall time of phase 2 (the mapping algorithm itself).
    pub elapsed: Duration,
    /// Whether TMAP fell back to the DEF mapping (always `false` for
    /// other mappers).
    pub tmap_fell_back: bool,
}

/// Phase 1: groups the fine tasks into `|Va|` node groups with exact
/// balance (recursive bisection + one FM balance iteration).
pub fn group_tasks(fine: &TaskGraph, alloc: &Allocation, ml: &MlConfig) -> Vec<u32> {
    let targets: Vec<f64> = (0..alloc.num_nodes())
        .map(|s| f64::from(alloc.procs(s)))
        .collect();
    let g = fine.symmetric();
    let mut group = recursive_bisection(g, &targets, ml);
    fix_balance(g, &mut group, &targets, 0.0);
    group
}

/// Runs the full two-phase pipeline for one mapper.
///
/// # Examples
///
/// ```
/// use umpa_core::prelude::*;
/// use umpa_graph::TaskGraph;
/// use umpa_topology::{AllocSpec, Allocation, MachineConfig};
///
/// let machine = MachineConfig::small(&[4, 4], 1, 2).build();
/// let alloc = Allocation::generate(&machine, &AllocSpec::sparse(4, 7));
/// let tasks = TaskGraph::from_messages(
///     8,
///     (0..8u32).map(|i| (i, (i + 1) % 8, 1.0)),
///     None,
/// );
/// let out = map_tasks(
///     &tasks,
///     &machine,
///     &alloc,
///     MapperKind::GreedyWh,
///     &PipelineConfig::default(),
/// );
/// assert_eq!(out.fine_mapping.len(), 8);
/// let metrics = evaluate(&tasks, &machine, &out.fine_mapping);
/// assert!(metrics.wh >= 0.0);
/// ```
pub fn map_tasks(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
) -> MappingOutcome {
    map_tasks_with(fine, machine, alloc, kind, cfg, &mut MapperScratch::new())
}

/// [`map_tasks`] with a caller-owned [`MapperScratch`]: phase 2 (the
/// timed mapping algorithm) reuses the scratch's buffers and performs
/// no heap allocations once the scratch is warm — the steady-state
/// serving path. Results are bit-identical to [`map_tasks`].
pub fn map_tasks_with(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
    scratch: &mut MapperScratch,
) -> MappingOutcome {
    if kind == MapperKind::Def {
        let start = Instant::now(); // tidy-allow: determinism (wall-clock feeds MappingOutcome::elapsed reporting only, never a placement decision)
        let fine_mapping = def_mapping(fine, alloc);
        let elapsed = start.elapsed();
        return MappingOutcome {
            group_of: def_groups(fine, alloc),
            fine_mapping,
            elapsed,
            tmap_fell_back: false,
        };
    }
    // Phase 1 — common preprocessing (untimed, shared by all mappers).
    let group_of = group_tasks(fine, alloc, &cfg.ml);
    let n_groups = alloc.num_nodes();
    let coarse_vol = fine.group_quotient(&group_of, n_groups, false);
    // Phase 2 — the mapper under test. The greedy family runs through
    // the scratch (allocation-free once warm); the TMAP/SMAP baselines
    // allocate internally, as the systems they model do.
    let start = Instant::now(); // tidy-allow: determinism (wall-clock feeds MappingOutcome::elapsed reporting only, never a placement decision)
    let mut tmap_fell_back = false;
    match kind {
        MapperKind::Def => unreachable!(),
        MapperKind::Tmap => {
            let candidate = tmap_mapping(&coarse_vol, machine, alloc, cfg.seed);
            // The paper's rule: compare MC against DEF; fall back if not
            // strictly better.
            let fine_candidate = compose(&group_of, &candidate);
            let def = def_mapping(fine, alloc);
            let cand_mc = evaluate(fine, machine, &fine_candidate).mc;
            let def_mc = evaluate(fine, machine, &def).mc;
            if cand_mc < def_mc {
                scratch.coarse.clear();
                scratch.coarse.extend_from_slice(&candidate);
            } else {
                tmap_fell_back = true;
                let elapsed = start.elapsed();
                return MappingOutcome {
                    group_of: def_groups(fine, alloc),
                    fine_mapping: def,
                    elapsed,
                    tmap_fell_back,
                };
            }
        }
        MapperKind::Smap => {
            let m = smap_mapping(&coarse_vol, machine, alloc, cfg.seed);
            scratch.coarse.clear();
            scratch.coarse.extend_from_slice(&m);
        }
        MapperKind::Greedy => {
            greedy_map_into(
                &coarse_vol,
                machine,
                alloc,
                &cfg.greedy,
                &mut scratch.greedy,
                &mut scratch.coarse,
            );
        }
        MapperKind::GreedyWh => {
            greedy_map_into(
                &coarse_vol,
                machine,
                alloc,
                &cfg.greedy,
                &mut scratch.greedy,
                &mut scratch.coarse,
            );
            wh_refine_scratch(
                &coarse_vol,
                machine,
                alloc,
                &mut scratch.coarse,
                &cfg.wh,
                &mut scratch.wh,
            );
        }
        MapperKind::GreedyMc => {
            greedy_map_into(
                &coarse_vol,
                machine,
                alloc,
                &cfg.greedy,
                &mut scratch.greedy,
                &mut scratch.coarse,
            );
            congestion_refine_scratch(
                &coarse_vol,
                machine,
                alloc,
                &mut scratch.coarse,
                &cfg.cong_volume,
                &mut scratch.cong,
            );
        }
        MapperKind::GreedyMmc => {
            greedy_map_into(
                &coarse_vol,
                machine,
                alloc,
                &cfg.greedy,
                &mut scratch.greedy,
                &mut scratch.coarse,
            );
            let coarse_cnt = fine.group_quotient(&group_of, n_groups, true);
            congestion_refine_scratch(
                &coarse_cnt,
                machine,
                alloc,
                &mut scratch.coarse,
                &cfg.cong_messages,
                &mut scratch.cong,
            );
        }
    };
    let mut fine_mapping = compose(&group_of, &scratch.coarse);
    if cfg.fine_wh_refine && kind == MapperKind::GreedyWh {
        // §III-B fine-level refinement: swap individual tasks between
        // nodes. WH can only improve; internode volume may grow (the
        // reason the paper keeps this off by default).
        wh_refine_scratch(
            fine,
            machine,
            alloc,
            &mut fine_mapping,
            &cfg.wh,
            &mut scratch.wh,
        );
    }
    let elapsed = start.elapsed();
    MappingOutcome {
        fine_mapping,
        group_of,
        elapsed,
        tmap_fell_back,
    }
}

/// Runs the multilevel coarsen–map–refine engine for one mapper (see
/// [`crate::multilevel`]): coarsen by capacity-aware heavy-edge
/// matching, map the coarsest graph with the engine, then uncoarsen
/// with bounded per-level refinement. The strategy of choice when the
/// task graph dwarfs the machine; on machine-sized graphs it degrades
/// gracefully to a direct engine run.
///
/// The `DEF`/`TMAP`/`SMAP` baselines do not decompose over a hierarchy
/// and are routed through the direct [`map_tasks`] pipeline unchanged.
///
/// `elapsed` covers the whole multilevel run — coarsening here plays
/// phase 1's role, so unlike [`map_tasks`] there is no untimed
/// preprocessing. `group_of` is the composed fine-task → coarsest-vertex
/// assignment.
pub fn map_multilevel(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
) -> MappingOutcome {
    map_multilevel_with(fine, machine, alloc, kind, cfg, &mut MapperScratch::new())
}

/// [`map_multilevel`] with a caller-owned [`MapperScratch`]: the
/// hierarchy and every engine buffer are reused, so a warm scratch
/// makes the whole run allocation-free apart from materializing the
/// outcome (use [`crate::multilevel::multilevel_map_into`] directly for
/// the fully allocation-free serving path). Results are bit-identical
/// to [`map_multilevel`].
pub fn map_multilevel_with(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
    scratch: &mut MapperScratch,
) -> MappingOutcome {
    if matches!(kind, MapperKind::Def | MapperKind::Tmap | MapperKind::Smap) {
        return map_tasks_with(fine, machine, alloc, kind, cfg, scratch);
    }
    let start = Instant::now(); // tidy-allow: determinism (wall-clock feeds MappingOutcome::elapsed reporting only, never a placement decision)
    let mut fine_mapping = Vec::new();
    multilevel_map_into(fine, machine, alloc, kind, cfg, scratch, &mut fine_mapping);
    let elapsed = start.elapsed();
    MappingOutcome {
        fine_mapping,
        group_of: scratch.multilevel.group_of.clone(),
        elapsed,
        tmap_fell_back: false,
    }
}

/// One mapping request for the batched [`map_many`] API. Borrows its
/// inputs so a serving layer can share one machine/topology across a
/// whole batch.
#[derive(Clone, Copy)]
pub struct MapRequest<'a> {
    /// The fine task graph to map.
    pub tasks: &'a TaskGraph,
    /// Target machine.
    pub machine: &'a Machine,
    /// Allocated nodes.
    pub alloc: &'a Allocation,
    /// Mapping algorithm to run.
    pub kind: MapperKind,
    /// Direct pipeline or multilevel engine.
    pub strategy: MapStrategy,
    /// Pipeline configuration.
    pub cfg: &'a PipelineConfig,
}

/// Dispatches one request onto the strategy's entry point.
fn run_request(r: &MapRequest<'_>, scratch: &mut MapperScratch) -> MappingOutcome {
    match r.strategy {
        MapStrategy::Direct => map_tasks_with(r.tasks, r.machine, r.alloc, r.kind, r.cfg, scratch),
        MapStrategy::Multilevel => {
            map_multilevel_with(r.tasks, r.machine, r.alloc, r.kind, r.cfg, scratch)
        }
    }
}

/// Maps a batch of independent requests, amortizing scratch buffers
/// across the batch. Outputs are in request order.
///
/// Without the `parallel` feature (or for a single request) the batch
/// runs sequentially through one warm [`MapperScratch`]. With it, the
/// batch is split into one contiguous chunk per worker, each worker
/// owning one scratch — requests are independent and every scratch is
/// fully reset per request, so the mappings are **bit-identical** to
/// the sequential path; only wall-clock changes.
pub fn map_many(requests: &[MapRequest<'_>]) -> Vec<MappingOutcome> {
    #[cfg(feature = "parallel")]
    if requests.len() > 1 {
        use rayon::prelude::*;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunk = requests.len().div_ceil(workers);
        let nested: Vec<Vec<MappingOutcome>> = requests
            .par_chunks(chunk)
            .map(|part| {
                let mut scratch = MapperScratch::new();
                part.iter().map(|r| run_request(r, &mut scratch)).collect()
            })
            .collect();
        return nested.into_iter().flatten().collect();
    }
    map_many_seq(requests)
}

/// Always-sequential form of [`map_many`] (one scratch, request order).
/// The reference the parallel path is tested against.
pub fn map_many_seq(requests: &[MapRequest<'_>]) -> Vec<MappingOutcome> {
    let mut scratch = MapperScratch::new();
    requests
        .iter()
        .map(|r| run_request(r, &mut scratch))
        .collect()
}

/// Runs the full seven-mapper portfolio on one problem, in Figure 2's
/// order. With the `parallel` feature the mappers run concurrently
/// (one scratch each); outputs stay in portfolio order either way.
pub fn map_portfolio(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &PipelineConfig,
) -> Vec<(MapperKind, MappingOutcome)> {
    map_portfolio_strategy(fine, machine, alloc, cfg, MapStrategy::Direct)
}

/// [`map_portfolio`] with an explicit [`MapStrategy`]: under
/// [`MapStrategy::Multilevel`] the greedy family runs the multilevel
/// engine while the baselines keep their direct pipeline (they do not
/// decompose over a hierarchy).
pub fn map_portfolio_strategy(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    cfg: &PipelineConfig,
    strategy: MapStrategy,
) -> Vec<(MapperKind, MappingOutcome)> {
    let kinds = MapperKind::all();
    let run = |kind: MapperKind, scratch: &mut MapperScratch| {
        let request = MapRequest {
            tasks: fine,
            machine,
            alloc,
            kind,
            strategy,
            cfg,
        };
        run_request(&request, scratch)
    };
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        kinds
            .par_iter()
            .map(|&kind| (kind, run(kind, &mut MapperScratch::new())))
            .collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut scratch = MapperScratch::new();
        kinds
            .iter()
            .map(|&kind| (kind, run(kind, &mut scratch)))
            .collect()
    }
}

/// Composes the fine mapping out of grouping and coarse placement.
fn compose(group_of: &[u32], coarse_mapping: &[u32]) -> Vec<u32> {
    group_of
        .iter()
        .map(|&g| coarse_mapping[g as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::weighted_hops;
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    /// A ring of 32 fine tasks on 8 nodes × 4 procs.
    fn setup() -> (Machine, Allocation, TaskGraph) {
        let m = MachineConfig::small(&[4, 4], 1, 4).build();
        let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, 2));
        let tg = TaskGraph::from_messages(
            32,
            (0..32u32).flat_map(|i| [(i, (i + 1) % 32, 4.0), (i, (i + 5) % 32, 1.0)]),
            None,
        );
        (m, alloc, tg)
    }

    #[test]
    fn all_mappers_produce_feasible_fine_mappings() {
        let (m, alloc, tg) = setup();
        let cfg = PipelineConfig::default();
        for kind in MapperKind::all() {
            let out = map_tasks(&tg, &m, &alloc, kind, &cfg);
            validate_mapping(&tg, &alloc, &out.fine_mapping)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(out.group_of.len(), tg.num_tasks());
        }
    }

    #[test]
    fn grouping_is_exactly_balanced() {
        let (_, alloc, tg) = setup();
        let group = group_tasks(&tg, &alloc, &MlConfig::default());
        let mut load = vec![0.0; alloc.num_nodes()];
        for (t, &g) in group.iter().enumerate() {
            load[g as usize] += tg.task_weight(t as u32);
        }
        for (s, &l) in load.iter().enumerate() {
            assert!(
                l <= f64::from(alloc.procs(s)) + 1e-9,
                "group {s} overloaded: {l}"
            );
        }
    }

    #[test]
    fn uwh_never_trails_ug_on_wh() {
        let (m, alloc, tg) = setup();
        let cfg = PipelineConfig::default();
        let ug = map_tasks(&tg, &m, &alloc, MapperKind::Greedy, &cfg);
        let uwh = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &cfg);
        let wh_ug = weighted_hops(&tg, &m, &ug.fine_mapping);
        let wh_uwh = weighted_hops(&tg, &m, &uwh.fine_mapping);
        assert!(
            wh_uwh <= wh_ug + 1e-9,
            "UWH WH {wh_uwh} worse than UG WH {wh_ug}"
        );
    }

    #[test]
    fn umc_never_trails_ug_on_mc() {
        let (m, alloc, tg) = setup();
        let cfg = PipelineConfig::default();
        let ug = map_tasks(&tg, &m, &alloc, MapperKind::Greedy, &cfg);
        let umc = map_tasks(&tg, &m, &alloc, MapperKind::GreedyMc, &cfg);
        let mc_ug = evaluate(&tg, &m, &ug.fine_mapping).mc;
        let mc_umc = evaluate(&tg, &m, &umc.fine_mapping).mc;
        assert!(mc_umc <= mc_ug + 1e-9, "UMC MC {mc_umc} vs UG MC {mc_ug}");
    }

    #[test]
    fn tmap_fallback_rule_holds() {
        let (m, alloc, tg) = setup();
        let cfg = PipelineConfig::default();
        let tmap = map_tasks(&tg, &m, &alloc, MapperKind::Tmap, &cfg);
        let def = map_tasks(&tg, &m, &alloc, MapperKind::Def, &cfg);
        let tmap_mc = evaluate(&tg, &m, &tmap.fine_mapping).mc;
        let def_mc = evaluate(&tg, &m, &def.fine_mapping).mc;
        // Either it improved MC or it *is* the DEF mapping.
        if tmap.tmap_fell_back {
            assert_eq!(tmap.fine_mapping, def.fine_mapping);
        } else {
            assert!(tmap_mc < def_mc);
        }
    }

    #[test]
    fn def_is_instant_and_consecutive() {
        let (m, alloc, tg) = setup();
        let out = map_tasks(&tg, &m, &alloc, MapperKind::Def, &PipelineConfig::default());
        // Ranks 0..3 share the first allocated node.
        for t in 0..4 {
            assert_eq!(out.fine_mapping[t], alloc.node(0));
        }
        let _ = m;
    }

    #[test]
    fn fine_level_refinement_never_raises_wh() {
        let (m, alloc, tg) = setup();
        let coarse_cfg = PipelineConfig::default();
        let fine_cfg = PipelineConfig {
            fine_wh_refine: true,
            ..PipelineConfig::default()
        };
        let coarse = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &coarse_cfg);
        let fine = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &fine_cfg);
        let wh_coarse = weighted_hops(&tg, &m, &coarse.fine_mapping);
        let wh_fine = weighted_hops(&tg, &m, &fine.fine_mapping);
        assert!(
            wh_fine <= wh_coarse + 1e-9,
            "fine refinement raised WH: {wh_coarse} -> {wh_fine}"
        );
        validate_mapping(&tg, &alloc, &fine.fine_mapping).unwrap();
    }

    #[test]
    fn degradation_ladder_reaches_def_from_every_kind() {
        for kind in MapperKind::all() {
            let mut k = kind;
            let mut steps = 0;
            while let Some(next) = k.degrade() {
                k = next;
                steps += 1;
                assert!(steps <= 4, "ladder from {} does not terminate", kind.name());
            }
            assert_eq!(k, MapperKind::Def, "ladder floor from {}", kind.name());
        }
        assert_eq!(MapperKind::Def.degrade(), None);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let (m, alloc, tg) = setup();
        let cfg = PipelineConfig::default();
        let a = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &cfg);
        let b = map_tasks(&tg, &m, &alloc, MapperKind::GreedyWh, &cfg);
        assert_eq!(a.fine_mapping, b.fine_mapping);
    }
}
