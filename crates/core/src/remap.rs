//! Fault-tolerant incremental remapping.
//!
//! Production systems lose nodes, links degrade, and schedulers grow or
//! shrink allocations mid-run. Re-running the whole mapping pipeline on
//! every such event throws away an almost entirely valid placement; the
//! engine here instead *repairs* an existing mapping locally:
//!
//! 1. the [`ChurnEvent`]s are applied to the machine/allocation (a
//!    failed node leaves the allocation, a dead link forces the
//!    topology's failure-masked rebuild — see `umpa_topology::churn`);
//! 2. tasks whose node left the allocation are collected as the
//!    *displaced set* (entries already unplaced from an earlier
//!    [`RemapOutcome::Infeasible`] are picked up too, so repair after
//!    a `NodesAdded` event converges);
//! 3. each displaced task is re-placed greedily — Algorithm 1's
//!    `GETBESTNODE` seeded at the routers of its still-mapped
//!    neighbors, early-exiting BFS over the (failure-masked) router
//!    graph, minimum weighted-hop increase wins — heaviest tasks
//!    first so they still fit;
//! 4. a budget-bounded refinement pass polishes only the *frontier*:
//!    the displaced tasks plus their `frontier_hops`-ring in the task
//!    graph ([`wh_refine_frontier_scratch`], then optionally
//!    [`congestion_refine_frontier_scratch`]).
//!
//! Repair cost therefore scales with the damage neighborhood, not the
//! job size, and the warm path through a [`MapperScratch`] is
//! allocation-free for node churn and soft link degradation (hard link
//! failures rebuild the distance oracle and route cache — inherently
//! allocating, by design; see DESIGN.md §14).
//!
//! When the surviving allocation cannot hold every task, the engine
//! returns [`RemapOutcome::Infeasible`] with the unplaced tasks instead
//! of panicking; the mapping keeps `u32::MAX` for those entries so a
//! later repair (after capacity returns) can finish the job.

use umpa_ds::EpochMarker;
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

pub use umpa_topology::ChurnEvent;

use crate::cong_refine::{congestion_refine_frontier_scratch, CongRefineConfig};
use crate::gain::HopDist;
use crate::greedy::weighted_hops;
use crate::mapping::{fits, CAPACITY_EPS};
use crate::scratch::MapperScratch;
use crate::wh_refine::{wh_refine_frontier_scratch, WhRefineConfig};

/// Configuration of the incremental repair.
#[derive(Clone, Debug)]
pub struct RemapConfig {
    /// Task-graph rings around the displaced set included in the
    /// refinement frontier (0 = displaced tasks only).
    pub frontier_hops: u32,
    /// Frontier WH refinement; `max_passes` is the repair budget.
    /// `None` skips the WH polish.
    pub wh: Option<WhRefineConfig>,
    /// Frontier congestion polish; `max_moves` is the move budget.
    /// `None` (the default) skips it: congestion state setup routes
    /// the *whole* task graph, so enabling this costs as much as a
    /// full congestion pass regardless of frontier size — opt in
    /// after a churn burst, not on every repair.
    pub cong: Option<CongRefineConfig>,
}

impl Default for RemapConfig {
    fn default() -> Self {
        Self {
            frontier_hops: 1,
            wh: Some(WhRefineConfig {
                max_passes: 2,
                ..WhRefineConfig::default()
            }),
            cong: None,
        }
    }
}

impl RemapConfig {
    /// Repair-only configuration: re-place displaced tasks, skip both
    /// refinement polishes (the cheapest repair).
    pub fn placement_only() -> Self {
        Self {
            frontier_hops: 0,
            wh: None,
            cong: None,
        }
    }
}

/// What one repair did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RemapStats {
    /// Tasks that had to be re-placed (displaced by the events, plus
    /// any entries left unplaced by an earlier infeasible repair).
    pub displaced: usize,
    /// Tasks handed to the frontier refinement.
    pub frontier: usize,
    /// Weighted hops of the mapping *entering* the repair, measured
    /// after the events were applied and over the placed tasks only
    /// (edges with a displaced endpoint contribute nothing — they had
    /// no placement to measure). Together with [`wh_after`] this makes
    /// per-repair quality drift observable without re-deriving metrics.
    ///
    /// [`wh_after`]: RemapStats::wh_after
    pub wh_before: f64,
    /// Weighted hops of the repaired mapping.
    pub wh_after: f64,
}

impl RemapStats {
    /// Per-repair WH delta (`wh_after − wh_before`). Positive when the
    /// repair degraded the mapping (the usual case: displaced edges
    /// re-enter the sum and re-placement is local, not global);
    /// negative when the frontier polish more than paid for the
    /// damage. The drift supervisor accumulates these.
    pub fn wh_delta(&self) -> f64 {
        self.wh_after - self.wh_before
    }
}

/// Cumulative drift of a live mapping across a stream of repairs.
///
/// Frontier-local repair guarantees per-repair quality, not stream
/// quality: every repair pays a small WH premium over a from-scratch
/// re-map, and under *sustained* churn those premiums compound. This
/// accumulator makes the compounding visible — feed it every
/// [`RemapStats`] and a supervisor (e.g. `umpa-service`'s churn-drift
/// supervisor) can decide when the live mapping has drifted far enough
/// from from-scratch quality to warrant a re-map or polish.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RemapDrift {
    /// Repairs accumulated.
    pub repairs: u64,
    /// Cumulative displaced-task count across all repairs.
    pub displaced_total: u64,
    /// Sum of per-repair WH deltas (`Σ wh_delta()`): the net WH the
    /// stream of local repairs added on top of the pre-churn mapping.
    pub wh_delta_total: f64,
    /// WH of the live mapping after the most recent repair.
    pub wh_last: f64,
}

impl RemapDrift {
    /// Folds one repair into the running totals.
    pub fn note(&mut self, stats: &RemapStats) {
        self.repairs += 1;
        self.displaced_total += stats.displaced as u64;
        self.wh_delta_total += stats.wh_delta();
        self.wh_last = stats.wh_after;
    }

    /// Mean displaced tasks per repair (0 when nothing accumulated).
    pub fn mean_displaced(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.displaced_total as f64 / self.repairs as f64
        }
    }

    /// Resets the totals (e.g. after a supervisor polish restored
    /// from-scratch quality).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Result of [`remap_incremental`].
#[derive(Clone, Debug, PartialEq)]
pub enum RemapOutcome {
    /// Every task is placed; the mapping validates feasible.
    Repaired(RemapStats),
    /// The surviving allocation cannot hold every task. The listed
    /// tasks stay `u32::MAX` in the mapping (everything else remains
    /// feasibly placed); repair again once capacity returns.
    Infeasible {
        /// Tasks left unplaced, in repair order (heaviest first).
        unplaced: Vec<u32>,
    },
}

impl RemapOutcome {
    /// Whether the mapping was fully repaired.
    pub fn is_repaired(&self) -> bool {
        matches!(self, RemapOutcome::Repaired(_))
    }

    /// Repair statistics (`None` when infeasible).
    pub fn stats(&self) -> Option<&RemapStats> {
        match self {
            RemapOutcome::Repaired(s) => Some(s),
            RemapOutcome::Infeasible { .. } => None,
        }
    }
}

/// Reusable buffers of the repair engine; lives in
/// [`MapperScratch::remap`]. Warm repairs are allocation-free for node
/// churn and soft link degradation.
#[derive(Default)]
pub struct RemapScratch {
    displaced: Vec<u32>,
    order: Vec<u32>,
    unplaced: Vec<u32>,
    frontier: Vec<u32>,
    in_frontier: EpochMarker,
    free: Vec<f64>,
    sources: Vec<u32>,
    bfs_tasks: Bfs,
    bfs_routers: Bfs,
}

impl RemapScratch {
    /// Creates an empty scratch; buffers are sized on first repair.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Applies a batch of churn events to the machine/allocation *without*
/// repairing any mapping — the replay entry point shared by the service
/// when no resident job exists and by crash-recovery journal replay
/// (`umpa-service`), so both walk the exact event-application path
/// [`remap_incremental`] walks and land on bit-identical machine state.
/// Returns the total number of allocation slots the batch changed.
pub fn apply_events(machine: &mut Machine, alloc: &mut Allocation, events: &[ChurnEvent]) -> usize {
    let mut changed = 0usize;
    for ev in events {
        changed += ev.apply(machine, alloc);
    }
    changed
}

/// Applies `events` to the machine/allocation and repairs `mapping` in
/// place. See the module docs for the algorithm; returns what happened.
///
/// `mapping` must have one entry per task; entries may be `u32::MAX`
/// (unplaced, e.g. from an earlier infeasible repair). On
/// [`RemapOutcome::Repaired`] the mapping validates feasible; on
/// [`RemapOutcome::Infeasible`] the placed remainder is feasible and
/// the unplaced entries stay `u32::MAX`.
pub fn remap_incremental(
    tg: &TaskGraph,
    machine: &mut Machine,
    alloc: &mut Allocation,
    mapping: &mut [u32],
    events: &[ChurnEvent],
    cfg: &RemapConfig,
    scratch: &mut MapperScratch,
) -> RemapOutcome {
    // tidy-allow: panic-freedom (API precondition checked on entry, before any event is applied or state touched; the never-panic contract covers the repair itself)
    assert_eq!(mapping.len(), tg.num_tasks(), "mapping/task-count mismatch");
    apply_events(machine, alloc, events);
    let machine = &*machine;
    let MapperScratch {
        remap, wh, cong, ..
    } = scratch;
    let n = tg.num_tasks();

    // Displaced set: churned off the allocation, plus anything already
    // unplaced. Short-circuit order matters — `contains` on u32::MAX
    // would be out of range.
    remap.displaced.clear();
    for (t, node) in mapping.iter_mut().enumerate() {
        if *node == u32::MAX || !alloc.contains(*node) {
            *node = u32::MAX;
            remap.displaced.push(t as u32);
        }
    }

    // Pre-repair quality over the placed remainder (drift observability
    // — see RemapStats::wh_before). One read-only O(E) sweep; edges
    // with a displaced endpoint have no placement to measure.
    let dist = HopDist::new(machine);
    let wh_before = placed_weighted_hops(tg, &dist, mapping);

    // Free capacity of the surviving placement. Surviving slots kept
    // their processor counts, so survivors still fit.
    remap.free.clear();
    remap
        .free
        .extend((0..alloc.num_nodes()).map(|s| f64::from(alloc.procs(s))));
    for (t, &node) in mapping.iter().enumerate() {
        if node != u32::MAX {
            // tidy-allow: panic-freedom (unreachable: the displaced loop above just reset every entry not in the allocation to u32::MAX)
            let slot = alloc.slot_of(node).expect("surviving entry is allocated");
            remap.free[slot as usize] -= tg.task_weight(t as u32);
        }
    }

    // Aggregate capacity pre-check: a typed outcome instead of a panic
    // deep inside placement. (Fragmentation can still defeat
    // placement below; that path collects its own unplaced list.)
    let need: f64 = remap.displaced.iter().map(|&t| tg.task_weight(t)).sum();
    let have: f64 = remap.free.iter().map(|f| f.max(0.0)).sum();
    if need > have + CAPACITY_EPS {
        return RemapOutcome::Infeasible {
            // tidy-allow: hot-path-alloc (cold infeasible exit; the outcome must own its unplaced list because the scratch is reused)
            unplaced: remap.displaced.clone(),
        };
    }

    // Deterministic repair order: heaviest first (so they still fit),
    // ids break ties.
    remap.order.clear();
    remap.order.extend_from_slice(&remap.displaced);
    remap.order.sort_unstable_by(|&a, &b| {
        // total_cmp: same order as partial_cmp for the finite weights
        // the graph builder admits, and structurally panic-free.
        tg.task_weight(b)
            .total_cmp(&tg.task_weight(a))
            .then(a.cmp(&b))
    });

    // Greedy local re-placement seeded around the damage.
    remap.unplaced.clear();
    remap.bfs_routers.ensure(machine.num_routers());
    for i in 0..remap.order.len() {
        let t = remap.order[i];
        match place_one(
            tg,
            machine,
            alloc,
            &dist,
            mapping,
            &remap.free,
            &mut remap.bfs_routers,
            &mut remap.sources,
            t,
        ) {
            Some(node) => {
                // tidy-allow: panic-freedom (unreachable: place_one only returns nodes drawn from the allocation's slot list)
                let slot = alloc.slot_of(node).expect("placement is allocated");
                remap.free[slot as usize] -= tg.task_weight(t);
                mapping[t as usize] = node;
            }
            None => remap.unplaced.push(t),
        }
    }
    if !remap.unplaced.is_empty() {
        return RemapOutcome::Infeasible {
            // tidy-allow: hot-path-alloc (cold infeasible exit; the outcome must own its unplaced list because the scratch is reused)
            unplaced: remap.unplaced.clone(),
        };
    }

    // Refinement frontier: the displaced tasks plus `frontier_hops`
    // rings of their task-graph neighborhood (BFS levels).
    remap.frontier.clear();
    remap.in_frontier.ensure_len(n);
    remap.in_frontier.reset();
    if !remap.displaced.is_empty() {
        remap.bfs_tasks.ensure(n);
        remap.bfs_tasks.start(remap.displaced.iter().copied());
        while let Some(ev) = remap.bfs_tasks.next(tg.symmetric()) {
            if ev.level > cfg.frontier_hops {
                break;
            }
            remap.in_frontier.mark(ev.vertex as usize);
            remap.frontier.push(ev.vertex);
        }
    }

    // Budgeted polish confined to the frontier.
    let mut wh_after = None;
    if !remap.frontier.is_empty() {
        if let Some(wh_cfg) = &cfg.wh {
            wh_after = Some(wh_refine_frontier_scratch(
                tg,
                machine,
                alloc,
                mapping,
                &remap.frontier,
                wh_cfg,
                wh,
            ));
        }
        if let Some(cong_cfg) = &cfg.cong {
            let in_frontier = &remap.in_frontier;
            congestion_refine_frontier_scratch(tg, machine, alloc, mapping, cong_cfg, cong, |t| {
                in_frontier.is_marked(t as usize)
            });
            wh_after = None; // congestion swaps change WH
        }
    }
    let wh_after = wh_after.unwrap_or_else(|| weighted_hops(tg, machine, mapping));
    // Allocation-free feasibility invariants (validate_mapping builds a
    // load vector, which would break the warm zero-alloc contract in
    // debug builds): everything placed on the allocation, no slot
    // driven below zero free capacity.
    debug_assert!(mapping.iter().all(|&node| alloc.contains(node)));
    debug_assert!(remap.free.iter().all(|&f| f >= -CAPACITY_EPS));
    RemapOutcome::Repaired(RemapStats {
        displaced: remap.displaced.len(),
        frontier: remap.frontier.len(),
        wh_before,
        wh_after,
    })
}

/// Weighted hops over the *placed* tasks of a possibly partial mapping:
/// edges with an unplaced (`u32::MAX`) endpoint contribute nothing.
/// The drift-observability sibling of
/// [`weighted_hops`](crate::greedy::weighted_hops), which requires a
/// fully placed mapping.
fn placed_weighted_hops(tg: &TaskGraph, dist: &HopDist<'_>, mapping: &[u32]) -> f64 {
    tg.messages()
        .map(|(s, t, c)| {
            let (a, b) = (mapping[s as usize], mapping[t as usize]);
            if a == u32::MAX || b == u32::MAX {
                0.0
            } else {
                f64::from(dist.node_hops(a, b)) * c
            }
        })
        .sum()
}

/// `GETBESTNODE` for one displaced task: early-exiting BFS over the
/// (failure-masked) router graph from the routers of its still-mapped
/// neighbors; among the first feasible level, minimum WH increase
/// wins. Falls back to a linear slot scan when the task has no mapped
/// neighbor or failures disconnected its BFS component from every
/// feasible node. Returns `None` only when nothing fits anywhere.
#[allow(clippy::too_many_arguments)]
fn place_one(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    dist: &HopDist<'_>,
    mapping: &[u32],
    free: &[f64],
    bfs: &mut Bfs,
    sources: &mut Vec<u32>,
    t: u32,
) -> Option<u32> {
    let w = tg.task_weight(t);
    sources.clear();
    for &nb in tg.symmetric().neighbors(t) {
        let m = mapping[nb as usize];
        if m != u32::MAX {
            sources.push(machine.router_of(m));
        }
    }
    let wh_inc = |node: u32| -> f64 {
        tg.symmetric()
            .edges(t)
            .filter(|&(nb, _)| mapping[nb as usize] != u32::MAX)
            .map(|(nb, c)| f64::from(dist.node_hops(node, mapping[nb as usize])) * c)
            .sum()
    };
    let mut best: Option<(f64, u32)> = None;
    // When the allocation is small relative to the router graph, an
    // exhaustive scan over the allocated nodes (exact minimum WH
    // increase over *every* feasible node) is both cheaper and at
    // least as good as a BFS that may sweep a mostly-unallocated
    // machine before its first feasible hit. The BFS wins on dense
    // allocations, where it early-exits within a level or two.
    let deg = tg.symmetric().neighbors(t).len();
    let scan_cost = alloc.num_nodes().saturating_mul(deg + 1);
    let use_bfs = !sources.is_empty() && scan_cost >= machine.router_graph().num_vertices() / 2;
    if use_bfs {
        bfs.start(sources.iter().copied());
        let mut hit_level: Option<u32> = None;
        while let Some(ev) = bfs.next(machine.router_graph()) {
            if let Some(l) = hit_level {
                if ev.level > l {
                    break;
                }
            }
            for node in machine.nodes_of_router(ev.vertex) {
                let Some(slot) = alloc.slot_of(node) else {
                    continue;
                };
                if !fits(free[slot as usize], w) {
                    continue;
                }
                hit_level = Some(ev.level);
                let inc = wh_inc(node);
                if best.as_ref().is_none_or(|&(b, _)| inc < b) {
                    best = Some((inc, node));
                }
            }
        }
    }
    if best.is_none() {
        // No mapped neighbor (spread onto the emptiest slot) or the BFS
        // component has no feasible node (minimize the WH increase over
        // the whole allocation).
        let has_nb = !sources.is_empty();
        for (s, &f) in free.iter().enumerate().take(alloc.num_nodes()) {
            if !fits(f, w) {
                continue;
            }
            let node = alloc.node(s);
            let score = if has_nb { wh_inc(node) } else { -f };
            if best.as_ref().is_none_or(|&(b, _)| score < b) {
                best = Some((score, node));
            }
        }
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_map, GreedyConfig};
    use crate::mapping::validate_mapping;
    use umpa_topology::{AllocSpec, MachineConfig};

    fn setup(nodes: usize, tasks: usize) -> (Machine, Allocation, TaskGraph, Vec<u32>) {
        let machine = MachineConfig::small(&[4, 4], 1, 2).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::sparse(nodes, 7));
        let tg = TaskGraph::from_messages(
            tasks,
            (0..tasks as u32).map(|i| (i, (i + 1) % tasks as u32, 1.0 + f64::from(i % 3))),
            None,
        );
        let mapping = greedy_map(&tg, &machine, &alloc, &GreedyConfig::default());
        (machine, alloc, tg, mapping)
    }

    #[test]
    fn node_failure_is_repaired_feasibly() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(8, 12);
        let victim = mapping[0];
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodeFailed { node: victim }],
            &RemapConfig::default(),
            &mut scratch,
        );
        let stats = out.stats().expect("repairable");
        assert!(stats.displaced >= 1);
        assert!(stats.frontier >= stats.displaced);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
        assert!(!alloc.contains(victim));
        assert!(mapping.iter().all(|&n| n != victim));
    }

    #[test]
    fn exact_fit_losing_a_node_is_infeasible_then_recovers() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(6, 12); // 12 tasks / 12 procs
        let victim = alloc.node(0);
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodeFailed { node: victim }],
            &RemapConfig::default(),
            &mut scratch,
        );
        let RemapOutcome::Infeasible { unplaced } = out else {
            panic!("exact fit minus one node must be infeasible");
        };
        assert!(!unplaced.is_empty());
        for &t in &unplaced {
            assert_eq!(mapping[t as usize], u32::MAX);
        }
        // Capacity returns: the next repair finishes the job.
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodesAdded {
                nodes: vec![victim],
            }],
            &RemapConfig::default(),
            &mut scratch,
        );
        assert!(out.is_repaired());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn failing_every_node_reports_all_tasks_unplaced() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(6, 6);
        let nodes: Vec<u32> = alloc.nodes().to_vec();
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodesRemoved { nodes }],
            &RemapConfig::default(),
            &mut scratch,
        );
        let RemapOutcome::Infeasible { unplaced } = out else {
            panic!("empty allocation cannot hold tasks");
        };
        assert_eq!(unplaced.len(), tg.num_tasks());
        assert_eq!(alloc.num_nodes(), 0);
        assert!(mapping.iter().all(|&n| n == u32::MAX));
    }

    #[test]
    fn empty_event_list_on_intact_mapping_is_a_noop_repair() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(8, 12);
        let before = mapping.clone();
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[],
            &RemapConfig::default(),
            &mut scratch,
        );
        let stats = out.stats().expect("nothing to repair");
        assert_eq!(stats.displaced, 0);
        assert_eq!(stats.frontier, 0);
        assert_eq!(mapping, before);
    }

    #[test]
    fn stale_failure_of_unallocated_node_is_a_noop() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(8, 12);
        let outside = (0..machine.num_nodes() as u32)
            .find(|&n| !alloc.contains(n))
            .unwrap();
        let before = mapping.clone();
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[ChurnEvent::NodeFailed { node: outside }],
            &RemapConfig::default(),
            &mut scratch,
        );
        assert_eq!(out.stats().unwrap().displaced, 0);
        assert_eq!(mapping, before);
    }

    #[test]
    fn drift_stats_expose_per_repair_wh_delta() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(8, 12);
        let mut scratch = MapperScratch::new();
        let mut drift = RemapDrift::default();
        let mut expected_delta = 0.0;
        let mut expected_displaced = 0u64;
        for i in 0..3 {
            let victim = mapping[i];
            let out = remap_incremental(
                &tg,
                &mut machine,
                &mut alloc,
                &mut mapping,
                &[ChurnEvent::NodeFailed { node: victim }],
                &RemapConfig::default(),
                &mut scratch,
            );
            let stats = out.stats().expect("repairable");
            // wh_before is the placed-pairs WH, wh_after the full WH of
            // the repaired mapping; the delta is their difference.
            assert!(stats.wh_before >= 0.0);
            assert!((stats.wh_delta() - (stats.wh_after - stats.wh_before)).abs() < 1e-12);
            expected_delta += stats.wh_delta();
            expected_displaced += stats.displaced as u64;
            drift.note(stats);
            // Return capacity so the next failure stays repairable.
            let back = [ChurnEvent::NodesAdded {
                nodes: vec![victim],
            }];
            let out = remap_incremental(
                &tg,
                &mut machine,
                &mut alloc,
                &mut mapping,
                &back,
                &RemapConfig::default(),
                &mut scratch,
            );
            expected_delta += out.stats().unwrap().wh_delta();
            drift.note(out.stats().unwrap());
        }
        assert_eq!(drift.repairs, 6);
        assert_eq!(drift.displaced_total, expected_displaced);
        assert!((drift.wh_delta_total - expected_delta).abs() < 1e-9);
        assert!(drift.mean_displaced() > 0.0);
        assert_eq!(
            drift.wh_last,
            crate::greedy::weighted_hops(&tg, &machine, &mapping)
        );
        drift.reset();
        assert_eq!(drift, RemapDrift::default());
    }

    #[test]
    fn intact_repair_has_zero_wh_delta() {
        let (mut machine, mut alloc, tg, mut mapping) = setup(8, 12);
        let mut scratch = MapperScratch::new();
        let out = remap_incremental(
            &tg,
            &mut machine,
            &mut alloc,
            &mut mapping,
            &[],
            &RemapConfig::default(),
            &mut scratch,
        );
        let stats = out.stats().unwrap();
        // Nothing displaced: before and after measure the same mapping.
        assert_eq!(stats.wh_before, stats.wh_after);
        assert_eq!(stats.wh_delta(), 0.0);
    }

    #[test]
    fn repair_is_deterministic() {
        let (machine, alloc, tg, mapping) = setup(8, 12);
        let victims = [mapping[0], mapping[5]];
        let run = || {
            let (mut m, mut a, mut map) = (machine.clone(), alloc.clone(), mapping.clone());
            let mut scratch = MapperScratch::new();
            let events: Vec<ChurnEvent> = victims
                .iter()
                .map(|&v| ChurnEvent::NodeFailed { node: v })
                .collect();
            remap_incremental(
                &tg,
                &mut m,
                &mut a,
                &mut map,
                &events,
                &RemapConfig::default(),
                &mut scratch,
            );
            map
        };
        assert_eq!(run(), run());
    }
}
