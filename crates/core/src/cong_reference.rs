//! The **pre-rewrite** congestion-refinement engine, preserved as the
//! differential-testing reference for the rewritten hot path in
//! [`crate::cong_refine`].
//!
//! This is the route-caching PR's frozen copy of the engine as it stood
//! before: every probe re-routes the affected edges twice (old and new
//! placement), deduplicates edges and link deltas with `O(k²)` linear
//! scans, and evaluates the virtual swap by re-keying the congestion
//! heap and rolling it back. The rewritten engine must stay
//! **bit-identical** to this one — same probe order, same accept rule,
//! same final mapping and `(MC, AC)` — which
//! `tests/cong_differential.rs` asserts across the backend × preset
//! matrix, with the route cache on and off.
//!
//! Not part of the public API surface (`#[doc(hidden)]`); nothing in
//! the serving paths calls it. The `commTasks` registry
//! ([`LinkTaskSets`]) is shared with the live engine — its semantics
//! are identical in both and it was not part of the rewrite.

use umpa_ds::{IndexedMaxHeap, SlotBuckets};
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::cong_refine::{CongRefineConfig, CongestionKind};
use crate::eps::CONG_EPS;
use crate::gain::HopDist;
use crate::mapping::fits;

/// The pre-rewrite `commTasks` registry, verbatim: a per-link task-id
/// **multiset** (one occurrence per incident edge routed over the
/// link) with deferred normalization. The live engine now stores edge
/// ids instead; this copy stays frozen with the rest of the reference.
#[derive(Default)]
struct LinkTaskSets {
    items: Vec<Vec<u32>>,
    removed: Vec<Vec<u32>>,
    dirty: Vec<bool>,
}

impl LinkTaskSets {
    fn reset(&mut self, n: usize) {
        for s in &mut self.items {
            s.clear();
        }
        for s in &mut self.removed {
            s.clear();
        }
        self.dirty.clear();
        self.dirty.resize(self.items.len().max(n), false);
        if n > self.items.len() {
            self.items.resize_with(n, Vec::new);
            self.removed.resize_with(n, Vec::new);
        }
    }

    fn insert(&mut self, link: usize, t: u32) {
        self.items[link].push(t);
        self.dirty[link] = true;
    }

    fn remove(&mut self, link: usize, t: u32) {
        self.removed[link].push(t);
        self.dirty[link] = true;
        if self.removed[link].len() >= 16 && 2 * self.removed[link].len() >= self.items[link].len()
        {
            self.normalize(link);
        }
    }

    fn normalize(&mut self, link: usize) {
        if !self.dirty[link] {
            return;
        }
        let v = &mut self.items[link];
        let r = &mut self.removed[link];
        v.sort_unstable();
        r.sort_unstable();
        let mut w = 0usize;
        let mut j = 0usize;
        for i in 0..v.len() {
            let x = v[i];
            while j < r.len() && r[j] < x {
                j += 1;
            }
            if j < r.len() && r[j] == x {
                j += 1;
                continue;
            }
            v[w] = x;
            w += 1;
        }
        v.truncate(w);
        r.clear();
        self.dirty[link] = false;
    }

    fn collect_members_into(&mut self, link: usize, out: &mut Vec<u32>) {
        self.normalize(link);
        out.clear();
        let mut last = u32::MAX;
        for &t in &self.items[link] {
            if t != last {
                out.push(t);
                last = t;
            }
        }
    }
}

/// Runs the pre-rewrite congestion refinement (fresh internal buffers;
/// the reference is a test oracle, not a serving path). Returns the
/// final `(max, avg)` congestion like
/// [`crate::cong_refine::congestion_refine`].
pub fn congestion_refine_reference(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
) -> (f64, f64) {
    let mut scratch = RefScratch::default();
    let mut state = RefState::new(tg, machine, alloc, mapping, cfg.kind, &mut scratch);
    let mut moves = 0u32;
    'outer: while moves < cfg.max_moves {
        let Some((emc, top_key)) = state.heap.peek() else {
            break;
        };
        if top_key <= 0.0 {
            break; // no congestion at all
        }
        state
            .comm_tasks
            .collect_members_into(emc as usize, state.tasks);
        for i in 0..state.tasks.len() {
            let tmc = state.tasks[i];
            if state.try_improve_task(tmc, cfg.delta) {
                moves += 1;
                continue 'outer;
            }
        }
        break; // no improvement for the most congested link → stop
    }
    (state.current_max(), state.current_avg())
}

/// The pre-rewrite `CongScratch`, private to the reference.
#[derive(Default)]
struct RefScratch {
    heap: IndexedMaxHeap,
    traffic: Vec<f64>,
    inv_cost: Vec<f64>,
    comm_tasks: LinkTaskSets,
    buckets: SlotBuckets,
    free: Vec<f64>,
    bfs: Bfs,
    links: Vec<u32>,
    edges: Vec<(u32, u32, f64)>,
    deltas: Vec<(u32, f64)>,
    tasks: Vec<u32>,
    cand: Vec<(f64, u32)>,
    sources: Vec<u32>,
}

/// The pre-rewrite `CongState`, verbatim.
struct RefState<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    dist: HopDist<'a>,
    mapping: &'a mut [u32],
    kind: CongestionKind,
    heap: &'a mut IndexedMaxHeap,
    traffic: &'a mut Vec<f64>,
    inv_cost: &'a mut Vec<f64>,
    comm_tasks: &'a mut LinkTaskSets,
    sum_key: f64,
    used_links: usize,
    buckets: &'a mut SlotBuckets,
    free: &'a mut Vec<f64>,
    bfs: &'a mut Bfs,
    links: &'a mut Vec<u32>,
    edges: &'a mut Vec<(u32, u32, f64)>,
    deltas: &'a mut Vec<(u32, f64)>,
    tasks: &'a mut Vec<u32>,
    cand: &'a mut Vec<(f64, u32)>,
    sources: &'a mut Vec<u32>,
}

impl<'a> RefState<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        mapping: &'a mut [u32],
        kind: CongestionKind,
        scratch: &'a mut RefScratch,
    ) -> Self {
        let RefScratch {
            heap,
            traffic,
            inv_cost,
            comm_tasks,
            buckets,
            free,
            bfs,
            links,
            edges,
            deltas,
            tasks,
            cand,
            sources,
        } = scratch;
        let nl = machine.num_links();
        inv_cost.clear();
        inv_cost.extend((0..nl as u32).map(|l| match kind {
            CongestionKind::Volume => 1.0 / machine.link_bandwidth(l),
            CongestionKind::Messages => 1.0,
        }));
        buckets.reset(alloc.num_nodes(), tg.num_tasks());
        free.clear();
        free.extend((0..alloc.num_nodes()).map(|s| f64::from(alloc.procs(s))));
        for (t, &node) in mapping.iter().enumerate() {
            let slot = alloc.slot_of(node).expect("mapping must be feasible") as usize;
            buckets.insert(slot, t as u32);
            free[slot] -= tg.task_weight(t as u32);
        }
        traffic.clear();
        traffic.resize(nl, 0.0);
        comm_tasks.reset(nl);
        heap.reset(nl);
        bfs.ensure(machine.num_routers());
        let mut s = Self {
            tg,
            machine,
            alloc,
            dist: HopDist::new(machine),
            mapping,
            kind,
            heap,
            traffic,
            inv_cost,
            comm_tasks,
            sum_key: 0.0,
            used_links: 0,
            buckets,
            free,
            bfs,
            links,
            edges,
            deltas,
            tasks,
            cand,
            sources,
        };
        // Initial routing of every message (INITCONG).
        for (src, dst, c) in s.tg.messages() {
            let weight = s.edge_weight(c);
            let (a, b) = (s.mapping[src as usize], s.mapping[dst as usize]);
            s.links.clear();
            s.machine.route_links(a, b, s.links);
            for i in 0..s.links.len() {
                let l = s.links[i] as usize;
                if s.traffic[l] == 0.0 {
                    s.used_links += 1;
                }
                s.traffic[l] += weight;
                s.sum_key += weight * s.inv_cost[l];
                s.comm_tasks.insert(l, src);
                s.comm_tasks.insert(l, dst);
            }
        }
        for l in 0..nl as u32 {
            s.heap
                .push(l, s.traffic[l as usize] * s.inv_cost[l as usize]);
        }
        s
    }

    #[inline]
    fn edge_weight(&self, c: f64) -> f64 {
        match self.kind {
            CongestionKind::Volume => c,
            CongestionKind::Messages => c,
        }
    }

    fn current_max(&self) -> f64 {
        self.heap.peek().map_or(0.0, |(_, k)| k)
    }

    fn current_avg(&self) -> f64 {
        if self.used_links == 0 {
            0.0
        } else {
            self.sum_key / self.used_links as f64
        }
    }

    fn collect_affected_edges(&mut self, t1: u32, t2: Option<u32>) {
        self.edges.clear();
        fn push(out: &mut Vec<(u32, u32, f64)>, s: u32, d: u32, c: f64) {
            if !out.iter().any(|&(a, b, _)| a == s && b == d) {
                out.push((s, d, c));
            }
        }
        for t in std::iter::once(t1).chain(t2) {
            for (d, c) in self.tg.out_edges(t) {
                push(self.edges, t, d, c);
            }
            for (sr, c) in self.tg.in_edges(t) {
                push(self.edges, sr, t, c);
            }
        }
    }

    fn collect_deltas(&mut self, t1: u32, t2: Option<u32>, node2: u32) {
        let node1 = self.mapping[t1 as usize];
        self.deltas.clear();
        fn add(deltas: &mut Vec<(u32, f64)>, link: u32, d: f64) {
            match deltas.iter_mut().find(|e| e.0 == link) {
                Some(e) => e.1 += d,
                None => deltas.push((link, d)),
            }
        }
        // Old routes (current mapping) …
        for i in 0..self.edges.len() {
            let (s, d, c) = self.edges[i];
            let w = self.edge_weight(c);
            let (a, b) = (self.mapping[s as usize], self.mapping[d as usize]);
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                add(self.deltas, self.links[j], -w);
            }
        }
        // … and new routes under the virtual relocation.
        for i in 0..self.edges.len() {
            let (s, d, c) = self.edges[i];
            let w = self.edge_weight(c);
            let node_of = |t: u32| -> u32 {
                if t == t1 {
                    node2
                } else if Some(t) == t2 {
                    node1
                } else {
                    self.mapping[t as usize]
                }
            };
            let (a, b) = (node_of(s), node_of(d));
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                add(self.deltas, self.links[j], w);
            }
        }
        self.deltas.retain(|&(_, d)| d != 0.0);
    }

    fn apply_deltas(&mut self, negate: bool) -> (f64, f64) {
        let sign = if negate { -1.0 } else { 1.0 };
        for i in 0..self.deltas.len() {
            let (l, raw) = self.deltas[i];
            let d = sign * raw;
            let li = l as usize;
            let before = self.traffic[li];
            let after = before + d;
            if before == 0.0 && after > 0.0 {
                self.used_links += 1;
            } else if before > 0.0 && after <= CONG_EPS {
                self.used_links -= 1;
            }
            self.traffic[li] = if after.abs() < CONG_EPS { 0.0 } else { after };
            self.sum_key += d * self.inv_cost[li];
            self.heap
                .change_key(l, self.traffic[li] * self.inv_cost[li]);
        }
        (self.current_max(), self.current_avg())
    }

    fn update_comm_tasks(&mut self, remove: bool) {
        for i in 0..self.edges.len() {
            let (s, d, _) = self.edges[i];
            let (a, b) = (self.mapping[s as usize], self.mapping[d as usize]);
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                let l = self.links[j] as usize;
                if remove {
                    self.comm_tasks.remove(l, s);
                    self.comm_tasks.remove(l, d);
                } else {
                    self.comm_tasks.insert(l, s);
                    self.comm_tasks.insert(l, d);
                }
            }
        }
    }

    fn probe(
        &mut self,
        tmc: u32,
        t2: Option<u32>,
        node1: u32,
        node2: u32,
        mc: f64,
        ac: f64,
    ) -> bool {
        self.collect_affected_edges(tmc, t2);
        self.collect_deltas(tmc, t2, node2);
        let (new_mc, new_ac) = self.apply_deltas(false);
        let improves =
            new_mc < mc - CONG_EPS || (new_mc <= mc + CONG_EPS && new_ac < ac - CONG_EPS);
        if improves {
            // Commit: fix commTasks (old routes removed with the
            // *pre-move* mapping), then move tasks.
            self.apply_deltas(true);
            self.update_comm_tasks(true);
            self.apply_deltas(false);
            self.relocate(tmc, t2, node1, node2);
            self.update_comm_tasks(false);
            return true;
        }
        // Roll back the virtual swap.
        self.apply_deltas(true);
        false
    }

    fn try_improve_task(&mut self, tmc: u32, delta: usize) -> bool {
        let node1 = self.mapping[tmc as usize];
        let w1 = self.tg.task_weight(tmc);
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        self.sources.clear();
        for &nb in self.tg.symmetric().neighbors(tmc) {
            self.sources
                .push(self.machine.router_of(self.mapping[nb as usize]));
        }
        if self.sources.is_empty() {
            return false;
        }
        let (mc, ac) = (self.current_max(), self.current_avg());
        self.bfs.start(self.sources.iter().copied());
        let mut evaluated = 0usize;
        while let Some(ev) = self.bfs.next(self.machine.router_graph()) {
            for node2 in self.machine.nodes_of_router(ev.vertex) {
                if node2 == node1 {
                    continue;
                }
                let Some(slot2) = self.alloc.slot_of(node2) else {
                    continue;
                };
                let slot2 = slot2 as usize;
                self.cand.clear();
                for t in self.buckets.iter(slot2) {
                    let w2 = self.tg.task_weight(t);
                    if !fits(self.free[slot2] + w2, w1) || !fits(self.free[slot1] + w1, w2) {
                        continue;
                    }
                    let damage = -self
                        .dist
                        .swap_gain(self.tg, self.mapping, tmc, Some(t), node2);
                    self.cand.push((damage, t));
                }
                self.cand
                    .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for i in 0..self.cand.len() {
                    let t = self.cand[i].1;
                    if self.probe(tmc, Some(t), node1, node2, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
                if fits(self.free[slot2], w1) {
                    if self.probe(tmc, None, node1, node2, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
            }
        }
        false
    }

    fn relocate(&mut self, t1: u32, t2: Option<u32>, node1: u32, node2: u32) {
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        let slot2 = self.alloc.slot_of(node2).unwrap() as usize;
        let w1 = self.tg.task_weight(t1);
        self.mapping[t1 as usize] = node2;
        self.buckets.relocate(slot1, slot2, t1);
        self.free[slot1] += w1;
        self.free[slot2] -= w1;
        if let Some(t) = t2 {
            let w2 = self.tg.task_weight(t);
            self.mapping[t as usize] = node1;
            self.buckets.relocate(slot2, slot1, t);
            self.free[slot2] += w2;
            self.free[slot1] -= w2;
        }
    }
}
