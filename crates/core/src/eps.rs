//! The engine's float tolerances, consolidated in one module.
//!
//! Every accept rule and feasibility check in the mapping engine
//! compares floats with a tolerance. Two call sites inlining different
//! literals for the *same* rule is exactly the kind of drift the
//! differential harnesses exist to catch dynamically — and the
//! `eps-discipline` lint in `umpa-tidy` now catches statically: any
//! scientific-notation literal with a negative exponent outside this
//! module fails CI. If a new tolerance is genuinely needed, define and
//! document it here and reference it by name.
//!
//! The values themselves are frozen: `cong_reference` (the bit-exact
//! frozen model of the congestion refiner) reads the same constants, so
//! changing one here changes both sides of the differential harness in
//! lockstep — deliberately. A change that should *not* apply to the
//! reference is a semantic change and must fork the constant.

/// Absolute tolerance of every capacity comparison in the mapping
/// engine. Task weights and node capacities are small integers (or sums
/// of them) represented as `f64`, so repeated increment/decrement can
/// drift by ULPs; comparisons allow this much slack so a task that
/// exactly fills a node still "fits".
pub const CAPACITY_EPS: f64 = 1e-9;

/// Tolerance of the congestion refiner's accept rule and traffic
/// zero-clamp. Link congestion values are ratios of accumulated traffic
/// to bandwidth; a move is an improvement only if it beats the current
/// maximum by more than this, and residual traffic below this is
/// clamped to exactly zero so emptied links leave the heap. Shared by
/// `cong_refine` and the frozen `cong_reference` so the differential
/// harness compares like with like.
pub const CONG_EPS: f64 = 1e-12;

/// Minimum weighted-hop gain for the WH refiner to accept a move or
/// swap. Gains at or below this are noise from incremental float
/// updates; accepting them would churn placements without improving the
/// metric and could cycle.
pub const GAIN_EPS: f64 = 1e-9;

/// Relative tolerance of the WH refiner's debug drift check: the
/// incrementally maintained weighted-hop total must stay within
/// `DRIFT_EPS * (1 + WH)` of a from-scratch recomputation. Much looser
/// than the accept tolerances because it bounds accumulated error over
/// an entire refinement pass, not a single comparison.
pub const DRIFT_EPS: f64 = 1e-6;
