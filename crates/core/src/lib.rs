//! `umpa-core` — the paper's contribution: fast, high-quality
//! topology-aware task mapping.
//!
//! Implements the three algorithms of *Deveci, Kaya, Uçar, Çatalyürek,
//! IPDPS 2015* plus the baselines they are evaluated against:
//!
//! * [`greedy`] — **Algorithm 1**, greedy graph-growing mapping (`UG`):
//!   seeds the highest-traffic task, then repeatedly places the
//!   unmapped task with maximum connectivity to the mapped set onto the
//!   free node minimizing the weighted-hop increase, found by an
//!   early-exiting BFS over the machine graph;
//! * [`wh_refine`] — **Algorithm 2**, Kernighan–Lin-style swap
//!   refinement of the weighted-hop metric (`UWH`), driven by a max-heap
//!   of per-task incurred WH and a BFS-ordered candidate scan capped at
//!   `Δ` evaluations;
//! * [`cong_refine`] — **Algorithm 3**, maximum-congestion refinement
//!   (`UMC` for volume congestion, `UMMC` for message congestion),
//!   exact under static routing via an incrementally maintained
//!   link-congestion heap and per-link communicating-task registry;
//! * [`baselines`] — `DEF` (Hopper's SMP-style rank placement), `TMAP`
//!   (LibTopoMap-like recursive bipartitioning with the DEF fallback
//!   rule) and `SMAP` (Scotch-like dual recursive bipartitioning);
//! * [`metrics`] — the six mapping metrics of Section II (TH, WH, MMC,
//!   MC, AMC, AC);
//! * [`pipeline`] — the two-phase flow of Section III-A: partition the
//!   fine task graph into node groups, fix the balance with one FM
//!   iteration, map the coarse graph, compose;
//! * [`remap`] — fault-tolerant incremental remapping: repairs an
//!   existing mapping after node/link failure or allocation churn by
//!   local re-placement plus frontier-restricted refinement, instead
//!   of a full re-map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Whether this build of the engine was compiled with the `parallel`
/// feature (thread-pooled `map_many`, NBFS candidates, portfolio).
/// Exposed so downstream tools (e.g. the perf tracker) report the
/// engine's actual mode rather than their own feature flags.
pub const PARALLEL_ENABLED: bool = cfg!(feature = "parallel");

pub mod baselines;
#[doc(hidden)]
pub mod cong_reference;
pub mod cong_refine;
pub mod eps;
pub(crate) mod gain;
pub mod greedy;
#[doc(hidden)]
pub mod greedy_reference;
pub mod mapping;
pub mod metrics;
pub mod multilevel;
pub mod pipeline;
pub mod remap;
pub mod scratch;
pub mod wh_refine;

pub use baselines::{def_mapping, smap_mapping, tmap_mapping};
pub use cong_refine::{
    congestion_refine, congestion_refine_frontier_scratch, congestion_refine_scratch,
    CongRefineConfig, CongRunStats, CongScratch, CongestionKind,
};
pub use eps::{CONG_EPS, DRIFT_EPS, GAIN_EPS};
pub use greedy::{greedy_map, greedy_map_into, GreedyConfig, GreedyRunStats, GreedyScratch};
pub use mapping::{fits, is_valid_mapping, validate_mapping, MappingError, CAPACITY_EPS};
pub use metrics::{evaluate, MetricsReport};
pub use multilevel::{multilevel_map_into, MultilevelConfig, MultilevelScratch, MultilevelStats};
pub use pipeline::{
    map_many, map_many_seq, map_multilevel, map_multilevel_with, map_portfolio,
    map_portfolio_strategy, map_tasks, map_tasks_with, MapRequest, MapStrategy, MapperKind,
    MappingOutcome, PipelineConfig,
};
pub use remap::{
    apply_events, remap_incremental, ChurnEvent, RemapConfig, RemapDrift, RemapOutcome,
    RemapScratch, RemapStats,
};
pub use scratch::MapperScratch;
pub use wh_refine::{
    wh_refine, wh_refine_frontier_scratch, wh_refine_scratch, WhRefineConfig, WhScratch,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::baselines::{def_mapping, smap_mapping, tmap_mapping};
    pub use crate::cong_refine::{congestion_refine, CongRefineConfig, CongestionKind};
    pub use crate::greedy::{greedy_map, GreedyConfig};
    pub use crate::metrics::{evaluate, MetricsReport};
    pub use crate::multilevel::{MultilevelConfig, MultilevelStats};
    pub use crate::pipeline::{
        map_many, map_many_seq, map_multilevel, map_multilevel_with, map_portfolio,
        map_portfolio_strategy, map_tasks, map_tasks_with, MapRequest, MapStrategy, MapperKind,
        MappingOutcome, PipelineConfig,
    };
    pub use crate::remap::{
        apply_events, remap_incremental, ChurnEvent, RemapConfig, RemapDrift, RemapOutcome,
        RemapStats,
    };
    pub use crate::scratch::MapperScratch;
    pub use crate::wh_refine::{wh_refine, WhRefineConfig};
}
