//! Algorithm 3: Maximum-congestion refinement (`UMC` / `UMMC`).
//!
//! Exact congestion refinement for statically-routed networks:
//!
//! * `congHeap` holds every link keyed by its congestion — volume/bw
//!   for the `MC` variant, message count for `MMC`;
//! * `commTasks[e]` registers the message edges whose routes traverse
//!   link `e` (the paper keeps the incident *tasks* in a red-black
//!   `std::set`; storing edge ids and expanding to distinct ascending
//!   task ids on read is equivalent and halves the update traffic);
//! * each round peeks the most congested link `e_mc` and, for each of
//!   its tasks, probes swap partners in BFS order from the task's
//!   neighbors' nodes (minimal WH damage); a swap is accepted when it
//!   lowers MC, or keeps MC and lowers AC; after `Δ` fruitless probes
//!   the task is abandoned, and when the most congested link yields no
//!   accepted swap at all the algorithm stops (the paper's termination
//!   rule).
//!
//! **The rewritten hot path** (DESIGN.md §13) makes a probe as cheap as
//! a WH-refinement candidate — recompute nothing a lookup can serve:
//!
//! 1. **Route caching.** Every routed endpoint is an allocated node, so
//!    routes are served from the machine's
//!    [`RouteCache`](umpa_topology::RouteCache) link-id slices when
//!    enabled, and a per-edge *EdgeRoutes* slab inside [`CongState`]
//!    stores each task-graph edge's **current** route. The invariant:
//!    EdgeRoutes always reflects the *committed* mapping, so "old
//!    route" removal in delta collection and `commTasks` maintenance is
//!    a slice read. Each edge enters the slab once at init and once per
//!    *committed* move; probes themselves never route — their "new
//!    routes" are borrowed cache slices, iterated in place.
//! 2. **Epoch-marked dense dedup.** Per-link delta deduplication is
//!    `O(1)` per touched link via an epoch-stamped scatter array
//!    (`epoch << 32 | deltas-index` per link — one random access per
//!    hop), and affected-edge dedup needs no marks at all: an edge
//!    appears in both endpoints' incidence lists iff it connects `t1`
//!    and `t2`, an endpoint check. Both replace the old `O(k²)`
//!    `iter().any` / `find` scans; first-occurrence order is
//!    preserved, so probe order is bit-identical to the pre-rewrite
//!    engine.
//! 3. **Read-only probes.** A rejected probe mutates nothing: the
//!    candidate `(MC, AC)` is computed from the delta list plus a
//!    non-mutating [`IndexedMaxHeap::max_excluding`] descent over the
//!    untouched links, instead of two full heap re-key passes
//!    (apply + roll back). Only a *commit* writes heap, traffic, sums,
//!    `commTasks` and EdgeRoutes.
//!
//! Setup is amortized too: the congestion heap bulk-loads only the
//! links that carry traffic ([`IndexedMaxHeap::rebuild_sparse`], Floyd
//! heapify over the used set — absent links are implicit
//! zero-congestion entries the peek accounts for), the volume cost
//! vector borrows the machine's memoized
//! [`inv_bandwidths`](Machine::inv_bandwidths) slice, and `commTasks`,
//! like the per-link traffic array, resets in O(links touched last
//! run), not O(all links).
//!
//! Mappings are **bit-identical** to the pre-rewrite engine (same probe
//! order, same accept rule, same float accumulation order) — asserted
//! against the frozen copy in [`crate::cong_reference`] by
//! `tests/cong_differential.rs` across the backend × preset matrix,
//! route cache on and off.
//!
//! All per-run buffers live in a reusable [`CongScratch`]; a warm
//! scratch makes repeated refinements allocation-free apart from
//! `commTasks` growth beyond its high-water mark (DESIGN.md §8). Run
//! counters (probes, moves, route-cache hit rate) are exposed through
//! [`CongScratch::stats`].

use umpa_ds::{EpochMarker, IndexedMaxHeap, SlotBuckets};
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, LinkMode, Machine, RouteCache, Topology};

use crate::eps::CONG_EPS;
use crate::gain::HopDist;
use crate::mapping::fits;

/// Which congestion is being minimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionKind {
    /// Volume congestion: Σ volume / bandwidth (the `MC` metric).
    Volume,
    /// Message congestion: message count per link (the `MMC` metric).
    Messages,
}

/// Configuration of the congestion refinement.
#[derive(Clone, Copy, Debug)]
pub struct CongRefineConfig {
    /// Max evaluated swaps per task of the congested link (`Δ`).
    pub delta: usize,
    /// Hard cap on accepted swaps (each strictly improves (MC, AC), so
    /// this only guards pathological float drift).
    pub max_moves: u32,
    /// Which congestion to minimize.
    pub kind: CongestionKind,
}

impl CongRefineConfig {
    /// Paper defaults for the `MC` (volume) variant.
    pub fn volume() -> Self {
        Self {
            delta: 8,
            max_moves: 10_000,
            kind: CongestionKind::Volume,
        }
    }

    /// Paper defaults for the `MMC` (message) variant.
    pub fn messages() -> Self {
        Self {
            delta: 8,
            max_moves: 10_000,
            kind: CongestionKind::Messages,
        }
    }
}

/// The per-message weight entering the congestion accumulators: a
/// documented **passthrough**. Both [`CongestionKind`]s use the edge
/// weight as-is by design — MMC's "count messages, not words" semantics
/// live in the task graph the caller hands in
/// ([`TaskGraph::group_quotient`] with `count_weighted` builds coarse
/// edges whose weight *is* the bundled message count), not in a
/// per-kind transform here. The kind still selects the per-link cost
/// normalization (`inv_cost`: 1/bandwidth for volume, 1 for messages).
#[inline]
fn message_weight(c: f64) -> f64 {
    c
}

/// Per-link registry of the message edges routed across each link: an
/// **amortized-O(1) insert/remove set with deferred sorting** per link.
///
/// `insert` is a plain tail push and `remove` records the edge in a
/// pending-removal list; [`collect_members_into`]
/// (Self::collect_members_into) normalizes a link lazily — sort both
/// lists (in place, allocation-free), cancel each removal against its
/// occurrence, compact — and is only called for the one most congested
/// link per outer round, where the surviving edges expand into
/// **distinct task ids in ascending order**, matching the `BTreeSet`
/// the paper's `commTasks` is modeled on. Storing edge ids instead of
/// task ids halves the update traffic (one entry per crossing edge,
/// not two) and removes multiplicity bookkeeping: a task stays listed
/// exactly while ≥ 1 of its edges crosses the link.
///
/// `reset` is O(links touched since the previous reset) — a
/// generation-stamped touched-list — so a warm engine pays nothing for
/// the untouched majority of a large machine's link space, and a warm
/// instance never touches the allocator (DESIGN.md §8, §13).
#[derive(Default)]
pub(crate) struct LinkTaskSets {
    /// Per-link member edge ids; sorted ascending when not dirty.
    items: Vec<Vec<u32>>,
    /// Per-link pending removals, unordered.
    removed: Vec<Vec<u32>>,
    /// Whether the link needs normalization before iteration.
    dirty: Vec<bool>,
    /// Generation stamp per link; `gen[l] == cur` ⇔ `l` is in
    /// `touched`.
    gen: Vec<u32>,
    cur: u32,
    /// Links with any activity since the last reset.
    touched: Vec<u32>,
}

impl LinkTaskSets {
    /// Clears every set and guarantees `n` of them, reusing inner
    /// vector capacities. O(touched since last reset), not O(n).
    pub(crate) fn reset(&mut self, n: usize) {
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            self.items[l].clear();
            self.removed[l].clear();
            self.dirty[l] = false;
        }
        self.touched.clear();
        self.cur = match self.cur.checked_add(1) {
            Some(c) => c,
            None => {
                self.gen.iter_mut().for_each(|g| *g = 0);
                1
            }
        };
        if n > self.items.len() {
            self.items.resize_with(n, Vec::new);
            self.removed.resize_with(n, Vec::new);
            self.dirty.resize(n, false);
            self.gen.resize(n, 0);
        }
    }

    /// Records `link` in the touched list (once per reset cycle).
    #[inline]
    fn touch(&mut self, link: usize) {
        if self.gen[link] != self.cur {
            self.gen[link] = self.cur;
            self.touched.push(link as u32);
        }
    }

    /// Registers edge `e` on `link`. O(1).
    pub(crate) fn insert(&mut self, link: usize, e: u32) {
        self.touch(link);
        self.items[link].push(e);
        self.dirty[link] = true;
    }

    /// Cancels edge `e` on `link` (deferred, amortized O(1)): the
    /// cancellation is recorded, and the link is compacted once pending
    /// removals reach half its member list — so storage stays
    /// proportional to live membership even for links that never become
    /// the most congested, while each normalization's sort is paid for
    /// by the pushes that triggered it.
    pub(crate) fn remove(&mut self, link: usize, e: u32) {
        self.touch(link);
        self.removed[link].push(e);
        self.dirty[link] = true;
        if self.removed[link].len() >= 16 && 2 * self.removed[link].len() >= self.items[link].len()
        {
            self.normalize(link);
        }
    }

    /// Applies pending removals and restores ascending order.
    fn normalize(&mut self, link: usize) {
        if !self.dirty[link] {
            return;
        }
        let v = &mut self.items[link];
        let r = &mut self.removed[link];
        v.sort_unstable();
        r.sort_unstable();
        let mut w = 0usize;
        let mut j = 0usize;
        for i in 0..v.len() {
            let x = v[i];
            while j < r.len() && r[j] < x {
                j += 1; // removal with no matching occurrence: skip
            }
            if j < r.len() && r[j] == x {
                j += 1; // cancel this occurrence
                continue;
            }
            v[w] = x;
            w += 1;
        }
        v.truncate(w);
        r.clear();
        self.dirty[link] = false;
    }

    /// Writes the distinct tasks incident to `link`'s live edges into
    /// `out` (cleared first) in ascending task-id order, expanding edge
    /// ids through the edge table. Deduplicates with an epoch marker
    /// *before* sorting, so the sort runs over the distinct tasks
    /// rather than two entries per edge (hot links on converging
    /// topologies carry many edges per task). Allocation-free once
    /// `out` is warm.
    pub(crate) fn collect_members_into(
        &mut self,
        link: usize,
        edges: &[EdgeRec],
        mark: &mut EpochMarker,
        out: &mut Vec<u32>,
    ) {
        self.normalize(link);
        out.clear();
        mark.reset();
        for &e in &self.items[link] {
            let rec = edges[e as usize];
            if !mark.mark(rec.src as usize) {
                out.push(rec.src);
            }
            if !mark.mark(rec.dst as usize) {
                out.push(rec.dst);
            }
        }
        out.sort_unstable();
    }
}

/// One directed message edge (endpoint tasks + weight), indexed by
/// edge id. The probe loops avoid touching this random-access table —
/// they read the sequential per-incidence [`IncMeta`] instead — so it
/// serves the rare consumers: commit re-routing and top-link member
/// expansion.
#[derive(Clone, Copy, Default)]
pub(crate) struct EdgeRec {
    /// Sender task.
    pub(crate) src: u32,
    /// Receiver task.
    pub(crate) dst: u32,
    /// Message volume (or count, for count-weighted graphs).
    w: f64,
}

/// Per-link hot state: the epoch-stamped scatter slot and the link's
/// traffic share one 16-byte record, so the peek's traffic read lands
/// on the cacheline [`CongState::add_delta`] just touched.
#[derive(Clone, Copy, Default)]
struct LinkSlot {
    /// Fused scatter stamp: `epoch << 32 | deltas-index`.
    stamp: u64,
    /// Current traffic (volume or message count) on the link.
    traffic: f64,
}

/// Per-incidence-slot edge metadata, parallel to `inc_edge`: the OTHER
/// endpoint of the edge and its weight. A task's probe loops walk its
/// incidence range **sequentially** through this table instead of
/// chasing edge ids into the edge table — the difference between one
/// streamed cacheline and a cache miss per edge.
#[derive(Clone, Copy, Default)]
struct IncMeta {
    /// The endpoint that is not the incidence owner.
    partner: u32,
    /// Message volume (or count).
    w: f64,
}

/// Counters of one congestion-refinement run, read back through
/// [`CongScratch::stats`] after
/// [`congestion_refine_scratch`] returns. Feeds the perf tracker's
/// `cong_probes` / `cong_route_hit_rate` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CongRunStats {
    /// Virtual-swap probes evaluated (accepted + rejected).
    pub probes: u64,
    /// Probes that committed (accepted moves).
    pub moves: u64,
    /// Router-crossing route computations requested (same-router pairs
    /// route to the empty slice and are not counted).
    pub route_queries: u64,
    /// Route queries served from the machine's
    /// [`RouteCache`](umpa_topology::RouteCache) as slice reads; the
    /// remainder fell back to the analytic emitters.
    pub route_cache_hits: u64,
}

impl CongRunStats {
    /// Fraction of route queries served from the route cache (0 when
    /// no query ran).
    pub fn route_cache_hit_rate(&self) -> f64 {
        if self.route_queries == 0 {
            0.0
        } else {
            self.route_cache_hits as f64 / self.route_queries as f64
        }
    }
}

/// Reusable buffers for one congestion-refinement run.
#[derive(Default)]
pub struct CongScratch {
    heap: IndexedMaxHeap,
    /// All-ones cost vector for the message kind (the volume kind
    /// borrows the machine's memoized `inv_bandwidths`).
    ones: Vec<f64>,
    comm_tasks: LinkTaskSets,
    buckets: SlotBuckets,
    free: Vec<f64>,
    bfs: Bfs,
    tasks: Vec<u32>,
    /// Swap candidates of one node, as (WH damage, task).
    cand: Vec<(f64, u32)>,
    sources: Vec<u32>,
    // --- rewritten hot-path buffers (DESIGN.md §13) -----------------
    /// Directed message edges, indexed by edge id (`messages()` order).
    edges: Vec<EdgeRec>,
    /// Task → incident edge ids, CSR (out ids first, then in ids).
    inc_off: Vec<u32>,
    inc_edge: Vec<u32>,
    /// Partner/weight per incidence slot, parallel to `inc_edge`.
    inc_meta: Vec<IncMeta>,
    cursor_out: Vec<u32>,
    cursor_in: Vec<u32>,
    /// Links that received traffic this run, first-touch order — the
    /// sparse id set `congHeap` is built over (absent links are
    /// implicit zero-congestion entries).
    used_list: Vec<u32>,
    /// Committed route span (offset, length) of each edge in `er_pool`:
    /// the EdgeRoutes slab index, kept apart from `EdgeRec` so the
    /// old-route walk touches 8 random bytes per edge, not 24.
    er_span: Vec<(u32, u32)>,
    er_pool: Vec<u32>,
    er_scratch: Vec<u32>,
    /// Router of each task's current node (`task_router[t]` =
    /// `router_of(mapping[t])`), maintained by `relocate` so the hot
    /// loops never pay the `node / nodes_per_router` division.
    task_router: Vec<u32>,
    /// Affected edge ids of the current probe, first-occurrence order.
    aff: Vec<u32>,
    /// Accumulated old-route removal deltas of the pivot task's edges —
    /// identical across all probes of one `try_improve_task`, built on
    /// the first and replayed (memcpy + restamp) on the rest.
    t1_old: Vec<(u32, f64)>,
    /// Analytic-fallback route emission buffer (the cache path borrows
    /// slices instead).
    route_buf: Vec<u32>,
    /// Per-link traffic deltas of the current probe, first-touch order.
    deltas: Vec<(u32, f64)>,
    /// Per-link stamp + traffic records. One random access dedups a
    /// hop, finds its accumulator and serves the peek's traffic read;
    /// links stamped with the current epoch are exactly the probe's
    /// touched-set (the `max_excluding` exclusion predicate). Traffic
    /// is re-zeroed lazily through the previous run's `used_list`.
    link_state: Vec<LinkSlot>,
    link_epoch: u32,
    /// Marks the pivot task's neighbors so the candidate scan knows
    /// when the hoisted swap-gain base applies.
    nb_mark: EpochMarker,
    stats: CongRunStats,
}

impl CongScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters of the most recent run through this scratch.
    pub fn stats(&self) -> CongRunStats {
        self.stats
    }
}

/// Refines `mapping` in place; returns the final `(max, avg)`
/// congestion in the chosen kind's units.
///
/// For [`CongestionKind::Messages`] pass a task graph whose edge
/// weights are message counts (see `TaskGraph::group_quotient` with
/// `count_weighted`), so that coarse edges carry the number of fine
/// messages they bundle.
pub fn congestion_refine(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
) -> (f64, f64) {
    let mut scratch = CongScratch::new();
    congestion_refine_scratch(tg, machine, alloc, mapping, cfg, &mut scratch)
}

/// Scratch-reusing form of [`congestion_refine`]; allocation-free once
/// `scratch` is warm (including the machine's route-cache rows, which
/// build on the first run per allocation).
pub fn congestion_refine_scratch(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
    scratch: &mut CongScratch,
) -> (f64, f64) {
    congestion_refine_filtered(tg, machine, alloc, mapping, cfg, scratch, |_| true)
}

/// Frontier-restricted form of [`congestion_refine_scratch`] for
/// incremental remap: only tasks for which `in_frontier` returns true
/// may be relocated. The outer loop still works on the globally most
/// congested link; when that link carries no movable frontier task the
/// run stops — repair effort stays proportional to the damage
/// neighborhood rather than chasing congestion the churn did not
/// cause. Returns the final `(max, avg)` congestion.
pub fn congestion_refine_frontier_scratch(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
    scratch: &mut CongScratch,
    in_frontier: impl Fn(u32) -> bool,
) -> (f64, f64) {
    congestion_refine_filtered(tg, machine, alloc, mapping, cfg, scratch, in_frontier)
}

fn congestion_refine_filtered(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
    scratch: &mut CongScratch,
    in_frontier: impl Fn(u32) -> bool,
) -> (f64, f64) {
    let mut state = CongState::new(tg, machine, alloc, mapping, cfg.kind, scratch);
    let mut moves = 0u32;
    'outer: while moves < cfg.max_moves {
        let Some((emc, top_key)) = state.heap.peek() else {
            break;
        };
        if top_key <= 0.0 {
            break; // no congestion at all
        }
        // Snapshot (try_improve_task edits the registry mid-scan); this
        // is the one read that triggers the deferred normalization.
        state.comm_tasks.collect_members_into(
            emc as usize,
            state.edges,
            state.nb_mark,
            state.tasks,
        );
        for i in 0..state.tasks.len() {
            let tmc = state.tasks[i];
            if !in_frontier(tmc) {
                continue;
            }
            if state.try_improve_task(tmc, cfg.delta) {
                moves += 1;
                continue 'outer;
            }
        }
        break; // no improvement for the most congested link → stop
    }
    (state.current_max(), state.current_avg())
}

/// Static-route access for one run: the machine's [`RouteCache`] when
/// enabled (slice reads, rows built on first touch), the analytic
/// emitters otherwise. Both produce identical link-id sequences.
struct RouteSource<'a> {
    cache: Option<&'a RouteCache>,
    topo: &'a Topology,
    mode: LinkMode,
}

impl<'a> RouteSource<'a> {
    /// Appends the static route between terminal *routers* `ra` and
    /// `rb` onto `out` (nothing when equal), counting into `stats`.
    /// Callers supply routers from the maintained `task_router` array —
    /// no per-query division.
    #[inline]
    fn append_routers(&self, ra: u32, rb: u32, out: &mut Vec<u32>, stats: &mut CongRunStats) {
        if ra == rb {
            return;
        }
        stats.route_queries += 1;
        match self.cache {
            Some(c) => {
                stats.route_cache_hits += 1;
                out.extend_from_slice(c.route(self.topo, ra, rb));
            }
            None => self.topo.route_links(ra, rb, self.mode, out),
        }
    }

    /// The static route between `ra` and `rb` as a borrowed slice —
    /// **zero-copy** on the cache path (the probe's dominant case); the
    /// analytic fallback emits into `buf` and returns it. Same link
    /// sequence as [`append_routers`](Self::append_routers).
    #[inline]
    fn route_slice<'s>(
        &'s self,
        ra: u32,
        rb: u32,
        buf: &'s mut Vec<u32>,
        stats: &mut CongRunStats,
    ) -> &'s [u32]
    where
        'a: 's,
    {
        if ra == rb {
            return &[];
        }
        stats.route_queries += 1;
        match self.cache {
            Some(c) => {
                stats.route_cache_hits += 1;
                c.route(self.topo, ra, rb)
            }
            None => {
                buf.clear();
                self.topo.route_links(ra, rb, self.mode, buf);
                buf
            }
        }
    }
}

/// Incrementally maintained congestion state, borrowing all buffers
/// from a [`CongScratch`].
struct CongState<'a> {
    tg: &'a TaskGraph,
    alloc: &'a Allocation,
    machine: &'a Machine,
    /// Number of channel ids on the machine.
    nl: usize,
    /// Oracle-or-analytic distances for the WH-damage tiebreak.
    dist: HopDist<'a>,
    /// Cache-or-analytic static routes.
    routes: RouteSource<'a>,
    mapping: &'a mut [u32],
    /// Per-link congestion key (volume/bw or message count).
    heap: &'a mut IndexedMaxHeap,
    /// 1/bw (volume kind, borrowed from the machine) or all-ones
    /// (message kind) per link.
    inv_cost: &'a [f64],
    comm_tasks: &'a mut LinkTaskSets,
    sum_key: f64,
    used_links: usize,
    buckets: &'a mut SlotBuckets,
    free: &'a mut Vec<f64>,
    bfs: &'a mut Bfs,
    tasks: &'a mut Vec<u32>,
    cand: &'a mut Vec<(f64, u32)>,
    sources: &'a mut Vec<u32>,
    edges: &'a mut Vec<EdgeRec>,
    inc_off: &'a mut Vec<u32>,
    inc_edge: &'a mut Vec<u32>,
    inc_meta: &'a mut Vec<IncMeta>,
    used_list: &'a mut Vec<u32>,
    er_span: &'a mut Vec<(u32, u32)>,
    er_pool: &'a mut Vec<u32>,
    er_scratch: &'a mut Vec<u32>,
    /// Live (referenced) words in `er_pool`; the slab compacts when
    /// dead gaps exceed the live total.
    er_live: usize,
    task_router: &'a mut Vec<u32>,
    aff: &'a mut Vec<u32>,
    t1_old: &'a mut Vec<(u32, f64)>,
    /// Whether `t1_old` holds the current pivot's prefix.
    t1_old_ready: bool,
    route_buf: &'a mut Vec<u32>,
    deltas: &'a mut Vec<(u32, f64)>,
    link_state: &'a mut Vec<LinkSlot>,
    link_epoch: &'a mut u32,
    nb_mark: &'a mut EpochMarker,
    stats: &'a mut CongRunStats,
}

impl<'a> CongState<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        mapping: &'a mut [u32],
        kind: CongestionKind,
        scratch: &'a mut CongScratch,
    ) -> Self {
        let CongScratch {
            heap,
            ones,
            comm_tasks,
            buckets,
            free,
            bfs,
            tasks,
            cand,
            sources,
            edges,
            inc_off,
            inc_edge,
            inc_meta,
            cursor_out,
            cursor_in,
            used_list,
            er_span,
            er_pool,
            er_scratch,
            task_router,
            aff,
            t1_old,
            route_buf,
            deltas,
            link_state,
            link_epoch,
            nb_mark,
            stats,
        } = scratch;
        let nl = machine.num_links();
        let inv_cost: &'a [f64] = match kind {
            CongestionKind::Volume => machine.inv_bandwidths(),
            CongestionKind::Messages => {
                if ones.len() < nl {
                    ones.resize(nl, 1.0);
                }
                &(*ones)[..nl]
            }
        };
        buckets.reset(alloc.num_nodes(), tg.num_tasks());
        free.clear();
        free.extend((0..alloc.num_nodes()).map(|s| f64::from(alloc.procs(s))));
        for (t, &node) in mapping.iter().enumerate() {
            let slot = alloc.slot_of(node).expect("mapping must be feasible") as usize;
            buckets.insert(slot, t as u32);
            free[slot] -= tg.task_weight(t as u32);
        }
        // Lazy traffic re-zeroing: every link that carried traffic in
        // the previous run is in that run's `used_list`; the rest are
        // already zero, so the O(num_links) clear becomes O(used).
        if link_state.len() < nl {
            link_state.clear();
            link_state.resize(nl, LinkSlot::default());
        } else {
            for i in 0..used_list.len() {
                link_state[used_list[i] as usize].traffic = 0.0;
            }
        }
        comm_tasks.reset(nl);
        nb_mark.ensure_len(tg.num_tasks());
        bfs.ensure(machine.num_routers());
        *stats = CongRunStats::default();
        let routes = RouteSource {
            cache: machine.route_cache(),
            topo: machine.topology(),
            mode: machine.link_mode(),
        };

        // Edge table + task → incident-edge CSR (out ids, then in ids —
        // the same order the old engine walked `out_edges`/`in_edges`).
        let nt = tg.num_tasks();
        let m = tg.num_messages();
        edges.clear();
        inc_off.clear();
        inc_off.push(0);
        for t in 0..nt as u32 {
            let deg = tg.send_messages(t) + tg.recv_messages(t);
            inc_off.push(inc_off[t as usize] + deg);
        }
        inc_edge.clear();
        inc_edge.resize(2 * m, 0);
        inc_meta.clear();
        inc_meta.resize(2 * m, IncMeta::default());
        cursor_out.clear();
        cursor_out.extend_from_slice(&inc_off[..nt]);
        cursor_in.clear();
        cursor_in.extend((0..nt as u32).map(|t| inc_off[t as usize] + tg.send_messages(t)));
        used_list.clear();
        er_span.clear();
        er_pool.clear();
        task_router.clear();
        task_router.extend(mapping.iter().map(|&n| machine.router_of(n)));

        // Initial routing of every message (INITCONG): each edge is
        // routed once, straight into the EdgeRoutes slab.
        let mut sum_key = 0.0;
        let mut used_links = 0usize;
        for (e, (src, dst, c)) in tg.messages().enumerate() {
            let co = cursor_out[src as usize] as usize;
            inc_edge[co] = e as u32;
            inc_meta[co] = IncMeta { partner: dst, w: c };
            cursor_out[src as usize] += 1;
            let ci = cursor_in[dst as usize] as usize;
            inc_edge[ci] = e as u32;
            inc_meta[ci] = IncMeta { partner: src, w: c };
            cursor_in[dst as usize] += 1;
            let weight = message_weight(c);
            let (ra, rb) = (task_router[src as usize], task_router[dst as usize]);
            let start = er_pool.len();
            routes.append_routers(ra, rb, er_pool, stats);
            edges.push(EdgeRec { src, dst, w: c });
            er_span.push((start as u32, (er_pool.len() - start) as u32));
            for &link in &er_pool[start..] {
                let l = link as usize;
                if link_state[l].traffic == 0.0 {
                    used_links += 1;
                    used_list.push(l as u32);
                }
                link_state[l].traffic += weight;
                sum_key += weight * inv_cost[l];
                comm_tasks.insert(l, e as u32);
            }
        }
        let er_live = er_pool.len();
        // Sparse congHeap: only links that carry traffic get entries
        // (O(used) bulk heapify); the zero-traffic majority stays
        // implicit and the peek accounts for it.
        heap.rebuild_sparse(nl, used_list, |l| {
            link_state[l as usize].traffic * inv_cost[l as usize]
        });
        Self {
            tg,
            alloc,
            machine,
            nl,
            dist: HopDist::new(machine),
            routes,
            mapping,
            heap,
            inv_cost,
            comm_tasks,
            sum_key,
            used_links,
            buckets,
            free,
            bfs,
            tasks,
            cand,
            sources,
            edges,
            inc_off,
            inc_edge,
            inc_meta,
            used_list,
            er_span,
            er_pool,
            er_scratch,
            er_live,
            task_router,
            aff,
            t1_old,
            t1_old_ready: false,
            route_buf,
            deltas,
            link_state,
            link_epoch,
            nb_mark,
            stats,
        }
    }

    fn current_max(&self) -> f64 {
        self.heap.peek().map_or(0.0, |(_, k)| k)
    }

    fn current_avg(&self) -> f64 {
        if self.used_links == 0 {
            0.0
        } else {
            self.sum_key / self.used_links as f64
        }
    }

    /// Accumulates the **old-route removal deltas** of the edges
    /// incident to `t1` (and `t2` if given) from the EdgeRoutes slab,
    /// in the affected-edge order (t1's incidence, then t2's
    /// not-t1-connecting incidence — the old engine's dedup order; an
    /// edge sits in both lists only by connecting t1 and t2, so t2's
    /// copy is recognized by a partner check). Probes never materialize
    /// the affected list itself — only a commit needs it
    /// ([`collect_affected`](Self::collect_affected)).
    fn collect_old_deltas(&mut self, t1: u32, t2: Option<u32>, epoch: u64) {
        let ti = t1 as usize;
        let t1_inc = &self.inc_edge[self.inc_off[ti] as usize..self.inc_off[ti + 1] as usize];
        if self.t1_old_ready {
            // Replay the pivot's prefix: its accumulated (link, −w)
            // entries are the leading first-touch segment of every
            // probe of this task, so a copy plus restamp reproduces the
            // add-by-add accumulation bit for bit.
            for (i, &(l, d)) in self.t1_old.iter().enumerate() {
                self.link_state[l as usize].stamp = (epoch << 32) | i as u64;
                self.deltas.push((l, d));
            }
        } else {
            for &e in t1_inc {
                let (off, len) = self.er_span[e as usize];
                let w = message_weight(self.edges[e as usize].w);
                for &l in &self.er_pool[off as usize..(off + len) as usize] {
                    Self::add_delta(self.deltas, self.link_state, epoch, l, -w);
                }
            }
            self.t1_old.clear();
            self.t1_old.extend_from_slice(self.deltas);
            self.t1_old_ready = true;
        }
        if let Some(t2) = t2 {
            let ti = t2 as usize;
            let (o, end) = (self.inc_off[ti] as usize, self.inc_off[ti + 1] as usize);
            for j in o..end {
                let meta = self.inc_meta[j];
                if meta.partner == t1 {
                    continue; // t1↔t2 edge: already in t1's segment
                }
                let e = self.inc_edge[j];
                let (off, len) = self.er_span[e as usize];
                let w = message_weight(meta.w);
                for &l in &self.er_pool[off as usize..(off + len) as usize] {
                    Self::add_delta(self.deltas, self.link_state, epoch, l, -w);
                }
            }
        }
    }

    /// Materializes the affected-edge list (same order as
    /// [`collect_old_deltas`](Self::collect_old_deltas) walked it) —
    /// called only by a committing probe.
    fn collect_affected(&mut self, t1: u32, t2: Option<u32>) {
        self.aff.clear();
        let ti = t1 as usize;
        self.aff.extend_from_slice(
            &self.inc_edge[self.inc_off[ti] as usize..self.inc_off[ti + 1] as usize],
        );
        if let Some(t2) = t2 {
            let ti = t2 as usize;
            for j in self.inc_off[ti] as usize..self.inc_off[ti + 1] as usize {
                if self.inc_meta[j].partner != t1 {
                    self.aff.push(self.inc_edge[j]);
                }
            }
        }
    }

    /// Advances the link-scatter epoch (wraparound falls back to a full
    /// stamp clear once per 2³² probes); returns it widened for
    /// [`add_delta`](Self::add_delta) comparisons.
    fn bump_link_epoch(&mut self) -> u64 {
        *self.link_epoch = match self.link_epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.link_state.iter_mut().for_each(|m| m.stamp = 0);
                1
            }
        };
        u64::from(*self.link_epoch)
    }

    /// Accumulates into the delta of link `l`, locating it through the
    /// fused `epoch << 32 | index` scatter stamp — one random access
    /// per hop, first-touch order (the old `find`-scan order).
    #[inline]
    fn add_delta(deltas: &mut Vec<(u32, f64)>, ms: &mut [LinkSlot], epoch: u64, l: u32, d: f64) {
        let slot = &mut ms[l as usize];
        if slot.stamp >> 32 == epoch {
            deltas[(slot.stamp & u64::from(u32::MAX)) as usize].1 += d;
        } else {
            slot.stamp = (epoch << 32) | deltas.len() as u64;
            deltas.push((l, d));
        }
    }

    /// Accumulates the **new-route addition deltas** for relocating
    /// `t1 → node2` (and `t2 → node1` if swapping) over the affected
    /// edges, continuing the list [`collect_old_deltas`]
    /// (Self::collect_old_deltas) started. Routes are borrowed straight
    /// from the route cache (zero-copy; a committed probe re-reads them
    /// once to update the slab). `r2` is `node2`'s router (the BFS
    /// vertex that discovered it). Exact cancellations stay in the list
    /// as zero deltas — the peek and commit walks skip their state
    /// updates but still count their (unchanged) keys toward the
    /// candidate MC, matching the old engine's drop-zeros-then-apply
    /// bit for bit.
    fn collect_new_deltas(&mut self, t1: u32, t2: Option<u32>, r2: u32, epoch: u64) {
        let r1 = self.task_router[t1 as usize];
        // New routes under the virtual relocation — in the same
        // edge order the affected list holds (t1's out then in edges,
        // then t2's not-t1-connecting out then in edges), so the delta
        // accumulation order is identical on both paths below.
        if let Some(cache) = self.routes.cache {
            // Cache fast path: the four sub-loops share an endpoint
            // (t1's edges pivot on r2, t2's on r1), so each hoists one
            // row view — a single memo consultation per sub-loop
            // instead of one per edge.
            let topo = self.routes.topo;
            let o = self.inc_off[t1 as usize] as usize;
            let split = o + self.tg.send_messages(t1) as usize;
            let end = self.inc_off[t1 as usize + 1] as usize;
            // Queries are tallied in a register per sub-loop (every one
            // is a cache hit here) — no per-edge counter traffic.
            let mut queries = 0u64;
            let t2s = t2.unwrap_or(u32::MAX);
            let from_r2 = cache.row_from(topo, r2);
            for meta in &self.inc_meta[o..split] {
                let rb = if meta.partner == t2s {
                    r1
                } else {
                    self.task_router[meta.partner as usize]
                };
                if rb != r2 {
                    queries += 1;
                    let w = message_weight(meta.w);
                    for &l in from_r2.route(rb) {
                        Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                    }
                }
            }
            let to_r2 = cache.row_to(topo, r2);
            for meta in &self.inc_meta[split..end] {
                let ra = if meta.partner == t2s {
                    r1
                } else {
                    self.task_router[meta.partner as usize]
                };
                if ra != r2 {
                    queries += 1;
                    let w = message_weight(meta.w);
                    for &l in to_r2.route(ra) {
                        Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                    }
                }
            }
            if let Some(t2v) = t2 {
                let o = self.inc_off[t2v as usize] as usize;
                let split = o + self.tg.send_messages(t2v) as usize;
                let end = self.inc_off[t2v as usize + 1] as usize;
                let from_r1 = cache.row_from(topo, r1);
                for meta in &self.inc_meta[o..split] {
                    if meta.partner == t1 {
                        continue; // t1↔t2 edge: handled in t1's loops
                    }
                    let rb = self.task_router[meta.partner as usize];
                    if rb != r1 {
                        queries += 1;
                        let w = message_weight(meta.w);
                        for &l in from_r1.route(rb) {
                            Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                        }
                    }
                }
                let to_r1 = cache.row_to(topo, r1);
                for meta in &self.inc_meta[split..end] {
                    if meta.partner == t1 {
                        continue;
                    }
                    let ra = self.task_router[meta.partner as usize];
                    if ra != r1 {
                        queries += 1;
                        let w = message_weight(meta.w);
                        for &l in to_r1.route(ra) {
                            Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                        }
                    }
                }
            }
            self.stats.route_queries += queries;
            self.stats.route_cache_hits += queries;
        } else {
            // Analytic fallback: same incidence walk (and therefore
            // the same delta order), routed per edge.
            let o = self.inc_off[t1 as usize] as usize;
            let split = o + self.tg.send_messages(t1) as usize;
            let end = self.inc_off[t1 as usize + 1] as usize;
            for j in o..end {
                let meta = self.inc_meta[j];
                let partner = if Some(meta.partner) == t2 {
                    r1
                } else {
                    self.task_router[meta.partner as usize]
                };
                // Out-edges leave the relocated pivot; in-edges enter it.
                let (ra, rb) = if j < split {
                    (r2, partner)
                } else {
                    (partner, r2)
                };
                let w = message_weight(meta.w);
                for &l in self.routes.route_slice(ra, rb, self.route_buf, self.stats) {
                    Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                }
            }
            if let Some(t2v) = t2 {
                let o = self.inc_off[t2v as usize] as usize;
                let split = o + self.tg.send_messages(t2v) as usize;
                let end = self.inc_off[t2v as usize + 1] as usize;
                for j in o..end {
                    let meta = self.inc_meta[j];
                    if meta.partner == t1 {
                        continue; // t1↔t2 edge: handled in t1's loop
                    }
                    let partner = self.task_router[meta.partner as usize];
                    let (ra, rb) = if j < split {
                        (r1, partner)
                    } else {
                        (partner, r1)
                    };
                    let w = message_weight(meta.w);
                    for &l in self.routes.route_slice(ra, rb, self.route_buf, self.stats) {
                        Self::add_delta(self.deltas, self.link_state, epoch, l, w);
                    }
                }
            }
        }
    }

    /// Computes the `(mc, ac)` the current deltas *would* produce,
    /// mutating nothing: the touched links' candidate keys are evaluated
    /// inline (same float expressions, same order as the committing
    /// walk) and the untouched maximum comes from a read-only
    /// [`IndexedMaxHeap::max_excluding`] descent.
    fn peek_deltas(&self, mc: f64) -> (f64, f64) {
        let reject_above = mc + CONG_EPS;
        let mut sum = self.sum_key;
        let mut used = self.used_links;
        let mut touched_max = f64::NEG_INFINITY;
        for &(l, d) in self.deltas.iter() {
            let li = l as usize;
            let before = self.link_state[li].traffic;
            let key = if d == 0.0 {
                // Exact cancellation: state untouched, but the link is
                // stamped (excluded from the descent), so its current
                // key competes here.
                before * self.inv_cost[li]
            } else {
                let after = before + d;
                if before == 0.0 && after > 0.0 {
                    used += 1;
                } else if before > 0.0 && after <= CONG_EPS {
                    used -= 1;
                }
                let t = if after.abs() < CONG_EPS { 0.0 } else { after };
                sum += d * self.inv_cost[li];
                t * self.inv_cost[li]
            };
            if key > touched_max {
                touched_max = key;
                if key > reject_above {
                    // The candidate MC already exceeds every acceptable
                    // value: both accept clauses are false no matter
                    // what the remaining deltas or the untouched
                    // maximum contribute, so the probe is rejected
                    // here. (`new_mc >= key > mc + CONG_EPS`; the returned
                    // pair only feeds that comparison.)
                    return (key, f64::INFINITY);
                }
            }
        }
        // The untouched maximum matters only when every touched link
        // ends below `mc - CONG_EPS`: otherwise the first accept clause is
        // false and the second clause's `new_mc <= mc + CONG_EPS` test
        // reduces to `touched_max <= mc + CONG_EPS` (untouched keys never
        // exceed the current maximum), so the returned pair feeds the
        // accept rule identically without the descent.
        let new_mc = if touched_max < mc - CONG_EPS {
            let epoch = u64::from(*self.link_epoch);
            let link_state = &*self.link_state;
            let untouched = self
                .heap
                .max_excluding(|id| link_state[id as usize].stamp >> 32 == epoch)
                .map_or(f64::NEG_INFINITY, |(_, k)| k);
            // Links not in the sparse heap all carry key 0; the descent
            // cannot see them, so any *untouched* absent link
            // contributes a 0.0 candidate.
            let mut absent_touched = 0usize;
            for &(l, _) in self.deltas.iter() {
                if self.link_state[l as usize].traffic == 0.0 && !self.heap.contains(l) {
                    absent_touched += 1;
                }
            }
            let untouched = if self.nl - self.heap.len() > absent_touched {
                untouched.max(0.0)
            } else {
                untouched
            };
            touched_max.max(untouched)
        } else {
            touched_max
        };
        let new_mc = if new_mc == f64::NEG_INFINITY {
            0.0
        } else {
            new_mc
        };
        let ac = if used == 0 { 0.0 } else { sum / used as f64 };
        (new_mc, ac)
    }

    /// Applies `self.deltas` to heap/traffic/sums — the write half the
    /// peek predicted, run only on commit. Same per-link float
    /// expressions and order as the peek, so the committed state equals
    /// the accepted `(new_mc, new_ac)` exactly.
    fn commit_deltas(&mut self) {
        for i in 0..self.deltas.len() {
            let (l, d) = self.deltas[i];
            if d == 0.0 {
                continue; // exact cancellation: nothing changes
            }
            let li = l as usize;
            let before = self.link_state[li].traffic;
            let after = before + d;
            if before == 0.0 && after > 0.0 {
                self.used_links += 1;
                self.used_list.push(l);
            } else if before > 0.0 && after <= CONG_EPS {
                self.used_links -= 1;
            }
            self.link_state[li].traffic = if after.abs() < CONG_EPS { 0.0 } else { after };
            self.sum_key += d * self.inv_cost[li];
            // A link gaining its first-ever traffic enters the sparse
            // heap here (and the used list, for the next run's lazy
            // traffic zeroing); zeroed links keep a 0-key entry
            // (harmless — the heap stays a superset of the
            // traffic-carrying set).
            self.heap
                .push_or_update(l, self.link_state[li].traffic * self.inv_cost[li]);
        }
    }

    /// Rewrites the EdgeRoutes slab when dead gaps from committed
    /// replacements exceed the live total (amortized O(1) per commit;
    /// allocation-free once both buffers are warm).
    fn compact_routes(&mut self) {
        self.er_scratch.clear();
        for span in self.er_span.iter_mut() {
            let start = span.0 as usize;
            span.0 = self.er_scratch.len() as u32;
            self.er_scratch
                .extend_from_slice(&self.er_pool[start..start + span.1 as usize]);
        }
        std::mem::swap(self.er_pool, self.er_scratch);
    }

    /// Probes the swap/move of `tmc` with `t2` on `node2`. A rejected
    /// probe touches nothing; a commit performs the single mutating
    /// pass: `commTasks` removals off the old EdgeRoutes, the delta
    /// application, the relocation, then the buffered new routes become
    /// the committed EdgeRoutes and register their edges.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &mut self,
        tmc: u32,
        t2: Option<u32>,
        node1: u32,
        node2: u32,
        r2: u32,
        mc: f64,
        ac: f64,
    ) -> bool {
        self.stats.probes += 1;
        self.deltas.clear();
        let epoch = self.bump_link_epoch();
        self.collect_old_deltas(tmc, t2, epoch);
        self.collect_new_deltas(tmc, t2, r2, epoch);
        let (new_mc, new_ac) = self.peek_deltas(mc);
        let improves =
            new_mc < mc - CONG_EPS || (new_mc <= mc + CONG_EPS && new_ac < ac - CONG_EPS);
        if !improves {
            return false; // read-only probe: nothing to roll back
        }
        self.collect_affected(tmc, t2);
        // Old routes leave commTasks against the *pre-move* mapping.
        for i in 0..self.aff.len() {
            let e = self.aff[i];
            let (off, len) = self.er_span[e as usize];
            for j in off as usize..(off + len) as usize {
                self.comm_tasks.remove(self.er_pool[j] as usize, e);
            }
        }
        self.commit_deltas();
        self.relocate(tmc, t2, node1, node2);
        // Each affected edge is re-routed once against the committed
        // mapping (`task_router` is already updated), straight into the
        // slab — the "once per committed move" half of the EdgeRoutes
        // contract; probes themselves never route into the slab.
        for i in 0..self.aff.len() {
            let e = self.aff[i];
            let rec = self.edges[e as usize];
            let (ra, rb) = (
                self.task_router[rec.src as usize],
                self.task_router[rec.dst as usize],
            );
            let start = self.er_pool.len();
            self.routes.append_routers(ra, rb, self.er_pool, self.stats);
            for j in start..self.er_pool.len() {
                self.comm_tasks.insert(self.er_pool[j] as usize, e);
            }
            // EdgeRoutes invariant: the slab now reflects the committed
            // mapping again.
            let span = &mut self.er_span[e as usize];
            self.er_live -= span.1 as usize;
            *span = (start as u32, (self.er_pool.len() - start) as u32);
            self.er_live += span.1 as usize;
        }
        if self.er_pool.len() > 2 * self.er_live.max(32) {
            self.compact_routes();
        }
        self.stats.moves += 1;
        true
    }

    /// Probes up to `delta` BFS-ordered swap candidates for `tmc`;
    /// commits and returns `true` on the first (MC, AC) improvement.
    fn try_improve_task(&mut self, tmc: u32, delta: usize) -> bool {
        let node1 = self.mapping[tmc as usize];
        let w1 = self.tg.task_weight(tmc);
        // Loop-invariant: tmc stays on node1 until a probe commits.
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        self.sources.clear();
        self.nb_mark.reset();
        for &nb in self.tg.symmetric().neighbors(tmc) {
            self.sources.push(self.task_router[nb as usize]);
            self.nb_mark.mark(nb as usize);
        }
        if self.sources.is_empty() {
            return false;
        }
        let (mc, ac) = (self.current_max(), self.current_avg());
        self.t1_old_ready = false; // new pivot, new prefix
        self.bfs.start(self.sources.iter().copied());
        let mut evaluated = 0usize;
        while let Some(ev) = self.bfs.next(self.machine.router_graph()) {
            for node2 in self.machine.nodes_of_router(ev.vertex) {
                if node2 == node1 {
                    continue;
                }
                let Some(slot2) = self.alloc.slot_of(node2) else {
                    continue;
                };
                let slot2 = slot2 as usize;
                // Candidates: each resident task (swap), then a pure
                // move onto free capacity. BFS supplies the coarse
                // nearest-first order; within one node the
                // capacity-feasible residents are probed in ascending
                // incremental WH damage (oracle rows, mutation-free —
                // the §11 tiebreak), so an accepted congestion swap is
                // the least WH-damaging one this node offers.
                self.cand.clear();
                for t in self.buckets.iter(slot2) {
                    let w2 = self.tg.task_weight(t);
                    if !fits(self.free[slot2] + w2, w1) || !fits(self.free[slot1] + w1, w2) {
                        continue;
                    }
                    self.cand.push((0.0, t));
                }
                // Damages for the whole panel in one pass: oracle rows
                // hoisted once, the pivot's gain half shared by every
                // non-neighbor partner.
                let nb_mark = &*self.nb_mark;
                self.dist.fill_swap_damages(
                    self.tg,
                    self.task_router,
                    tmc,
                    ev.vertex,
                    |t| nb_mark.is_marked(t as usize),
                    self.cand,
                );
                // Only the first `delta - evaluated` candidates can be
                // probed before the budget runs out, so a partial
                // selection + sort of that prefix yields the exact
                // probe sequence of a full sort (the comparator is a
                // strict total order — ties break by task id) at a
                // fraction of the comparisons.
                let k = self.cand.len().min(delta - evaluated);
                let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
                if k < self.cand.len() && k > 0 {
                    self.cand.select_nth_unstable_by(k - 1, cmp);
                }
                self.cand[..k].sort_unstable_by(cmp);
                for i in 0..k {
                    let t = self.cand[i].1;
                    if self.probe(tmc, Some(t), node1, node2, ev.vertex, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
                if fits(self.free[slot2], w1) {
                    if self.probe(tmc, None, node1, node2, ev.vertex, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
            }
        }
        false
    }

    fn relocate(&mut self, t1: u32, t2: Option<u32>, node1: u32, node2: u32) {
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        let slot2 = self.alloc.slot_of(node2).unwrap() as usize;
        let w1 = self.tg.task_weight(t1);
        self.mapping[t1 as usize] = node2;
        self.task_router[t1 as usize] = self.machine.router_of(node2);
        self.buckets.relocate(slot1, slot2, t1);
        self.free[slot1] += w1;
        self.free[slot2] -= w1;
        if let Some(t) = t2 {
            let w2 = self.tg.task_weight(t);
            self.mapping[t as usize] = node1;
            self.task_router[t as usize] = self.machine.router_of(node1);
            self.buckets.relocate(slot2, slot1, t);
            self.free[slot2] += w2;
            self.free[slot1] -= w2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use crate::metrics::evaluate;
    use umpa_topology::{AllocSpec, Allocation, MachineConfig};

    fn line_machine(n: u32) -> Machine {
        MachineConfig::small(&[n], 1, 1).build()
    }

    #[test]
    fn relieves_an_overloaded_link() {
        let m = line_machine(8);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(6));
        // Three messages all crossing the 2-3 boundary when placed
        // consecutively, plus slack nodes to move to.
        let tg = TaskGraph::from_messages(6, [(0, 3, 4.0), (1, 4, 4.0), (2, 5, 4.0)], None);
        let mut mapping: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &m, &mapping);
        let (mc, _ac) =
            congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
        let after = evaluate(&tg, &m, &mapping);
        assert!(mc <= before.mc + 1e-9);
        assert!(
            after.mc <= before.mc + 1e-9,
            "MC worsened: {} -> {}",
            before.mc,
            after.mc
        );
        assert!((after.mc - mc).abs() < 1e-9, "state drifted from reality");
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn never_worsens_mc_and_matches_evaluator() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        for seed in 0..4u64 {
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let tg = TaskGraph::from_messages(
                8,
                (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
                None,
            );
            let mut mapping: Vec<u32> = (0..8usize).map(|t| alloc.node(t)).collect();
            let before = evaluate(&tg, &m, &mapping);
            let (mc, ac) =
                congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
            let after = evaluate(&tg, &m, &mapping);
            assert!(after.mc <= before.mc + 1e-9, "seed {seed}");
            assert!((after.mc - mc).abs() < 1e-9, "seed {seed}: mc mismatch");
            assert!((after.ac - ac).abs() < 1e-9, "seed {seed}: ac mismatch");
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
            None,
        );
        let mut scratch = CongScratch::new();
        for seed in 0..6u64 {
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let base: Vec<u32> = (0..8usize).map(|t| alloc.node(t)).collect();
            let mut warm = base.clone();
            let mut fresh = base.clone();
            let warm_out = congestion_refine_scratch(
                &tg,
                &m,
                &alloc,
                &mut warm,
                &CongRefineConfig::volume(),
                &mut scratch,
            );
            let fresh_out =
                congestion_refine(&tg, &m, &alloc, &mut fresh, &CongRefineConfig::volume());
            assert_eq!(warm, fresh, "seed {seed}: warm scratch diverged");
            assert_eq!(warm_out, fresh_out, "seed {seed}");
        }
    }

    #[test]
    fn message_variant_reduces_mmc() {
        let m = line_machine(8);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(6));
        let tg = TaskGraph::from_messages(6, [(0, 3, 1.0), (1, 4, 1.0), (2, 5, 1.0)], None);
        let mut mapping: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &m, &mapping);
        congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::messages());
        let after = evaluate(&tg, &m, &mapping);
        assert!(after.mmc <= before.mmc + 1e-9);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn no_congestion_is_a_noop() {
        let m = line_machine(4);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(2));
        // Tasks co-located per pair: zero link traffic.
        let tg = TaskGraph::from_messages(2, [(0, 1, 3.0)], None);
        let mut cfg = MachineConfig::small(&[4], 2, 2);
        cfg.nodes_per_router = 2;
        let m2 = cfg.build();
        let alloc2 = Allocation::generate(&m2, &AllocSpec::contiguous(2));
        let mut mapping = vec![alloc2.node(0), alloc2.node(1)];
        // Both nodes share router 0 → no traffic.
        let (mc, ac) =
            congestion_refine(&tg, &m2, &alloc2, &mut mapping, &CongRefineConfig::volume());
        assert_eq!((mc, ac), (0.0, 0.0));
        let _ = (m, alloc);
    }

    #[test]
    fn respects_capacity_during_swaps() {
        let m = MachineConfig::small(&[6], 1, 2).build();
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(3));
        let tg = TaskGraph::from_messages(
            5,
            [
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 2.0),
            ],
            None,
        );
        let mut mapping = vec![
            alloc.node(0),
            alloc.node(0),
            alloc.node(1),
            alloc.node(1),
            alloc.node(2),
        ];
        congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn stats_report_probes_and_cache_hits() {
        let m = line_machine(8);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(6));
        let tg = TaskGraph::from_messages(6, [(0, 3, 4.0), (1, 4, 4.0), (2, 5, 4.0)], None);
        let mut mapping: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        let mut scratch = CongScratch::new();
        congestion_refine_scratch(
            &tg,
            &m,
            &alloc,
            &mut mapping,
            &CongRefineConfig::volume(),
            &mut scratch,
        );
        let stats = scratch.stats();
        assert!(stats.probes >= stats.moves);
        assert!(stats.moves >= 1, "the overloaded line must admit a move");
        assert!(stats.route_queries > 0);
        // The 8-router line is far under the cache threshold: every
        // query is a slice read.
        assert_eq!(stats.route_cache_hits, stats.route_queries);
        assert_eq!(stats.route_cache_hit_rate(), 1.0);

        // With the cache disabled the same refinement runs analytically
        // (hit rate 0) and produces the identical mapping.
        let mut no_cache = line_machine(8);
        no_cache.set_route_cache_threshold(0);
        let mut mapping2: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        congestion_refine_scratch(
            &tg,
            &no_cache,
            &alloc,
            &mut mapping2,
            &CongRefineConfig::volume(),
            &mut scratch,
        );
        assert_eq!(mapping, mapping2);
        assert_eq!(scratch.stats().route_cache_hits, 0);
        assert_eq!(scratch.stats().route_cache_hit_rate(), 0.0);
    }
}
