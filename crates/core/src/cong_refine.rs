//! Algorithm 3: Maximum-congestion refinement (`UMC` / `UMMC`).
//!
//! Exact congestion refinement for statically-routed networks:
//!
//! * `congHeap` holds every link keyed by its congestion — volume/bw
//!   for the `MC` variant, message count for `MMC`;
//! * `commTasks[e]` registers the tasks whose messages traverse link
//!   `e` (the paper stores them in a red-black `std::set`; a reusable
//!   sorted-vector set here — same ascending iteration order, zero
//!   steady-state allocation);
//! * each round peeks the most congested link `e_mc` and, for each of
//!   its tasks, probes swap partners in BFS order from the task's
//!   neighbors' nodes (minimal WH damage); a **virtual swap**
//!   temporarily re-keys the affected heap entries to read the new MC
//!   and AC in `O(log |Em|)` per touched link, then commits or rolls
//!   back;
//! * a swap is accepted when it lowers MC, or keeps MC and lowers AC;
//!   after `Δ` fruitless probes the task is abandoned, and when the
//!   most congested link yields no accepted swap at all the algorithm
//!   stops (the paper's termination rule).
//!
//! All per-run buffers live in a reusable [`CongScratch`]; a warm
//! scratch makes repeated refinements allocation-free apart from
//! `commTasks` growth beyond its high-water mark (DESIGN.md §8).

use umpa_ds::{IndexedMaxHeap, SlotBuckets};
use umpa_graph::{Bfs, TaskGraph};
use umpa_topology::{Allocation, Machine};

use crate::gain::HopDist;
use crate::mapping::fits;

/// Which congestion is being minimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionKind {
    /// Volume congestion: Σ volume / bandwidth (the `MC` metric).
    Volume,
    /// Message congestion: message count per link (the `MMC` metric).
    Messages,
}

/// Configuration of the congestion refinement.
#[derive(Clone, Copy, Debug)]
pub struct CongRefineConfig {
    /// Max evaluated swaps per task of the congested link (`Δ`).
    pub delta: usize,
    /// Hard cap on accepted swaps (each strictly improves (MC, AC), so
    /// this only guards pathological float drift).
    pub max_moves: u32,
    /// Which congestion to minimize.
    pub kind: CongestionKind,
}

impl CongRefineConfig {
    /// Paper defaults for the `MC` (volume) variant.
    pub fn volume() -> Self {
        Self {
            delta: 8,
            max_moves: 10_000,
            kind: CongestionKind::Volume,
        }
    }

    /// Paper defaults for the `MMC` (message) variant.
    pub fn messages() -> Self {
        Self {
            delta: 8,
            max_moves: 10_000,
            kind: CongestionKind::Messages,
        }
    }
}

/// Per-link communicating-task registry: an **amortized-O(1)
/// insert/remove multiset with deferred sorting** per link.
///
/// The previous representation was a sorted vector per link, which paid
/// an O(n) `Vec::insert`/`Vec::remove` element shift on every route
/// update — the second-hottest cost of a congestion-refinement commit.
/// Here `insert` is a plain tail push and `remove` records the task in
/// a pending-removal list; [`collect_members_into`]
/// (Self::collect_members_into) normalizes a link lazily — sort both
/// lists (in place, allocation-free), cancel each removal against one
/// matching occurrence, compact — and is only called for the one most
/// congested link per outer round. Iteration still yields **distinct
/// task ids in ascending order**, matching the `BTreeSet` the paper's
/// `commTasks` is modeled on, and a warm instance never touches the
/// allocator (DESIGN.md §8, §11).
///
/// Multiplicity is meaningful: a task appears once per incident edge
/// routed over the link, so removing the routes of one edge leaves the
/// task registered while another of its edges still crosses the link
/// (the old set semantics dropped it prematurely).
#[derive(Default)]
struct LinkTaskSets {
    /// Per-link members with multiplicity; sorted ascending when the
    /// link is not dirty.
    items: Vec<Vec<u32>>,
    /// Per-link pending removals, unordered.
    removed: Vec<Vec<u32>>,
    /// Whether the link needs normalization before iteration.
    dirty: Vec<bool>,
}

impl LinkTaskSets {
    /// Clears every set and guarantees `n` of them, reusing inner
    /// vector capacities.
    fn reset(&mut self, n: usize) {
        for s in &mut self.items {
            s.clear();
        }
        for s in &mut self.removed {
            s.clear();
        }
        self.dirty.clear();
        self.dirty.resize(self.items.len().max(n), false);
        if n > self.items.len() {
            self.items.resize_with(n, Vec::new);
            self.removed.resize_with(n, Vec::new);
        }
    }

    /// Registers one occurrence of `t` on `link`. O(1).
    fn insert(&mut self, link: usize, t: u32) {
        self.items[link].push(t);
        self.dirty[link] = true;
    }

    /// Cancels one occurrence of `t` on `link` (deferred, amortized
    /// O(1)): the cancellation is recorded, and the link is compacted
    /// once pending removals reach half its member list — so storage
    /// stays proportional to live membership even for links that never
    /// become the most congested, while each normalization's sort is
    /// paid for by the pushes that triggered it.
    fn remove(&mut self, link: usize, t: u32) {
        self.removed[link].push(t);
        self.dirty[link] = true;
        if self.removed[link].len() >= 16 && 2 * self.removed[link].len() >= self.items[link].len()
        {
            self.normalize(link);
        }
    }

    /// Applies pending removals and restores ascending order.
    fn normalize(&mut self, link: usize) {
        if !self.dirty[link] {
            return;
        }
        let v = &mut self.items[link];
        let r = &mut self.removed[link];
        v.sort_unstable();
        r.sort_unstable();
        let mut w = 0usize;
        let mut j = 0usize;
        for i in 0..v.len() {
            let x = v[i];
            while j < r.len() && r[j] < x {
                j += 1; // removal with no matching occurrence: skip
            }
            if j < r.len() && r[j] == x {
                j += 1; // cancel this occurrence
                continue;
            }
            v[w] = x;
            w += 1;
        }
        v.truncate(w);
        r.clear();
        self.dirty[link] = false;
    }

    /// Writes `link`'s distinct members into `out` (cleared first) in
    /// ascending task-id order. Allocation-free once `out` is warm.
    fn collect_members_into(&mut self, link: usize, out: &mut Vec<u32>) {
        self.normalize(link);
        out.clear();
        let mut last = u32::MAX;
        for &t in &self.items[link] {
            if t != last {
                out.push(t);
                last = t;
            }
        }
    }
}

/// Reusable buffers for one congestion-refinement run.
#[derive(Default)]
pub struct CongScratch {
    heap: IndexedMaxHeap,
    traffic: Vec<f64>,
    inv_cost: Vec<f64>,
    comm_tasks: LinkTaskSets,
    buckets: SlotBuckets,
    free: Vec<f64>,
    bfs: Bfs,
    links: Vec<u32>,
    edges: Vec<(u32, u32, f64)>,
    deltas: Vec<(u32, f64)>,
    tasks: Vec<u32>,
    /// Swap candidates of one node, as (WH damage, task).
    cand: Vec<(f64, u32)>,
    sources: Vec<u32>,
}

impl CongScratch {
    /// Creates an empty scratch; buffers are sized on first run.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Refines `mapping` in place; returns the final `(max, avg)`
/// congestion in the chosen kind's units.
///
/// For [`CongestionKind::Messages`] pass a task graph whose edge
/// weights are message counts (see `TaskGraph::group_quotient` with
/// `count_weighted`), so that coarse edges carry the number of fine
/// messages they bundle.
pub fn congestion_refine(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
) -> (f64, f64) {
    let mut scratch = CongScratch::new();
    congestion_refine_scratch(tg, machine, alloc, mapping, cfg, &mut scratch)
}

/// Scratch-reusing form of [`congestion_refine`]; allocation-free once
/// `scratch` is warm.
pub fn congestion_refine_scratch(
    tg: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    mapping: &mut [u32],
    cfg: &CongRefineConfig,
    scratch: &mut CongScratch,
) -> (f64, f64) {
    let mut state = CongState::new(tg, machine, alloc, mapping, cfg.kind, scratch);
    let mut moves = 0u32;
    'outer: while moves < cfg.max_moves {
        let Some((emc, top_key)) = state.heap.peek() else {
            break;
        };
        if top_key <= 0.0 {
            break; // no congestion at all
        }
        // Snapshot (try_improve_task edits the registry mid-scan); this
        // is the one read that triggers the deferred normalization.
        state
            .comm_tasks
            .collect_members_into(emc as usize, state.tasks);
        for i in 0..state.tasks.len() {
            let tmc = state.tasks[i];
            if state.try_improve_task(tmc, cfg.delta) {
                moves += 1;
                continue 'outer;
            }
        }
        break; // no improvement for the most congested link → stop
    }
    (state.current_max(), state.current_avg())
}

/// Incrementally maintained congestion state, borrowing all buffers
/// from a [`CongScratch`].
struct CongState<'a> {
    tg: &'a TaskGraph,
    machine: &'a Machine,
    alloc: &'a Allocation,
    /// Oracle-or-analytic distances for the WH-damage tiebreak.
    dist: HopDist<'a>,
    mapping: &'a mut [u32],
    kind: CongestionKind,
    /// Per-link congestion key (volume/bw or message count).
    heap: &'a mut IndexedMaxHeap,
    traffic: &'a mut Vec<f64>,
    /// 1/bw (volume kind) or 1 (message kind) per link.
    inv_cost: &'a mut Vec<f64>,
    comm_tasks: &'a mut LinkTaskSets,
    sum_key: f64,
    used_links: usize,
    buckets: &'a mut SlotBuckets,
    free: &'a mut Vec<f64>,
    bfs: &'a mut Bfs,
    links: &'a mut Vec<u32>,
    edges: &'a mut Vec<(u32, u32, f64)>,
    deltas: &'a mut Vec<(u32, f64)>,
    tasks: &'a mut Vec<u32>,
    cand: &'a mut Vec<(f64, u32)>,
    sources: &'a mut Vec<u32>,
}

impl<'a> CongState<'a> {
    fn new(
        tg: &'a TaskGraph,
        machine: &'a Machine,
        alloc: &'a Allocation,
        mapping: &'a mut [u32],
        kind: CongestionKind,
        scratch: &'a mut CongScratch,
    ) -> Self {
        let CongScratch {
            heap,
            traffic,
            inv_cost,
            comm_tasks,
            buckets,
            free,
            bfs,
            links,
            edges,
            deltas,
            tasks,
            cand,
            sources,
        } = scratch;
        let nl = machine.num_links();
        inv_cost.clear();
        inv_cost.extend((0..nl as u32).map(|l| match kind {
            CongestionKind::Volume => 1.0 / machine.link_bandwidth(l),
            CongestionKind::Messages => 1.0,
        }));
        buckets.reset(alloc.num_nodes(), tg.num_tasks());
        free.clear();
        free.extend((0..alloc.num_nodes()).map(|s| f64::from(alloc.procs(s))));
        for (t, &node) in mapping.iter().enumerate() {
            let slot = alloc.slot_of(node).expect("mapping must be feasible") as usize;
            buckets.insert(slot, t as u32);
            free[slot] -= tg.task_weight(t as u32);
        }
        traffic.clear();
        traffic.resize(nl, 0.0);
        comm_tasks.reset(nl);
        heap.reset(nl);
        bfs.ensure(machine.num_routers());
        let mut s = Self {
            tg,
            machine,
            alloc,
            dist: HopDist::new(machine),
            mapping,
            kind,
            heap,
            traffic,
            inv_cost,
            comm_tasks,
            sum_key: 0.0,
            used_links: 0,
            buckets,
            free,
            bfs,
            links,
            edges,
            deltas,
            tasks,
            cand,
            sources,
        };
        // Initial routing of every message (INITCONG).
        for (src, dst, c) in s.tg.messages() {
            let weight = s.edge_weight(c);
            let (a, b) = (s.mapping[src as usize], s.mapping[dst as usize]);
            s.links.clear();
            s.machine.route_links(a, b, s.links);
            for i in 0..s.links.len() {
                let l = s.links[i] as usize;
                if s.traffic[l] == 0.0 {
                    s.used_links += 1;
                }
                s.traffic[l] += weight;
                s.sum_key += weight * s.inv_cost[l];
                s.comm_tasks.insert(l, src);
                s.comm_tasks.insert(l, dst);
            }
        }
        for l in 0..nl as u32 {
            s.heap
                .push(l, s.traffic[l as usize] * s.inv_cost[l as usize]);
        }
        s
    }

    /// The per-message weight entering congestion: its volume for the
    /// MC variant, 1 for MMC — unless the task graph was already built
    /// count-weighted, in which case the edge weight *is* the count.
    #[inline]
    fn edge_weight(&self, c: f64) -> f64 {
        match self.kind {
            CongestionKind::Volume => c,
            CongestionKind::Messages => c,
        }
    }

    fn current_max(&self) -> f64 {
        self.heap.peek().map_or(0.0, |(_, k)| k)
    }

    fn current_avg(&self) -> f64 {
        if self.used_links == 0 {
            0.0
        } else {
            self.sum_key / self.used_links as f64
        }
    }

    /// Collects the directed message edges incident to `t1` (and `t2`
    /// if given), deduplicated, into `self.edges`.
    fn collect_affected_edges(&mut self, t1: u32, t2: Option<u32>) {
        self.edges.clear();
        fn push(out: &mut Vec<(u32, u32, f64)>, s: u32, d: u32, c: f64) {
            if !out.iter().any(|&(a, b, _)| a == s && b == d) {
                out.push((s, d, c));
            }
        }
        for t in std::iter::once(t1).chain(t2) {
            for (d, c) in self.tg.out_edges(t) {
                push(self.edges, t, d, c);
            }
            for (sr, c) in self.tg.in_edges(t) {
                push(self.edges, sr, t, c);
            }
        }
    }

    /// Accumulates per-link traffic deltas into `self.deltas` for
    /// relocating `t1 → node2` (and `t2 → node1` if swapping), over the
    /// edge set collected by [`collect_affected_edges`].
    fn collect_deltas(&mut self, t1: u32, t2: Option<u32>, node2: u32) {
        let node1 = self.mapping[t1 as usize];
        self.deltas.clear();
        fn add(deltas: &mut Vec<(u32, f64)>, link: u32, d: f64) {
            match deltas.iter_mut().find(|e| e.0 == link) {
                Some(e) => e.1 += d,
                None => deltas.push((link, d)),
            }
        }
        // Old routes (current mapping) …
        for i in 0..self.edges.len() {
            let (s, d, c) = self.edges[i];
            let w = self.edge_weight(c);
            let (a, b) = (self.mapping[s as usize], self.mapping[d as usize]);
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                add(self.deltas, self.links[j], -w);
            }
        }
        // … and new routes under the virtual relocation.
        for i in 0..self.edges.len() {
            let (s, d, c) = self.edges[i];
            let w = self.edge_weight(c);
            let node_of = |t: u32| -> u32 {
                if t == t1 {
                    node2
                } else if Some(t) == t2 {
                    node1
                } else {
                    self.mapping[t as usize]
                }
            };
            let (a, b) = (node_of(s), node_of(d));
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                add(self.deltas, self.links[j], w);
            }
        }
        self.deltas.retain(|&(_, d)| d != 0.0);
    }

    /// Applies `self.deltas` (negated if `negate`) to the heap/sums;
    /// returns `(mc, ac)` after. Apply-then-negate restores the
    /// original state exactly.
    fn apply_deltas(&mut self, negate: bool) -> (f64, f64) {
        let sign = if negate { -1.0 } else { 1.0 };
        for i in 0..self.deltas.len() {
            let (l, raw) = self.deltas[i];
            let d = sign * raw;
            let li = l as usize;
            let before = self.traffic[li];
            let after = before + d;
            if before == 0.0 && after > 0.0 {
                self.used_links += 1;
            } else if before > 0.0 && after <= 1e-12 {
                self.used_links -= 1;
            }
            self.traffic[li] = if after.abs() < 1e-12 { 0.0 } else { after };
            self.sum_key += d * self.inv_cost[li];
            self.heap
                .change_key(l, self.traffic[li] * self.inv_cost[li]);
        }
        (self.current_max(), self.current_avg())
    }

    /// Updates `commTasks` membership for the endpoints of the
    /// collected edges before (`remove = true`) or after a committed
    /// relocation.
    fn update_comm_tasks(&mut self, remove: bool) {
        for i in 0..self.edges.len() {
            let (s, d, _) = self.edges[i];
            let (a, b) = (self.mapping[s as usize], self.mapping[d as usize]);
            self.links.clear();
            self.machine.route_links(a, b, self.links);
            for j in 0..self.links.len() {
                let l = self.links[j] as usize;
                if remove {
                    self.comm_tasks.remove(l, s);
                    self.comm_tasks.remove(l, d);
                } else {
                    self.comm_tasks.insert(l, s);
                    self.comm_tasks.insert(l, d);
                }
            }
        }
    }

    /// Probes the swap/move of `tmc` with `t2` on `node2`; commits and
    /// returns `true` on an (MC, AC) improvement, rolls back otherwise.
    fn probe(
        &mut self,
        tmc: u32,
        t2: Option<u32>,
        node1: u32,
        node2: u32,
        mc: f64,
        ac: f64,
    ) -> bool {
        self.collect_affected_edges(tmc, t2);
        self.collect_deltas(tmc, t2, node2);
        let (new_mc, new_ac) = self.apply_deltas(false);
        let improves = new_mc < mc - 1e-12 || (new_mc <= mc + 1e-12 && new_ac < ac - 1e-12);
        if improves {
            // Commit: fix commTasks (old routes removed with the
            // *pre-move* mapping), then move tasks.
            self.apply_deltas(true);
            self.update_comm_tasks(true);
            self.apply_deltas(false);
            self.relocate(tmc, t2, node1, node2);
            self.update_comm_tasks(false);
            return true;
        }
        // Roll back the virtual swap.
        self.apply_deltas(true);
        false
    }

    /// Probes up to `delta` BFS-ordered swap candidates for `tmc`;
    /// commits and returns `true` on the first (MC, AC) improvement.
    fn try_improve_task(&mut self, tmc: u32, delta: usize) -> bool {
        let node1 = self.mapping[tmc as usize];
        let w1 = self.tg.task_weight(tmc);
        // Loop-invariant: tmc stays on node1 until a probe commits.
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        self.sources.clear();
        for &nb in self.tg.symmetric().neighbors(tmc) {
            self.sources
                .push(self.machine.router_of(self.mapping[nb as usize]));
        }
        if self.sources.is_empty() {
            return false;
        }
        let (mc, ac) = (self.current_max(), self.current_avg());
        self.bfs.start(self.sources.iter().copied());
        let mut evaluated = 0usize;
        while let Some(ev) = self.bfs.next(self.machine.router_graph()) {
            for node2 in self.machine.nodes_of_router(ev.vertex) {
                if node2 == node1 {
                    continue;
                }
                let Some(slot2) = self.alloc.slot_of(node2) else {
                    continue;
                };
                let slot2 = slot2 as usize;
                // Candidates: each resident task (swap), then a pure
                // move onto free capacity. BFS supplies the coarse
                // nearest-first order; within one node the
                // capacity-feasible residents are probed in ascending
                // incremental WH damage (oracle rows, mutation-free —
                // the §11 tiebreak), so an accepted congestion swap is
                // the least WH-damaging one this node offers.
                self.cand.clear();
                for t in self.buckets.iter(slot2) {
                    let w2 = self.tg.task_weight(t);
                    if !fits(self.free[slot2] + w2, w1) || !fits(self.free[slot1] + w1, w2) {
                        continue;
                    }
                    let damage = -self
                        .dist
                        .swap_gain(self.tg, self.mapping, tmc, Some(t), node2);
                    self.cand.push((damage, t));
                }
                self.cand
                    .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for i in 0..self.cand.len() {
                    let t = self.cand[i].1;
                    if self.probe(tmc, Some(t), node1, node2, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
                if fits(self.free[slot2], w1) {
                    if self.probe(tmc, None, node1, node2, mc, ac) {
                        return true;
                    }
                    evaluated += 1;
                    if evaluated >= delta {
                        return false;
                    }
                }
            }
        }
        false
    }

    fn relocate(&mut self, t1: u32, t2: Option<u32>, node1: u32, node2: u32) {
        let slot1 = self.alloc.slot_of(node1).unwrap() as usize;
        let slot2 = self.alloc.slot_of(node2).unwrap() as usize;
        let w1 = self.tg.task_weight(t1);
        self.mapping[t1 as usize] = node2;
        self.buckets.relocate(slot1, slot2, t1);
        self.free[slot1] += w1;
        self.free[slot2] -= w1;
        if let Some(t) = t2 {
            let w2 = self.tg.task_weight(t);
            self.mapping[t as usize] = node1;
            self.buckets.relocate(slot2, slot1, t);
            self.free[slot2] += w2;
            self.free[slot1] -= w2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_mapping;
    use crate::metrics::evaluate;
    use umpa_topology::{AllocSpec, Allocation, MachineConfig};

    fn line_machine(n: u32) -> Machine {
        MachineConfig::small(&[n], 1, 1).build()
    }

    #[test]
    fn relieves_an_overloaded_link() {
        let m = line_machine(8);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(6));
        // Three messages all crossing the 2-3 boundary when placed
        // consecutively, plus slack nodes to move to.
        let tg = TaskGraph::from_messages(6, [(0, 3, 4.0), (1, 4, 4.0), (2, 5, 4.0)], None);
        let mut mapping: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &m, &mapping);
        let (mc, _ac) =
            congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
        let after = evaluate(&tg, &m, &mapping);
        assert!(mc <= before.mc + 1e-9);
        assert!(
            after.mc <= before.mc + 1e-9,
            "MC worsened: {} -> {}",
            before.mc,
            after.mc
        );
        assert!((after.mc - mc).abs() < 1e-9, "state drifted from reality");
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn never_worsens_mc_and_matches_evaluator() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        for seed in 0..4u64 {
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let tg = TaskGraph::from_messages(
                8,
                (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
                None,
            );
            let mut mapping: Vec<u32> = (0..8usize).map(|t| alloc.node(t)).collect();
            let before = evaluate(&tg, &m, &mapping);
            let (mc, ac) =
                congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
            let after = evaluate(&tg, &m, &mapping);
            assert!(after.mc <= before.mc + 1e-9, "seed {seed}");
            assert!((after.mc - mc).abs() < 1e-9, "seed {seed}: mc mismatch");
            assert!((after.ac - ac).abs() < 1e-9, "seed {seed}: ac mismatch");
            validate_mapping(&tg, &alloc, &mapping).unwrap();
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let m = MachineConfig::small(&[4, 4], 1, 1).build();
        let tg = TaskGraph::from_messages(
            8,
            (0..8u32).flat_map(|i| [(i, (i + 1) % 8, 2.0), (i, (i + 4) % 8, 1.0)]),
            None,
        );
        let mut scratch = CongScratch::new();
        for seed in 0..6u64 {
            let alloc = Allocation::generate(&m, &AllocSpec::sparse(8, seed));
            let base: Vec<u32> = (0..8usize).map(|t| alloc.node(t)).collect();
            let mut warm = base.clone();
            let mut fresh = base.clone();
            let warm_out = congestion_refine_scratch(
                &tg,
                &m,
                &alloc,
                &mut warm,
                &CongRefineConfig::volume(),
                &mut scratch,
            );
            let fresh_out =
                congestion_refine(&tg, &m, &alloc, &mut fresh, &CongRefineConfig::volume());
            assert_eq!(warm, fresh, "seed {seed}: warm scratch diverged");
            assert_eq!(warm_out, fresh_out, "seed {seed}");
        }
    }

    #[test]
    fn message_variant_reduces_mmc() {
        let m = line_machine(8);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(6));
        let tg = TaskGraph::from_messages(6, [(0, 3, 1.0), (1, 4, 1.0), (2, 5, 1.0)], None);
        let mut mapping: Vec<u32> = (0..6usize).map(|t| alloc.node(t)).collect();
        let before = evaluate(&tg, &m, &mapping);
        congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::messages());
        let after = evaluate(&tg, &m, &mapping);
        assert!(after.mmc <= before.mmc + 1e-9);
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }

    #[test]
    fn no_congestion_is_a_noop() {
        let m = line_machine(4);
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(2));
        // Tasks co-located per pair: zero link traffic.
        let tg = TaskGraph::from_messages(2, [(0, 1, 3.0)], None);
        let mut cfg = MachineConfig::small(&[4], 2, 2);
        cfg.nodes_per_router = 2;
        let m2 = cfg.build();
        let alloc2 = Allocation::generate(&m2, &AllocSpec::contiguous(2));
        let mut mapping = vec![alloc2.node(0), alloc2.node(1)];
        // Both nodes share router 0 → no traffic.
        let (mc, ac) =
            congestion_refine(&tg, &m2, &alloc2, &mut mapping, &CongRefineConfig::volume());
        assert_eq!((mc, ac), (0.0, 0.0));
        let _ = (m, alloc);
    }

    #[test]
    fn respects_capacity_during_swaps() {
        let m = MachineConfig::small(&[6], 1, 2).build();
        let alloc = Allocation::generate(&m, &AllocSpec::contiguous(3));
        let tg = TaskGraph::from_messages(
            5,
            [
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 2.0),
            ],
            None,
        );
        let mut mapping = vec![
            alloc.node(0),
            alloc.node(0),
            alloc.node(1),
            alloc.node(1),
            alloc.node(2),
        ];
        congestion_refine(&tg, &m, &alloc, &mut mapping, &CongRefineConfig::volume());
        validate_mapping(&tg, &alloc, &mapping).unwrap();
    }
}
