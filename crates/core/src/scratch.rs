//! [`MapperScratch`] — the reusable workspace of the mapping engine.
//!
//! Every hot-path algorithm (Algorithm 1 greedy growth, Algorithm 2 WH
//! refinement, Algorithm 3 congestion refinement) owns per-run buffers:
//! BFS queues and visit marks, indexed heaps, capacity vectors, slot
//! residency registries, routing and delta accumulators. Allocating
//! them per call dominates small-problem runtimes and defeats the
//! paper's headline speed claim. A [`MapperScratch`] owns all of them;
//! threading one warm scratch through
//! [`map_tasks_with`](crate::pipeline::map_tasks_with) (or the batched
//! [`map_many`](crate::pipeline::map_many)) makes the steady-state
//! mapping phase allocation-free — buffers grow to the high-water mark
//! of the problems seen and are then reused verbatim.
//!
//! Buffers are sized lazily: a scratch built for one machine/task-graph
//! shape serves any other shape (everything `reset`s on entry), so one
//! long-lived scratch per worker thread is the intended usage.

use crate::cong_refine::CongScratch;
use crate::greedy::GreedyScratch;
use crate::multilevel::MultilevelScratch;
use crate::remap::RemapScratch;
use crate::wh_refine::WhScratch;

/// Owns every per-run buffer of the mapping engine. See the module
/// docs; create one per worker thread and reuse it across requests.
#[derive(Default)]
pub struct MapperScratch {
    /// Algorithm 1 buffers.
    pub greedy: GreedyScratch,
    /// Algorithm 2 buffers.
    pub wh: WhScratch,
    /// Algorithm 3 buffers.
    pub cong: CongScratch,
    /// Multilevel coarsen–map–refine hierarchy and matching buffers.
    pub multilevel: MultilevelScratch,
    /// Incremental-remap repair buffers.
    pub remap: RemapScratch,
    /// Coarse-mapping buffer shared by the pipeline's phase 2.
    pub(crate) coarse: Vec<u32>,
}

impl MapperScratch {
    /// Creates an empty scratch; every buffer is sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
