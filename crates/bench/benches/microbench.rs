//! Microbenchmarks: the building blocks whose complexity the paper
//! analyzes (routing, BFS, heap ops, metric evaluation) and the
//! end-to-end mappers of Figure 3.
//!
//! Criterion is unavailable offline; this uses the `umpa_bench::timing`
//! harness (`cargo bench -p umpa-bench`). Pass `--fast` for a smoke run.

use umpa_bench::timing::{bench_ns, print_samples, BenchOpts, Sample};
use umpa_core::prelude::*;
use umpa_graph::{Bfs, TaskGraph};
use umpa_matgen::spmv::spmv_task_graph;
use umpa_partition::PartitionerKind;
use umpa_topology::prelude::*;

fn machine() -> Machine {
    MachineConfig::hopper().build()
}

fn bench_routing(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let m = machine();
    let pairs: Vec<(u32, u32)> = (0..256u32)
        .map(|i| (i * 13 % m.num_nodes() as u32, i * 97 % m.num_nodes() as u32))
        .collect();
    let mut links = Vec::new();
    out.push(bench_ns("torus_route_256_pairs", opts, || {
        let mut total = 0usize;
        for &(x, y) in &pairs {
            links.clear();
            m.route_links(x, y, &mut links);
            total += links.len();
        }
        total
    }));
    out.push(bench_ns("torus_distance_256_pairs", opts, || {
        let mut total = 0u32;
        for &(x, y) in &pairs {
            total += m.hops(x, y);
        }
        total
    }));
}

/// The dispatch experiment behind the `Topology` enum decision: route
/// the same pair set through the enum (static, inlinable) and through a
/// `dyn` wrapper (what a trait-object design would pay per call). The
/// enum consistently wins or ties; the losing design would buy
/// flexibility the workspace has no use for (backends are a closed,
/// compiled-in set). Recorded in DESIGN.md §10.
fn bench_dispatch(opts: &BenchOpts, out: &mut Vec<Sample>) {
    use umpa_topology::Topology;

    trait DynRoute {
        fn route(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>);
    }
    impl DynRoute for Topology {
        fn route(&self, a: u32, b: u32, mode: LinkMode, out: &mut Vec<u32>) {
            self.route_links(a, b, mode, out);
        }
    }

    let machines: Vec<(&str, Machine)> = vec![
        ("torus", machine()),
        ("fattree", FatTreeConfig::small(8, 2, 16).build()),
        ("dragonfly", DragonflyConfig::small(9, 8, 2).build()),
    ];
    for (name, m) in &machines {
        let nr = m.num_terminal_routers() as u32;
        let pairs: Vec<(u32, u32)> = (0..256u32).map(|i| (i * 13 % nr, i * 97 % nr)).collect();
        let topo = m.topology();
        let dynamic: &dyn DynRoute = topo;
        let mut links = Vec::new();
        out.push(bench_ns(&format!("dispatch_enum/{name}"), opts, || {
            let mut total = 0usize;
            for &(x, y) in &pairs {
                links.clear();
                topo.route_links(x, y, LinkMode::Directed, &mut links);
                total += links.len();
            }
            total
        }));
        out.push(bench_ns(&format!("dispatch_dyn/{name}"), opts, || {
            let mut total = 0usize;
            for &(x, y) in &pairs {
                links.clear();
                dynamic.route(x, y, LinkMode::Directed, &mut links);
                total += links.len();
            }
            total
        }));
    }
}

fn bench_bfs(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let m = machine();
    let g = m.router_graph();
    let mut bfs = Bfs::new(g.num_vertices());
    out.push(bench_ns("router_graph_full_bfs", opts, || {
        bfs.start([0u32]);
        let mut count = 0usize;
        while bfs.next(g).is_some() {
            count += 1;
        }
        count
    }));
}

fn bench_heap(opts: &BenchOpts, out: &mut Vec<Sample>) {
    use umpa_ds::IndexedMaxHeap;
    out.push(bench_ns("indexed_heap_10k_mixed_ops", opts, || {
        let mut h = IndexedMaxHeap::new(10_000);
        for i in 0..10_000u32 {
            h.push(i, f64::from(i * 2654435761 % 10_000));
        }
        for i in 0..5_000u32 {
            h.change_key(i, f64::from(i % 97));
        }
        let mut sum = 0.0;
        while let Some((_, k)) = h.pop() {
            sum += k;
        }
        sum
    }));
}

/// Shared fixture: a PATOH-partitioned stencil task graph.
fn fixture(parts: usize) -> (Machine, Allocation, TaskGraph) {
    let m = machine();
    let a = umpa_matgen::gen::stencil2d(64, 64, umpa_matgen::gen::Stencil2D::FivePoint);
    let part = PartitionerKind::Patoh.partition_matrix(&a, parts, 42);
    let tg = spmv_task_graph(&a, &part, parts);
    let alloc = Allocation::generate(&m, &AllocSpec::sparse(parts / 16, 11));
    (m, alloc, tg)
}

fn bench_metrics(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let (m, alloc, tg) = fixture(256);
    let cfg = PipelineConfig::default();
    let mapped = map_tasks(&tg, &m, &alloc, MapperKind::Greedy, &cfg);
    out.push(bench_ns("evaluate_metrics_256_tasks", opts, || {
        evaluate(&tg, &m, &mapped.fine_mapping).wh
    }));
}

fn bench_mappers(opts: &BenchOpts, out: &mut Vec<Sample>) {
    // Figure 3's measurement: wall time per mapping algorithm.
    for parts in [128usize, 256] {
        let (m, alloc, tg) = fixture(parts);
        let cfg = PipelineConfig::default();
        for kind in MapperKind::all() {
            out.push(bench_ns(
                &format!("mappers_fig3/{}/{parts}", kind.name()),
                opts,
                || map_tasks(&tg, &m, &alloc, kind, &cfg).fine_mapping.len(),
            ));
        }
    }
}

fn bench_partitioner(opts: &BenchOpts, out: &mut Vec<Sample>) {
    let a = umpa_matgen::gen::stencil2d(64, 64, umpa_matgen::gen::Stencil2D::FivePoint);
    for kind in [PartitionerKind::Scotch, PartitionerKind::Patoh] {
        out.push(bench_ns(
            &format!("partitioner/{}", kind.name()),
            opts,
            || kind.partition_matrix(&a, 64, 7).len(),
        ));
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let opts = if fast {
        BenchOpts::fast()
    } else {
        BenchOpts::default()
    };
    let mut out = Vec::new();
    bench_routing(&opts, &mut out);
    bench_dispatch(&opts, &mut out);
    bench_bfs(&opts, &mut out);
    bench_heap(&opts, &mut out);
    bench_metrics(&opts, &mut out);
    bench_mappers(&opts, &mut out);
    bench_partitioner(&opts, &mut out);
    print_samples(&out);
}
