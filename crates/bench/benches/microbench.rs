//! Criterion microbenchmarks: the building blocks whose complexity the
//! paper analyzes (routing, BFS, heap ops, metric evaluation) and the
//! end-to-end mappers of Figure 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use umpa_core::prelude::*;
use umpa_graph::{Bfs, TaskGraph};
use umpa_matgen::spmv::spmv_task_graph;
use umpa_partition::PartitionerKind;
use umpa_topology::prelude::*;

fn machine() -> Machine {
    MachineConfig::hopper().build()
}

fn bench_routing(c: &mut Criterion) {
    let m = machine();
    let pairs: Vec<(u32, u32)> = (0..256u32)
        .map(|i| (i * 13 % m.num_nodes() as u32, i * 97 % m.num_nodes() as u32))
        .collect();
    c.bench_function("torus_route_256_pairs", |b| {
        let mut scratch = Vec::new();
        let mut links = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &(x, y) in &pairs {
                links.clear();
                m.route_links(x, y, &mut scratch, &mut links);
                total += links.len();
            }
            std::hint::black_box(total)
        })
    });
    c.bench_function("torus_distance_256_pairs", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for &(x, y) in &pairs {
                total += m.hops(x, y);
            }
            std::hint::black_box(total)
        })
    });
}

fn bench_bfs(c: &mut Criterion) {
    let m = machine();
    let g = m.router_graph();
    c.bench_function("router_graph_full_bfs", |b| {
        let mut bfs = Bfs::new(g.num_vertices());
        b.iter(|| {
            bfs.start([0u32]);
            let mut count = 0usize;
            while bfs.next(g).is_some() {
                count += 1;
            }
            std::hint::black_box(count)
        })
    });
}

fn bench_heap(c: &mut Criterion) {
    use umpa_ds::IndexedMaxHeap;
    c.bench_function("indexed_heap_10k_mixed_ops", |b| {
        b.iter(|| {
            let mut h = IndexedMaxHeap::new(10_000);
            for i in 0..10_000u32 {
                h.push(i, f64::from(i * 2654435761 % 10_000));
            }
            for i in 0..5_000u32 {
                h.change_key(i, f64::from(i % 97));
            }
            let mut sum = 0.0;
            while let Some((_, k)) = h.pop() {
                sum += k;
            }
            std::hint::black_box(sum)
        })
    });
}

/// Shared fixture: a PATOH-partitioned stencil task graph.
fn fixture(parts: usize) -> (Machine, Allocation, TaskGraph) {
    let m = machine();
    let a = umpa_matgen::gen::stencil2d(64, 64, umpa_matgen::gen::Stencil2D::FivePoint);
    let part = PartitionerKind::Patoh.partition_matrix(&a, parts, 42);
    let tg = spmv_task_graph(&a, &part, parts);
    let alloc = Allocation::generate(&m, &AllocSpec::sparse(parts / 16, 11));
    (m, alloc, tg)
}

fn bench_metrics(c: &mut Criterion) {
    let (m, alloc, tg) = fixture(256);
    let cfg = PipelineConfig::default();
    let out = map_tasks(&tg, &m, &alloc, MapperKind::Greedy, &cfg);
    c.bench_function("evaluate_metrics_256_tasks", |b| {
        b.iter(|| std::hint::black_box(evaluate(&tg, &m, &out.fine_mapping).wh))
    });
}

fn bench_mappers(c: &mut Criterion) {
    // Figure 3's measurement: wall time per mapping algorithm.
    let mut group = c.benchmark_group("mappers_fig3");
    group.sample_size(10);
    for parts in [128usize, 256] {
        let (m, alloc, tg) = fixture(parts);
        let cfg = PipelineConfig::default();
        for kind in MapperKind::all() {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), parts),
                &parts,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(
                            map_tasks(&tg, &m, &alloc, kind, &cfg).fine_mapping.len(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let a = umpa_matgen::gen::stencil2d(64, 64, umpa_matgen::gen::Stencil2D::FivePoint);
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    for kind in [PartitionerKind::Scotch, PartitionerKind::Patoh] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(kind.partition_matrix(&a, 64, 7).len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_bfs,
    bench_heap,
    bench_metrics,
    bench_mappers,
    bench_partitioner
);
criterion_main!(benches);
