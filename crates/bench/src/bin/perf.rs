//! Perf tracker: times the mapping engine's hot paths and the batched
//! `map_many` throughput, then emits `BENCH_mapping.json` so subsequent
//! PRs have a perf trajectory to regress against.
//!
//! Measured (median ns/op over warm scratch — the steady-state serving
//! path), per topology backend:
//!
//! * `greedy` — Algorithm 1 through [`greedy_map_into`] (torus rows
//!   keep their historical unsuffixed names; fat-tree and dragonfly
//!   rows are suffixed `/fattree` and `/dragonfly`);
//! * `wh_refine` — Algorithm 2 from a fresh greedy mapping each op;
//! * `cong_refine` — Algorithm 3 (volume) from a fresh greedy mapping;
//! * `dist_table` vs `dist_analytic` — the distance-oracle microbench:
//!   the same pseudo-random router-pair sweep through the dense table
//!   and through the analytic `Topology::distance`;
//! * `multilevel` — the coarsen–map–refine engine on a 3-D stencil
//!   task graph far larger than the allocation (warm hierarchy +
//!   scratch; UWH kind), per backend;
//! * `remap` — one incremental repair cycle (fail the node hosting
//!   task 0, repair, return the node, repair) through
//!   [`remap_incremental`] with warm scratch, per backend; the metrics
//!   block adds `remap_p50_ns` / `remap_p99_ns` per-repair latency,
//!   the mean displaced-task count, the p99 speedup over a
//!   from-scratch greedy+WH re-map, and the repaired-vs-from-scratch
//!   WH / AC / MC ratios for a single node failure;
//! * `map_many/batch{1,32,256}` — full pipeline requests per second
//!   through the batched API (torus), plus the sequential reference and
//!   the parallel speedup when the `parallel` feature is on;
//! * `service` — one request round-trip through the always-on
//!   [`MappingService`] (torus, empty queue, one worker): submit via
//!   the bounded admission queue, block on the reply. The metrics
//!   block adds a seeded request+churn replay under burst overload:
//!   `service_p50_ns` / `service_p99_ns` reply latency (including
//!   queue wait), `service_shed_rate` (admission rejections), and the
//!   `service_ladder_*` per-rung serve counts showing how the deadline
//!   ladder degraded under pressure. The replay runs even with
//!   `--no-batch` — the service row is part of the regression gate.
//!
//! The metrics block records `oracle_enabled` and `oracle_build_ns` per
//! backend so the perf trajectory distinguishes table-backed runs.
//!
//! Usage: `cargo run --release -p umpa-bench --bin perf [--preset tiny]
//! [--topo torus|fattree|dragonfly|all] [--no-batch] [--out PATH]`. The
//! `tiny` preset is the CI smoke configuration; CI runs it once per
//! backend. `--no-batch` skips the slow `map_many` section — the
//! regression-gate configuration (see `perf_gate`).

use umpa_bench::timing::{bench_ns, fmt_ns, print_samples, to_json, BenchOpts, Sample};
use umpa_core::cong_refine::{congestion_refine_scratch, CongRefineConfig};
use umpa_core::greedy::{greedy_map_into, GreedyConfig};
use umpa_core::metrics::evaluate;
use umpa_core::multilevel::multilevel_map_into;
use umpa_core::pipeline::{
    map_many, map_many_seq, MapRequest, MapStrategy, MapperKind, PipelineConfig,
};
use umpa_core::remap::{remap_incremental, ChurnEvent, RemapConfig};
use umpa_core::scratch::MapperScratch;
use umpa_core::wh_refine::{wh_refine_scratch, WhRefineConfig};
use umpa_graph::TaskGraph;
use umpa_matgen::gen::{stencil2d, Stencil2D};
use umpa_matgen::spmv::spmv_task_graph;
use umpa_matgen::taskgen::{stencil3d_tasks, total_weight_for};
use umpa_matgen::{load_sequence, ChurnSpec, LoadEvent, LoadSpec};
use umpa_partition::PartitionerKind;
use umpa_service::journal::Durability;
use umpa_service::{DurabilityConfig, MapJob, MapTicket, MappingService, ServiceConfig, Submit};
use umpa_topology::{
    AllocSpec, Allocation, DragonflyConfig, FatTreeConfig, Machine, MachineConfig,
};

use std::sync::Arc;

struct Preset {
    name: &'static str,
    /// Stencil grid edge (tasks = edge²).
    grid: usize,
    /// Parts = fine tasks of the pipeline benchmarks.
    parts: usize,
    /// Allocated nodes.
    nodes: usize,
    /// 3-D stencil dimensions of the multilevel fixture (tasks ≫ the
    /// allocation, so the coarsen–map–refine path is what's measured).
    ml_grid: (usize, usize, usize),
    /// `map_many` batch sizes.
    batches: &'static [usize],
    opts: BenchOpts,
}

impl Preset {
    fn tiny() -> Self {
        Self {
            name: "tiny",
            grid: 16,
            parts: 32,
            nodes: 8,
            ml_grid: (16, 16, 8), // 2048 tasks
            batches: &[1, 8, 32],
            opts: BenchOpts::fast(),
        }
    }

    fn default() -> Self {
        Self {
            name: "default",
            grid: 64,
            parts: 256,
            nodes: 16,
            ml_grid: (30, 30, 22), // 19800 tasks
            batches: &[1, 32, 256],
            opts: BenchOpts::default(),
        }
    }

    /// One machine per topology backend, sized to the preset. Torus is
    /// the historical fixture; the others open the fat-tree cluster and
    /// dragonfly supercomputer scenario families.
    fn machines(&self) -> Vec<(&'static str, Machine)> {
        if self.name == "tiny" {
            vec![
                ("torus", MachineConfig::small(&[4, 4], 1, 4).build()),
                ("fattree", FatTreeConfig::small(4, 2, 4).build()),
                (
                    "dragonfly",
                    DragonflyConfig {
                        procs_per_node: 4,
                        ..DragonflyConfig::small(3, 3, 2)
                    }
                    .build(),
                ),
            ]
        } else {
            vec![
                ("torus", MachineConfig::hopper().build()),
                ("fattree", FatTreeConfig::cluster().build()),
                ("dragonfly", DragonflyConfig::supercomputer().build()),
            ]
        }
    }
}

/// The engine-level fixture: a partitioned SpMV task graph shared by
/// every backend, plus a per-machine sparse allocation.
fn task_graph(preset: &Preset) -> TaskGraph {
    let a = stencil2d(preset.grid, preset.grid, Stencil2D::FivePoint);
    let part = PartitionerKind::Patoh.partition_matrix(&a, preset.parts, 42);
    spmv_task_graph(&a, &part, preset.parts)
}

/// Ring + chords with skewed weights — the service replay's per-request
/// graphs, seeded from the load stream so each request differs.
fn service_request_graph(n: u32, seed: u64) -> TaskGraph {
    let n = n.max(4);
    let msgs = (0..n).flat_map(move |i| {
        let w = 1.0 + f64::from((i + seed as u32) % 5);
        [
            (i, (i + 1) % n, 2.0 * w),
            (i, (i + n / 3).max(i + 1) % n, w),
        ]
    });
    TaskGraph::from_messages(n as usize, msgs, None)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let preset = if args.iter().any(|a| a == "--tiny") {
        Preset::tiny()
    } else if let Some(w) = args.windows(2).find(|w| w[0] == "--preset") {
        match w[1].as_str() {
            "tiny" => Preset::tiny(),
            "default" => Preset::default(),
            other => {
                eprintln!("perf: unknown preset {other:?} (expected: tiny, default)");
                std::process::exit(2);
            }
        }
    } else {
        Preset::default()
    };
    let topo_filter = args
        .windows(2)
        .find(|w| w[0] == "--topo")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "all".to_string());
    let no_batch = args.iter().any(|a| a == "--no-batch");
    let out_path = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_mapping.json".to_string());
    eprintln!(
        "perf [{}]: grid {}x{}, {} parts, {} nodes, topo filter {topo_filter}",
        preset.name, preset.grid, preset.grid, preset.parts, preset.nodes
    );

    let tg = task_graph(&preset);
    let greedy_cfg = GreedyConfig::default();
    let wh_cfg = WhRefineConfig::default();
    let mc_cfg = CongRefineConfig::volume();
    let mut samples: Vec<Sample> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    let machines: Vec<(&'static str, Machine)> = preset
        .machines()
        .into_iter()
        .filter(|(name, _)| topo_filter == "all" || topo_filter == *name)
        .collect();
    if machines.is_empty() {
        eprintln!(
            "perf: unknown --topo {topo_filter:?} (expected: torus, fattree, dragonfly, all)"
        );
        std::process::exit(2);
    }

    for (backend, machine) in &machines {
        // Torus rows keep PR-1's unsuffixed names so the perf
        // trajectory stays comparable across PRs.
        let row = |stem: &str| -> String {
            if *backend == "torus" {
                stem.to_string()
            } else {
                format!("{stem}/{backend}")
            }
        };
        // One-time oracle build cost, measured before anything touches
        // distances (the OnceLock builds on first use).
        let t0 = std::time::Instant::now();
        let oracle_on = machine.oracle().is_some();
        let build_ns = t0.elapsed().as_nanos() as f64;
        let metric = |stem: &str| -> String {
            if *backend == "torus" {
                stem.to_string()
            } else {
                format!("{stem}_{backend}")
            }
        };
        metrics.push((metric("oracle_enabled"), f64::from(u8::from(oracle_on))));
        metrics.push((metric("oracle_build_ns"), build_ns));

        let alloc = Allocation::generate(machine, &AllocSpec::sparse(preset.nodes, 11));
        eprintln!(
            "backend {backend}: {} ({} nodes allocated, oracle {})",
            machine.topology().summary(),
            preset.nodes,
            if oracle_on { "on" } else { "off" }
        );

        // --- Distance microbench: table vs analytic ------------------
        // A fixed pseudo-random terminal-router pair sweep, identical
        // for both implementations.
        let nt = machine.num_terminal_routers() as u64;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let pairs: Vec<(u32, u32)> = (0..1024)
            .map(|_| ((rnd() % nt) as u32, (rnd() % nt) as u32))
            .collect();
        let topo = machine.topology();
        samples.push(bench_ns(&row("dist_analytic"), &preset.opts, || {
            pairs
                .iter()
                .map(|&(a, b)| u64::from(topo.distance(a, b)))
                .sum::<u64>()
        }));
        if let Some(oracle) = machine.oracle() {
            samples.push(bench_ns(&row("dist_table"), &preset.opts, || {
                pairs
                    .iter()
                    .map(|&(a, b)| u64::from(oracle.distance(a, b)))
                    .sum::<u64>()
            }));
        }

        // --- Engine primitives, warm scratch -------------------------
        let mut scratch = MapperScratch::new();
        let mut mapping: Vec<u32> = Vec::new();
        let greedy_sample = bench_ns(&row("greedy"), &preset.opts, || {
            greedy_map_into(
                &tg,
                machine,
                &alloc,
                &greedy_cfg,
                &mut scratch.greedy,
                &mut mapping,
            )
        });
        let greedy_ns = greedy_sample.median_ns;
        samples.push(greedy_sample);
        // Gain-kernel counters of the row just measured (the scratch
        // keeps the last run's stats): candidate placements the batch
        // kernel scored, and distance lookups the compact slot panel
        // absorbed (0 = per-lookup fallback ran instead).
        let greedy_stats = scratch.greedy.stats();
        metrics.push((metric("greedy_probes"), greedy_stats.probes as f64));
        metrics.push((metric("greedy_row_hits"), greedy_stats.row_hits as f64));
        eprintln!(
            "  greedy: {} kernel probes, {} panel row hits",
            greedy_stats.probes, greedy_stats.row_hits
        );
        // Refinements start from a fresh greedy mapping each op
        // (refining a fixed point is a no-op and would flatter the
        // numbers).
        greedy_map_into(
            &tg,
            machine,
            &alloc,
            &greedy_cfg,
            &mut scratch.greedy,
            &mut mapping,
        );
        let base = mapping.clone();
        let wh_sample = bench_ns(&row("wh_refine"), &preset.opts, || {
            mapping.copy_from_slice(&base);
            wh_refine_scratch(&tg, machine, &alloc, &mut mapping, &wh_cfg, &mut scratch.wh)
        });
        let wh_ns = wh_sample.median_ns;
        samples.push(wh_sample);
        samples.push(bench_ns(&row("cong_refine"), &preset.opts, || {
            mapping.copy_from_slice(&base);
            congestion_refine_scratch(
                &tg,
                machine,
                &alloc,
                &mut mapping,
                &mc_cfg,
                &mut scratch.cong,
            )
        }));
        // Per-run engine counters of the row just measured (the scratch
        // keeps the last run's stats): probe volume and the fraction of
        // route computations served from the RouteCache slices.
        let cong_stats = scratch.cong.stats();
        metrics.push((metric("cong_probes"), cong_stats.probes as f64));
        metrics.push((metric("cong_moves"), cong_stats.moves as f64));
        metrics.push((
            metric("cong_route_hit_rate"),
            cong_stats.route_cache_hit_rate(),
        ));
        eprintln!(
            "  cong_refine: {} probes, {} moves, route-cache hit rate {:.3}",
            cong_stats.probes,
            cong_stats.moves,
            cong_stats.route_cache_hit_rate()
        );

        // --- Multilevel coarsen–map–refine (warm hierarchy) ----------
        // A task graph ~10²× the allocation: the full engine run —
        // capacity-aware matching, per-level quotient rebuilds, the
        // coarsest greedy+WH map, bounded per-level refinement.
        let (nx, ny, nz) = preset.ml_grid;
        let ml_tg = stencil3d_tasks(nx, ny, nz, 8.0, 2.0, total_weight_for(&alloc, 0.5));
        let ml_cfg = PipelineConfig::default();
        let mut ml_mapping: Vec<u32> = Vec::new();
        let mut ml_levels = 0usize;
        samples.push(bench_ns(&row("multilevel"), &preset.opts, || {
            let stats = multilevel_map_into(
                &ml_tg,
                machine,
                &alloc,
                MapperKind::GreedyWh,
                &ml_cfg,
                &mut scratch,
                &mut ml_mapping,
            );
            ml_levels = stats.levels;
            stats.coarsest_tasks
        }));
        metrics.push((metric("multilevel_levels"), ml_levels as f64));

        // --- Incremental remap (fault-tolerance layer) ---------------
        // One repair cycle per op: fail the node currently hosting
        // task 0 (its co-residents are re-placed and a 1-hop frontier
        // polished), then return the node via a cheap no-displacement
        // repair, so every cycle starts from full capacity. Node churn
        // only — the cycle never enters the masked-topology rebuild,
        // which is a cold-path cost measured by the failover example
        // instead. The fixture gets two spare nodes of headroom so a
        // single node failure is always repairable.
        let remap_cfg = RemapConfig::default();
        let mut rmach = machine.clone();
        let mut ralloc = Allocation::generate(machine, &AllocSpec::sparse(preset.nodes + 2, 11));
        greedy_map_into(
            &tg,
            &rmach,
            &ralloc,
            &greedy_cfg,
            &mut scratch.greedy,
            &mut mapping,
        );
        samples.push(bench_ns(&row("remap"), &preset.opts, || {
            let victim = mapping[0];
            let fail = [ChurnEvent::NodeFailed { node: victim }];
            let repaired = remap_incremental(
                &tg,
                &mut rmach,
                &mut ralloc,
                &mut mapping,
                &fail,
                &remap_cfg,
                &mut scratch,
            )
            .is_repaired();
            let back = [ChurnEvent::NodesAdded {
                nodes: vec![victim],
            }];
            remap_incremental(
                &tg,
                &mut rmach,
                &mut ralloc,
                &mut mapping,
                &back,
                &remap_cfg,
                &mut scratch,
            );
            repaired
        }));
        // Per-repair latency distribution (the tail is the acceptance
        // number: p99 repair vs a full re-map), displaced-task volume,
        // and the quality of the churned mapping vs mapping the same
        // allocation from scratch.
        let reps = 256;
        let mut lat: Vec<f64> = Vec::with_capacity(reps);
        let mut displaced_sum = 0usize;
        for _ in 0..reps {
            let victim = mapping[0];
            let fail = [ChurnEvent::NodeFailed { node: victim }];
            let t = std::time::Instant::now();
            let out = remap_incremental(
                &tg,
                &mut rmach,
                &mut ralloc,
                &mut mapping,
                &fail,
                &remap_cfg,
                &mut scratch,
            );
            lat.push(t.elapsed().as_nanos() as f64);
            displaced_sum += out.stats().map_or(0, |s| s.displaced);
            let back = [ChurnEvent::NodesAdded {
                nodes: vec![victim],
            }];
            remap_incremental(
                &tg,
                &mut rmach,
                &mut ralloc,
                &mut mapping,
                &back,
                &remap_cfg,
                &mut scratch,
            );
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = lat[lat.len() / 2];
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        metrics.push((metric("remap_p50_ns"), p50));
        metrics.push((metric("remap_p99_ns"), p99));
        metrics.push((
            metric("remap_displaced_mean"),
            displaced_sum as f64 / reps as f64,
        ));
        // A full re-map of the job is greedy + WH refinement; the p99
        // repair should sit far under it.
        let full_ns = greedy_ns + wh_ns;
        metrics.push((metric("remap_p99_speedup_vs_full"), full_ns / p99));
        // Per-repair quality (the documented contract: one damage
        // batch against a polished mapping): repair a fresh greedy+WH
        // mapping after a single node failure and compare its WH to
        // mapping the damaged allocation from scratch. Measured at the
        // quality operating point — the wider polish budget the
        // differential harness pins — not the latency-first default.
        let quality_cfg = RemapConfig {
            frontier_hops: 2,
            wh: Some(WhRefineConfig {
                delta: 16,
                max_passes: 4,
                ..WhRefineConfig::default()
            }),
            cong: None,
        };
        greedy_map_into(
            &tg,
            &rmach,
            &ralloc,
            &greedy_cfg,
            &mut scratch.greedy,
            &mut mapping,
        );
        wh_refine_scratch(&tg, &rmach, &ralloc, &mut mapping, &wh_cfg, &mut scratch.wh);
        let victim = mapping[0];
        let fail = [ChurnEvent::NodeFailed { node: victim }];
        remap_incremental(
            &tg,
            &mut rmach,
            &mut ralloc,
            &mut mapping,
            &fail,
            &quality_cfg,
            &mut scratch,
        );
        let repaired = evaluate(&tg, &rmach, &mapping);
        let mut fresh: Vec<u32> = Vec::new();
        greedy_map_into(
            &tg,
            &rmach,
            &ralloc,
            &greedy_cfg,
            &mut scratch.greedy,
            &mut fresh,
        );
        wh_refine_scratch(&tg, &rmach, &ralloc, &mut fresh, &wh_cfg, &mut scratch.wh);
        let fresh = evaluate(&tg, &rmach, &fresh);
        metrics.push((metric("remap_quality_vs_full"), repaired.wh / fresh.wh));
        metrics.push((metric("remap_ac_vs_full"), repaired.ac / fresh.ac));
        metrics.push((metric("remap_mc_vs_full"), repaired.mc / fresh.mc));
        eprintln!(
            "  remap: p50 {} p99 {} ({:.1} tasks displaced/repair, \
             p99 {:.1}x faster than full re-map; vs from-scratch: \
             WH {:.3}x, AC {:.3}x, MC {:.3}x)",
            fmt_ns(p50),
            fmt_ns(p99),
            displaced_sum as f64 / reps as f64,
            full_ns / p99,
            repaired.wh / fresh.wh,
            repaired.ac / fresh.ac,
            repaired.mc / fresh.mc
        );
    }

    // --- Batched serving throughput (torus fixture) ------------------
    if let Some((_, machine)) = machines
        .iter()
        .find(|(n, _)| *n == "torus")
        .filter(|_| !no_batch)
    {
        let alloc = Allocation::generate(machine, &AllocSpec::sparse(preset.nodes, 11));
        let cfg = PipelineConfig::default();
        for &batch in preset.batches {
            let requests: Vec<MapRequest<'_>> = (0..batch)
                .map(|i| MapRequest {
                    tasks: &tg,
                    machine,
                    alloc: &alloc,
                    kind: match i % 3 {
                        0 => MapperKind::Greedy,
                        1 => MapperKind::GreedyWh,
                        _ => MapperKind::GreedyMc,
                    },
                    strategy: MapStrategy::Direct,
                    cfg: &cfg,
                })
                .collect();
            let s = bench_ns(&format!("map_many/batch{batch}"), &preset.opts, || {
                map_many(&requests)
            });
            let batched_ns = s.median_ns;
            let per_req = batched_ns / batch as f64;
            metrics.push((format!("map_many_batch{batch}_ns_per_request"), per_req));
            metrics.push((
                format!("map_many_batch{batch}_requests_per_sec"),
                1e9 / per_req,
            ));
            samples.push(s);
            // The sequential reference for the largest batch gives the
            // parallel speedup number the acceptance gate tracks.
            if batch == *preset.batches.last().unwrap() {
                let seq = bench_ns(&format!("map_many_seq/batch{batch}"), &preset.opts, || {
                    map_many_seq(&requests)
                });
                let speedup = seq.median_ns / batched_ns;
                metrics.push((format!("map_many_batch{batch}_parallel_speedup"), speedup));
                eprintln!(
                    "map_many batch {batch}: {} vs sequential {} → speedup {speedup:.2}x",
                    fmt_ns(batched_ns),
                    fmt_ns(seq.median_ns)
                );
                samples.push(seq);
            }
        }
    }

    // --- Always-on mapping service (torus fixture) -------------------
    // Deliberately outside the --no-batch skip: the `service`
    // round-trip row is part of the perf_gate regression set.
    if let Some((_, machine)) = machines.iter().find(|(n, _)| *n == "torus") {
        let tasks = Arc::new(tg.clone());

        // Round-trip latency with an empty queue and one worker:
        // submit through the bounded admission queue, block on the
        // reply. Tracks the serving overhead (queue hop, ladder
        // selection, reply channel) on top of the mapper itself.
        let svc = MappingService::new(
            machine.clone(),
            Allocation::generate(machine, &AllocSpec::sparse(preset.nodes, 11)),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let service_sample = bench_ns("service", &preset.opts, || {
            match svc.submit_map(MapJob::new(Arc::clone(&tasks))) {
                Submit::Accepted(ticket) => ticket.wait().is_ok(),
                Submit::Rejected { .. } => false,
            }
        });
        let service_ns = service_sample.median_ns;
        samples.push(service_sample);
        let _ = svc.shutdown();

        // Seeded request+churn replay near saturation: exponential
        // inter-arrival gaps scaled to the measured round-trip put the
        // two workers around 80 % utilization, so arrival bursts
        // deepen the queue enough to engage pressure shedding and the
        // deadline ladder; reply latency includes queue wait.
        let svc = MappingService::new(
            machine.clone(),
            Allocation::generate(machine, &AllocSpec::sparse(preset.nodes, 11)),
            ServiceConfig {
                workers: 2,
                queue_capacity: 16,
                pressure_depth: 8,
                ..ServiceConfig::default()
            },
        );
        svc.install_job(Arc::clone(&tasks));
        // Requests must stay direct-mappable even after the churn
        // generator's 25 % node-removal cap, so cap them at half the
        // initial processor capacity.
        let slots = svc.with_state(|_, a| a.total_procs());
        // λ = 1/(0.6·service_ns) against μ = 2 workers/service_ns
        // ≈ 0.83 utilization.
        let spec = LoadSpec {
            churn_fraction: 0.2,
            tasks: (slots / 4, slots / 2),
            mean_gap_ns: ((service_ns * 0.6) as u64).max(10_000),
            // Node churn only: a hard link failure's masked-topology
            // rebuild is a multi-second cold path (measured by the
            // failover example) that would hold the write lock and
            // turn the reply p99 into a rebuild benchmark.
            churn: ChurnSpec::nodes_only(0, 0),
            ..LoadSpec::new(if preset.name == "tiny" { 96 } else { 256 }, 7)
        };
        let stream = svc.with_state(|m, a| load_sequence(m, a, &spec));
        // Pre-build the request graphs so generation stays out of the
        // measured latencies.
        let graphs: Vec<Arc<TaskGraph>> = stream
            .iter()
            .filter_map(|ev| match ev {
                LoadEvent::Request { tasks, seed, .. } => {
                    Some(Arc::new(service_request_graph(*tasks, *seed)))
                }
                LoadEvent::Churn { .. } => None,
            })
            .collect();
        // Unbounded / comfortable / sub-cost deadlines cycle so the
        // ladder has something to degrade and somewhere to stay.
        let deadlines: [u64; 3] = [
            u64::MAX,
            (service_ns * 4.0) as u64,
            ((service_ns * 0.5) as u64).max(1),
        ];
        let mut lat: Vec<f64> = Vec::new();
        let mut pending: Vec<MapTicket> = Vec::new();
        let drain = |pending: &mut Vec<MapTicket>, lat: &mut Vec<f64>| {
            for ticket in pending.drain(..) {
                if let Ok(reply) = ticket.wait() {
                    lat.push(reply.total_ns as f64);
                }
            }
        };
        let (mut reqs, mut next_graph) = (0usize, 0usize);
        for ev in &stream {
            // Wait out the inter-arrival gap, yielding so the workers
            // keep the core on small boxes (sleep granularity is
            // coarser than the tiny preset's gaps).
            let t0 = std::time::Instant::now();
            while (t0.elapsed().as_nanos() as u64) < ev.gap_ns() {
                std::thread::yield_now();
            }
            match ev {
                LoadEvent::Churn { event, .. } => {
                    svc.apply_churn(std::slice::from_ref(event));
                }
                LoadEvent::Request { .. } => {
                    let job = MapJob::new(Arc::clone(&graphs[next_graph]))
                        .with_deadline_ns(deadlines[reqs % deadlines.len()]);
                    next_graph += 1;
                    reqs += 1;
                    if let Submit::Accepted(ticket) = svc.submit_map(job) {
                        pending.push(ticket);
                    }
                    if pending.len() >= 24 {
                        drain(&mut pending, &mut lat);
                    }
                }
            }
        }
        drain(&mut pending, &mut lat);
        let snap = svc.shutdown();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (p50, p99) = if lat.is_empty() {
            (0.0, 0.0)
        } else {
            (
                lat[lat.len() / 2],
                lat[(lat.len() * 99 / 100).min(lat.len() - 1)],
            )
        };
        metrics.push(("service_p50_ns".to_string(), p50));
        metrics.push(("service_p99_ns".to_string(), p99));
        metrics.push(("service_shed_rate".to_string(), snap.shed_rate()));
        for (label, count) in snap.rung_counts() {
            metrics.push((format!("service_ladder_{label}"), count as f64));
        }
        eprintln!(
            "service replay: {reqs} requests ({} served), shed rate {:.3}, \
             reply p50 {} p99 {}, rungs {:?}",
            lat.len(),
            snap.shed_rate(),
            fmt_ns(p50),
            fmt_ns(p99),
            snap.rung_counts()
        );
    }

    // --- Journal overhead (durability subsystem) ---------------------
    // Cost of one write-ahead churn frame: encode + CRC + buffered
    // write + flush, no fsync — the durability tax each churn
    // mutation pays. A tracked metric, not a gated row; the gated
    // `service` row above runs durability-off, pinning the promise
    // that journaling stays off the map-request hot path.
    {
        let dir = std::env::temp_dir().join(format!("umpa-perf-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        match Durability::create(&DurabilityConfig::new(&dir)) {
            Ok(mut journal) => {
                let events = [
                    ChurnEvent::NodesRemoved { nodes: vec![3, 5] },
                    ChurnEvent::LinkDegraded {
                        link: 1,
                        factor: 0.5,
                    },
                ];
                let sample = bench_ns("journal_append", &preset.opts, || {
                    journal.append_churn(&events).is_ok()
                });
                metrics.push(("journal_append_ns".to_string(), sample.median_ns));
                eprintln!(
                    "journal append: {} per 2-event churn frame",
                    fmt_ns(sample.median_ns)
                );
            }
            Err(e) => eprintln!("perf: journal bench skipped: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    metrics.push(("threads".to_string(), threads as f64));
    // Report the engine's actual mode — feature unification can enable
    // umpa-core/parallel without this binary's own feature flag.
    metrics.push((
        "parallel_feature".to_string(),
        f64::from(u8::from(umpa_core::PARALLEL_ENABLED)),
    ));

    print_samples(&samples);
    let json = to_json(&samples, &metrics);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
