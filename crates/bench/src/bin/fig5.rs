//! Figure 5: Trilinos-style SpMV times (plus TH, MMC, MC) for the
//! cage15-like workload, all partitioner presets × all seven mappers,
//! normalized to DEF on the PATOH graph. 500 iterations.
//!
//! Paper shape targets: TH correlates with time; UWH is the best mapper
//! (up to ~23 % over DEF), UG close behind; UMC/UMMC gain less than in
//! the comm-only case because messages are small; TMAP ≈ DEF.

use rayon::prelude::*;
use umpa_bench::{fmt2, ExpScale, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::{partition_loads, spmv_task_graph};
use umpa_netsim::prelude::*;
use umpa_partition::PartitionerKind;

fn main() {
    let scale = ExpScale::from_args();
    let iterations = 500;
    eprintln!(
        "fig5 [{}]: SpMV x{iterations}, {} parts",
        scale.label, scale.timing_parts
    );
    let machine = scale.machine();
    let parts = scale.timing_parts;
    let alloc = scale.allocation(&machine, parts, scale.alloc_seeds[0]);
    let a = umpa_matgen::dataset::cage15_like(scale.matrix_scale);
    let kinds = PartitionerKind::all();
    let mappers = MapperKind::all();
    struct Cell {
        time: f64,
        std: f64,
        th: f64,
        mmc: f64,
        mc: f64,
    }
    let cells: Vec<Vec<Cell>> = kinds
        .par_iter()
        .map(|kind| {
            let part = kind.partition_matrix(&a, parts, 42);
            let fine = spmv_task_graph(&a, &part, parts);
            let loads = partition_loads(&a, &part, parts);
            let cfg = PipelineConfig::default();
            let app = AppConfig {
                des: DesConfig {
                    noise: 0.02,
                    seed: 13,
                    ..DesConfig::default()
                },
                repetitions: scale.repetitions,
                ..AppConfig::default()
            };
            mappers
                .iter()
                .map(|&mk| {
                    let (out, m) = umpa_bench::run_mapper(&fine, &machine, &alloc, mk, &cfg);
                    let t = spmv_time(&machine, &fine, &out.fine_mapping, &loads, iterations, &app);
                    Cell {
                        time: t.mean_us,
                        std: t.std_us,
                        th: m.th,
                        mmc: m.mmc,
                        mc: m.mc,
                    }
                })
                .collect()
        })
        .collect();
    let patoh = kinds
        .iter()
        .position(|k| *k == PartitionerKind::Patoh)
        .unwrap();
    let base = &cells[patoh][0];
    let mut table = Table::new(&["partitioner", "mapper", "time", "std", "TH", "MMC", "MC"]);
    for (ki, kind) in kinds.iter().enumerate() {
        for (mi, mk) in mappers.iter().enumerate() {
            let c = &cells[ki][mi];
            table.row(vec![
                kind.name().to_string(),
                mk.name().to_string(),
                fmt2(c.time / base.time),
                fmt2(c.std / base.time),
                fmt2(c.th / base.th.max(1.0)),
                fmt2(c.mmc / base.mmc.max(1.0)),
                fmt2(c.mc / base.mc.max(1e-9)),
            ]);
        }
    }
    println!("\nFigure 5 — SpMV (cage15-like) normalized to DEF on PATOH\n");
    table.emit("fig5_spmv");
}
