//! Perf regression gate: compares a fresh `perf` run against the
//! committed `BENCH_mapping.json` and fails on a median regression
//! beyond the tolerance in any engine row (`greedy`, `wh_refine`,
//! `cong_refine`, per backend).
//!
//! Usage:
//!
//! ```text
//! perf_gate <fresh.json> <baseline.json> [--tolerance 1.25]
//! ```
//!
//! Exit status 0 when every gated row is within `tolerance ×` the
//! committed median (noise-tolerant: the default 1.25 admits 25 % of
//! scheduler jitter), 1 when any row regressed, 2 on usage/parse
//! errors. Rows present in only one file are reported and skipped —
//! adding a backend must not break the gate retroactively. CI wires
//! this behind a `[skip-perf-gate]` commit-message escape hatch for
//! intentional trade-offs (see `.github/workflows/ci.yml`).

use std::collections::BTreeMap;

/// Row stems the gate enforces (suffixed variants like
/// `wh_refine/fattree` are matched by their stem).
const GATED_STEMS: &[&str] = &[
    "greedy",
    "wh_refine",
    "cong_refine",
    "multilevel",
    "remap",
    "service",
];

/// Extracts `name → median_ns` from the hand-rolled perf JSON: one
/// benchmark per line, `"<name>": {"median_ns": <float>, ...}`.
fn parse_medians(src: &str, path: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in src.lines() {
        let line = line.trim();
        if !line.starts_with('"') || !line.contains("\"median_ns\":") {
            continue;
        }
        let name_end = line[1..]
            .find('"')
            .ok_or_else(|| format!("{path}: unterminated row name in {line:?}"))?;
        let name = &line[1..1 + name_end];
        let tail = &line[line.find("\"median_ns\":").unwrap() + "\"median_ns\":".len()..];
        let num: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        let median: f64 = num
            .parse()
            .map_err(|e| format!("{path}: bad median for {name}: {e}"))?;
        out.insert(name.to_string(), median);
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark rows found"));
    }
    Ok(out)
}

fn is_gated(row: &str) -> bool {
    let stem = row.split('/').next().unwrap_or(row);
    GATED_STEMS.contains(&stem)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut tolerance = 1.25f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance = match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => t,
                None => {
                    eprintln!("perf_gate: --tolerance needs a float value");
                    std::process::exit(2);
                }
            };
        } else if a.starts_with("--") {
            eprintln!("perf_gate: unknown flag {a}");
            std::process::exit(2);
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: perf_gate <fresh.json> <baseline.json> [--tolerance 1.25]");
        std::process::exit(2);
    }
    let (fresh_path, base_path) = (positional[0], positional[1]);
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh = match parse_medians(&read(fresh_path), fresh_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };
    let base = match parse_medians(&read(base_path), base_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };

    let mut regressions = 0usize;
    let mut checked = 0usize;
    for (row, &committed) in base.iter().filter(|(r, _)| is_gated(r)) {
        let Some(&measured) = fresh.get(row) else {
            eprintln!("perf_gate: row {row} missing from {fresh_path} — skipped");
            continue;
        };
        checked += 1;
        let ratio = measured / committed;
        let verdict = if ratio > tolerance {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{row:24} committed {committed:>14.1} ns  fresh {measured:>14.1} ns  ratio {ratio:>5.2}x  {verdict}"
        );
    }
    for row in fresh.keys().filter(|r| is_gated(r)) {
        if !base.contains_key(row) {
            eprintln!("perf_gate: new row {row} has no committed baseline — skipped");
        }
    }
    if checked == 0 {
        eprintln!("perf_gate: no gated rows were comparable");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "perf_gate: {regressions} row(s) regressed beyond {tolerance}x; \
             commit with [skip-perf-gate] only for intentional trade-offs"
        );
        std::process::exit(1);
    }
    eprintln!("perf_gate: {checked} row(s) within {tolerance}x of the committed baseline");
}
