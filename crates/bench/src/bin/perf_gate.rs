//! Perf regression gate: compares a fresh `perf` run against the
//! committed `BENCH_mapping.json` and fails on a median regression
//! beyond the tolerance in any engine row (`greedy`, `wh_refine`,
//! `cong_refine`, per backend).
//!
//! Usage:
//!
//! ```text
//! perf_gate <fresh.json> <baseline.json> [--tolerance 1.25] [--no-retry]
//! ```
//!
//! Exit status 0 when every gated row is within `tolerance ×` the
//! committed median (noise-tolerant: the default 1.25 admits 25 % of
//! scheduler jitter), 1 when any row regressed, 2 on usage/parse
//! errors. Rows present in only one file are reported and skipped —
//! adding a backend must not break the gate retroactively.
//!
//! **Noise hardening**: a row that fails the first pass is not failed
//! outright — the gate re-runs the sibling `perf` binary once for each
//! failing row's backend and judges the *best of the two* medians, so
//! a one-off scheduler hiccup on a shared CI runner does not page
//! anyone. A genuine regression fails both passes. `--no-retry`
//! restores single-shot behaviour (and a missing/failed `perf` binary
//! degrades to it gracefully). CI wires this behind a
//! `[skip-perf-gate]` commit-message escape hatch for intentional
//! trade-offs (see `.github/workflows/ci.yml`).

use std::collections::{BTreeMap, BTreeSet};
use std::process::Command;

/// Row stems the gate enforces (suffixed variants like
/// `wh_refine/fattree` are matched by their stem).
const GATED_STEMS: &[&str] = &[
    "greedy",
    "wh_refine",
    "cong_refine",
    "multilevel",
    "remap",
    "service",
];

/// Extracts `name → median_ns` from the hand-rolled perf JSON: one
/// benchmark per line, `"<name>": {"median_ns": <float>, ...}`.
fn parse_medians(src: &str, path: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in src.lines() {
        let line = line.trim();
        if !line.starts_with('"') || !line.contains("\"median_ns\":") {
            continue;
        }
        let name_end = line[1..]
            .find('"')
            .ok_or_else(|| format!("{path}: unterminated row name in {line:?}"))?;
        let name = &line[1..1 + name_end];
        let tail = &line[line.find("\"median_ns\":").unwrap() + "\"median_ns\":".len()..];
        let num: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        let median: f64 = num
            .parse()
            .map_err(|e| format!("{path}: bad median for {name}: {e}"))?;
        out.insert(name.to_string(), median);
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark rows found"));
    }
    Ok(out)
}

fn is_gated(row: &str) -> bool {
    let stem = row.split('/').next().unwrap_or(row);
    GATED_STEMS.contains(&stem)
}

/// Backend a row was measured on: rows carry a `/fattree`-style
/// suffix; unsuffixed rows are the torus (the PR-1 naming kept for
/// baseline continuity).
fn topo_of(row: &str) -> &str {
    row.split_once('/').map_or("torus", |(_, topo)| topo)
}

/// Re-measures the failing rows' backends with the sibling `perf`
/// binary (same target dir as this gate) and returns the merged
/// medians. `None` — with a note — when the binary is missing or a
/// run fails: the caller falls back to the first-pass verdict.
fn remeasure(topos: &BTreeSet<&str>) -> Option<BTreeMap<String, f64>> {
    let perf = std::env::current_exe().ok()?.with_file_name("perf");
    if !perf.exists() {
        eprintln!(
            "perf_gate: no sibling perf binary at {} — skipping the retry pass",
            perf.display()
        );
        return None;
    }
    let mut merged = BTreeMap::new();
    for topo in topos {
        let tmp = std::env::temp_dir().join(format!(
            "perf-gate-retry-{}-{topo}.json",
            std::process::id()
        ));
        let tmp_str = tmp.to_string_lossy().into_owned();
        eprintln!("perf_gate: re-measuring {topo} rows (best-of-2) ...");
        let status = Command::new(&perf)
            .args(["--preset", "default", "--topo", topo, "--no-batch", "--out"])
            .arg(&tmp)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("perf_gate: retry perf run for {topo} exited with {s} — skipping retry");
                return None;
            }
            Err(e) => {
                eprintln!("perf_gate: cannot launch retry perf run for {topo}: {e}");
                return None;
            }
        }
        let src = match std::fs::read_to_string(&tmp) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf_gate: cannot read retry output {tmp_str}: {e}");
                return None;
            }
        };
        let _ = std::fs::remove_file(&tmp);
        match parse_medians(&src, &tmp_str) {
            Ok(m) => merged.extend(m),
            Err(e) => {
                eprintln!("perf_gate: {e}");
                return None;
            }
        }
    }
    Some(merged)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut tolerance = 1.25f64;
    let mut no_retry = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--no-retry" {
            no_retry = true;
        } else if a == "--tolerance" {
            tolerance = match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => t,
                None => {
                    eprintln!("perf_gate: --tolerance needs a float value");
                    std::process::exit(2);
                }
            };
        } else if a.starts_with("--") {
            eprintln!("perf_gate: unknown flag {a}");
            std::process::exit(2);
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: perf_gate <fresh.json> <baseline.json> [--tolerance 1.25] [--no-retry]");
        std::process::exit(2);
    }
    let (fresh_path, base_path) = (positional[0], positional[1]);
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let fresh = match parse_medians(&read(fresh_path), fresh_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };
    let base = match parse_medians(&read(base_path), base_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };

    // First pass: judge every gated row against the fresh run,
    // printing the measured-vs-committed ratio for each.
    let mut checked = 0usize;
    let mut failing: BTreeMap<&str, f64> = BTreeMap::new();
    for (row, &committed) in base.iter().filter(|(r, _)| is_gated(r)) {
        let Some(&measured) = fresh.get(row) else {
            eprintln!("perf_gate: row {row} missing from {fresh_path} — skipped");
            continue;
        };
        checked += 1;
        let ratio = measured / committed;
        let verdict = if ratio > tolerance {
            failing.insert(row, measured);
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{row:24} committed {committed:>14.1} ns  fresh {measured:>14.1} ns  ratio {ratio:>5.2}x  {verdict}"
        );
    }

    // Retry pass: failing rows get one re-measurement of their
    // backend and are judged on the best of the two medians, so a
    // single noisy sample cannot fail the gate on its own.
    let mut regressions = failing.len();
    if !failing.is_empty() && !no_retry {
        let topos: BTreeSet<&str> = failing.keys().map(|r| topo_of(r)).collect();
        if let Some(second) = remeasure(&topos) {
            regressions = 0;
            for (&row, &first) in &failing {
                let committed = base[row];
                let best = match second.get(row) {
                    Some(&again) => first.min(again),
                    None => {
                        eprintln!("perf_gate: row {row} missing from the retry run");
                        first
                    }
                };
                let ratio = best / committed;
                let verdict = if ratio > tolerance {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok (retry)"
                };
                println!(
                    "{row:24} committed {committed:>14.1} ns  best-of-2 {best:>11.1} ns  ratio {ratio:>5.2}x  {verdict}"
                );
            }
        }
    }
    for row in fresh.keys().filter(|r| is_gated(r)) {
        if !base.contains_key(row) {
            eprintln!("perf_gate: new row {row} has no committed baseline — skipped");
        }
    }
    if checked == 0 {
        eprintln!("perf_gate: no gated rows were comparable");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "perf_gate: {regressions} row(s) regressed beyond {tolerance}x; \
             commit with [skip-perf-gate] only for intentional trade-offs"
        );
        std::process::exit(1);
    }
    eprintln!("perf_gate: {checked} row(s) within {tolerance}x of the committed baseline");
}
