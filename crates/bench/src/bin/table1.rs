//! Table I: average improvements of the mapping algorithms on the
//! communication-only applications and the SpMV kernel, across two
//! processor counts and two allocations per count; geometric means of
//! execution times normalized to DEF.
//!
//! Paper shape targets (gmean rows): UWH leads SpMV (~0.91 vs DEF's
//! 1.0) and comm-only cage15 (~0.86); UG/UMC sit between; UMMC can
//! exceed 1.0 on the volume-scaled comm-only runs; TMAP ≈ 1.0.

use rayon::prelude::*;
use umpa_bench::{fmt2, ExpScale, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::{partition_loads, spmv_task_graph};
use umpa_netsim::prelude::*;
use umpa_partition::PartitionerKind;

const MAPPERS: [MapperKind; 6] = [
    MapperKind::Def,
    MapperKind::Tmap,
    MapperKind::Greedy,
    MapperKind::GreedyWh,
    MapperKind::GreedyMc,
    MapperKind::GreedyMmc,
];

/// One experiment block: (label, per-mapper normalized gmean rows).
fn block(
    label: &str,
    times: &[(usize, u64, Vec<f64>)], // (parts, alloc seed, per-mapper µs)
    table: &mut Table,
) {
    let mut per_mapper_ratios: Vec<Vec<f64>> = vec![Vec::new(); MAPPERS.len()];
    for (parts, seed, row) in times {
        let def = row[0];
        let mut cells = vec![
            label.to_string(),
            parts.to_string(),
            seed.to_string(),
            format!("{:.3}s", def / 1e6),
        ];
        for (mi, &t) in row.iter().enumerate() {
            if mi > 0 {
                cells.push(fmt2(t / def));
            }
            per_mapper_ratios[mi].push(t / def);
        }
        table.row(cells);
    }
    // Gmean summary row.
    let mut cells = vec![label.to_string(), "gmean".into(), "-".into(), "-".into()];
    for ratios in per_mapper_ratios.iter().skip(1) {
        cells.push(fmt2(umpa_analysis::geometric_mean(ratios)));
    }
    table.row(cells);
}

fn main() {
    let scale = ExpScale::from_args();
    eprintln!("table1 [{}]: summary sweep", scale.label);
    let machine = scale.machine();
    let part_counts = [scale.timing_parts, (scale.timing_parts * 2).min(16384)];
    let seeds = &scale.alloc_seeds[..2.min(scale.alloc_seeds.len())];
    let cage = umpa_matgen::dataset::cage15_like(scale.matrix_scale);
    let rgg = umpa_matgen::dataset::rgg_like(scale.matrix_scale);

    // One closure per application kind returning per-mapper times.
    let run_case =
        |a: &umpa_matgen::SparsePattern, parts: usize, seed: u64, app_kind: &str| -> Vec<f64> {
            let part = PartitionerKind::Patoh.partition_matrix(a, parts, 42);
            let fine = spmv_task_graph(a, &part, parts);
            let loads = partition_loads(a, &part, parts);
            let alloc = scale.allocation(&machine, parts, seed);
            let cfg = PipelineConfig::default();
            MAPPERS
                .par_iter()
                .map(|&mk| {
                    let (out, _) = umpa_bench::run_mapper(&fine, &machine, &alloc, mk, &cfg);
                    match app_kind {
                        "spmv" => {
                            let app = AppConfig {
                                des: DesConfig {
                                    noise: 0.02,
                                    seed: 3,
                                    ..DesConfig::default()
                                },
                                repetitions: scale.repetitions,
                                ..AppConfig::default()
                            };
                            spmv_time(&machine, &fine, &out.fine_mapping, &loads, 500, &app).mean_us
                        }
                        _ => {
                            let msg_scale = if app_kind == "comm_cage" {
                                4096.0
                            } else {
                                262_144.0
                            };
                            let app = AppConfig {
                                des: DesConfig {
                                    scale: msg_scale,
                                    noise: 0.02,
                                    seed: 3,
                                    ..DesConfig::default()
                                },
                                repetitions: scale.repetitions,
                                ..AppConfig::default()
                            };
                            comm_only_time(&machine, &fine, &out.fine_mapping, &app).mean_us
                        }
                    }
                })
                .collect()
        };

    let mut table = Table::new(&[
        "app", "parts", "alloc", "DEF", "TMAP", "UG", "UWH", "UMC", "UMMC",
    ]);
    for (label, matrix, kind) in [
        ("cage15 SpMV", &cage, "spmv"),
        ("cage15 Comm", &cage, "comm_cage"),
        ("rgg Comm", &rgg, "comm_rgg"),
    ] {
        let mut rows = Vec::new();
        for &parts in &part_counts {
            for &seed in seeds {
                rows.push((parts, seed, run_case(matrix, parts, seed, kind)));
                if label == "rgg Comm" {
                    break; // the paper only runs rgg at one count per alloc
                }
            }
        }
        block(label, &rows, &mut table);
    }
    println!("\nTable I — normalized execution times (DEF column in seconds)\n");
    table.emit("table1_summary");
}
