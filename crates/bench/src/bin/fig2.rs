//! Figure 2: mean mapping-metric values (TH, WH, MMC, MC) of the seven
//! mapping algorithms on PATOH task graphs, normalized to DEF, per part
//! count. Also emits Figure 3's data (mean mapping times) since both
//! come from the same sweep.
//!
//! Paper shape targets at 4096 procs: UG/UWH cut WH and TH by ~5–18 %
//! vs DEF; UMC cuts MC by 27–37 %; UMMC cuts MMC by 24–37 %; TMAP only
//! manages a few percent on MC (often falling back to DEF); SMAP is
//! frequently worse than DEF.

use rayon::prelude::*;
use umpa_bench::{fmt2, fmt3, ExpScale, FullMetrics, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::spmv_task_graph;
use umpa_partition::PartitionerKind;

fn main() {
    let scale = ExpScale::from_args();
    eprintln!("fig2/fig3 [{}]: mapping metric + timing sweep", scale.label);
    let machine = scale.machine();
    let matrices = scale.matrices();
    let mappers = MapperKind::all();
    let mut table = Table::new(&["parts", "mapper", "TH", "WH", "MMC", "MC"]);
    let mut times = Table::new(&["parts", "mapper", "mean_time_s"]);
    for &parts in &scale.parts {
        // Per (matrix, alloc): metrics for all mappers, normalized to DEF.
        type Case = (Vec<[f64; 4]>, Vec<f64>); // normalized metrics + times
        let cases: Vec<Case> = matrices
            .par_iter()
            .flat_map(|entry| {
                let a = entry.build(scale.matrix_scale);
                let part = PartitionerKind::Patoh.partition_matrix(&a, parts, 42);
                let fine = spmv_task_graph(&a, &part, parts);
                scale
                    .alloc_seeds
                    .par_iter()
                    .map(|&seed| {
                        let alloc = scale.allocation(&machine, parts, seed);
                        let cfg = PipelineConfig::default();
                        let runs: Vec<(FullMetrics, f64)> = mappers
                            .iter()
                            .map(|&kind| {
                                let (out, m) =
                                    umpa_bench::run_mapper(&fine, &machine, &alloc, kind, &cfg);
                                (m, out.elapsed.as_secs_f64())
                            })
                            .collect();
                        let base = &runs[0].0; // DEF
                        let normalized: Vec<[f64; 4]> = runs
                            .iter()
                            .map(|(m, _)| {
                                [
                                    m.th / base.th.max(1.0),
                                    m.wh / base.wh.max(1.0),
                                    m.mmc / base.mmc.max(1.0),
                                    m.mc / base.mc.max(1e-9),
                                ]
                            })
                            .collect();
                        let t: Vec<f64> = runs.iter().map(|(_, t)| *t).collect();
                        (normalized, t)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (mi, mapper) in mappers.iter().enumerate() {
            let gmean_of = |idx: usize| -> f64 {
                let vals: Vec<f64> = cases.iter().map(|(n, _)| n[mi][idx]).collect();
                umpa_analysis::geometric_mean(&vals)
            };
            table.row(vec![
                parts.to_string(),
                mapper.name().to_string(),
                fmt2(gmean_of(0)),
                fmt2(gmean_of(1)),
                fmt2(gmean_of(2)),
                fmt2(gmean_of(3)),
            ]);
            let mean_t: Vec<f64> = cases.iter().map(|(_, t)| t[mi].max(1e-6)).collect();
            times.row(vec![
                parts.to_string(),
                mapper.name().to_string(),
                fmt3(umpa_analysis::geometric_mean(&mean_t)),
            ]);
        }
    }
    println!("\nFigure 2 — mapping metrics on PATOH graphs, normalized to DEF\n");
    table.emit("fig2_mapping_metrics");
    println!("\nFigure 3 — geometric-mean mapping times (seconds)\n");
    times.emit("fig3_mapping_times");
}
