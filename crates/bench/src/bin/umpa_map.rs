//! `umpa-map` — command-line topology-aware mapping.
//!
//! Reads a Matrix Market matrix (or generates a named dataset
//! instance), partitions it row-wise, maps the resulting MPI task graph
//! onto a torus/mesh allocation, and writes `rank → node` plus the
//! metric report.
//!
//! ```text
//! umpa_map --matrix path/to/A.mtx --parts 1024 --mapper UWH \
//!          --torus 17x8x24 --procs-per-node 16 --alloc-seed 7
//! umpa_map --dataset cage15 --parts 256 --mapper UMC --mesh 8x8
//! ```

use std::io::BufReader;

use umpa_bench::FullMetrics;
use umpa_core::prelude::*;
use umpa_matgen::spmv::spmv_task_graph;
use umpa_matgen::{mm, SparsePattern};
use umpa_partition::PartitionerKind;
use umpa_topology::prelude::*;

struct Args {
    matrix: Option<String>,
    dataset: Option<String>,
    parts: usize,
    mapper: String,
    partitioner: String,
    dims: Vec<u32>,
    mesh: bool,
    procs_per_node: u32,
    alloc_seed: u64,
    occupancy: f64,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: umpa_map (--matrix FILE.mtx | --dataset NAME) [options]\n\
         \n\
         options:\n\
           --parts N             MPI task count (default 256)\n\
           --mapper M            DEF|TMAP|SMAP|UG|UWH|UMC|UMMC (default UWH)\n\
           --partitioner P       SCOTCH|KAFFPA|METIS|PATOH|UMPA_MV|UMPA_MM|UMPA_TM\n\
                                 (default PATOH)\n\
           --torus AxBxC         torus extents (default 17x8x24 = Hopper)\n\
           --mesh AxBxC          mesh extents (no wraparound)\n\
           --procs-per-node N    cores per node (default 16)\n\
           --alloc-seed S        allocation seed (default 7)\n\
           --occupancy F         background machine occupancy 0..1 (default 0.3)\n\
           --out FILE            write 'task node' lines\n\
         \n\
         dataset names: cage15, rgg, or any registry entry (grid2d_5pt_sq, …)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        matrix: None,
        dataset: None,
        parts: 256,
        mapper: "UWH".into(),
        partitioner: "PATOH".into(),
        dims: vec![17, 8, 24],
        mesh: false,
        procs_per_node: 16,
        alloc_seed: 7,
        occupancy: 0.3,
        out: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--matrix" => args.matrix = Some(value(&argv, &mut i)),
            "--dataset" => args.dataset = Some(value(&argv, &mut i)),
            "--parts" => args.parts = value(&argv, &mut i).parse().unwrap_or_else(|_| usage()),
            "--mapper" => args.mapper = value(&argv, &mut i).to_uppercase(),
            "--partitioner" => args.partitioner = value(&argv, &mut i).to_uppercase(),
            "--torus" | "--mesh" => {
                args.mesh = argv[i] == "--mesh";
                args.dims = value(&argv, &mut i)
                    .split('x')
                    .map(|d| d.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--procs-per-node" => {
                args.procs_per_node = value(&argv, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--alloc-seed" => {
                args.alloc_seed = value(&argv, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--occupancy" => {
                args.occupancy = value(&argv, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--out" => args.out = Some(value(&argv, &mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    if args.matrix.is_none() && args.dataset.is_none() {
        usage();
    }
    args
}

fn load_matrix(args: &Args) -> SparsePattern {
    if let Some(path) = &args.matrix {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        return mm::read_pattern(BufReader::new(f)).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        });
    }
    let name = args.dataset.as_deref().unwrap();
    match name {
        "cage15" => umpa_matgen::dataset::cage15_like(umpa_matgen::Scale::Small),
        "rgg" => umpa_matgen::dataset::rgg_like(umpa_matgen::Scale::Small),
        other => {
            let reg = umpa_matgen::dataset::registry();
            match reg.iter().find(|e| e.name == other) {
                Some(e) => e.build(umpa_matgen::Scale::Small),
                None => {
                    eprintln!("unknown dataset '{other}'");
                    usage();
                }
            }
        }
    }
}

fn mapper_kind(name: &str) -> MapperKind {
    match name {
        "DEF" => MapperKind::Def,
        "TMAP" => MapperKind::Tmap,
        "SMAP" => MapperKind::Smap,
        "UG" => MapperKind::Greedy,
        "UWH" => MapperKind::GreedyWh,
        "UMC" => MapperKind::GreedyMc,
        "UMMC" => MapperKind::GreedyMmc,
        _ => usage(),
    }
}

fn partitioner_kind(name: &str) -> PartitionerKind {
    PartitionerKind::all()
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| usage())
}

fn main() {
    let args = parse_args();
    let a = load_matrix(&args);
    eprintln!(
        "matrix: {} rows, {} nnz ({:.1}/row)",
        a.nrows(),
        a.nnz(),
        a.avg_row_nnz()
    );
    let mut cfg = MachineConfig::hopper();
    cfg.dims = args.dims.clone();
    cfg.wraparound = !args.mesh;
    cfg.procs_per_node = args.procs_per_node;
    if cfg.bw_per_dim.len() != cfg.dims.len() {
        cfg.bw_per_dim = vec![9.375; cfg.dims.len()];
    }
    let machine = cfg.build();
    let nodes = args.parts.div_ceil(args.procs_per_node as usize);
    let spec = AllocSpec {
        num_nodes: nodes,
        background_occupancy: args.occupancy,
        fragment_len: 4,
        ordering: NodeOrdering::Serpentine,
        seed: args.alloc_seed,
    };
    let alloc = Allocation::generate(&machine, &spec);
    eprintln!(
        "machine: {}, {} nodes allocated (mean pairwise distance {:.1} hops)",
        machine.topology().summary(),
        nodes,
        alloc.mean_pairwise_hops(&machine)
    );
    let pk = partitioner_kind(&args.partitioner);
    eprintln!("partitioning with {} into {} parts…", pk.name(), args.parts);
    let part = pk.partition_matrix(&a, args.parts, 42);
    let tg = spmv_task_graph(&a, &part, args.parts);
    eprintln!(
        "task graph: {} messages, {:.0} words total volume",
        tg.num_messages(),
        tg.total_volume()
    );
    let kind = mapper_kind(&args.mapper);
    let pipeline = PipelineConfig::default();
    let out = map_tasks(&tg, &machine, &alloc, kind, &pipeline);
    let m = FullMetrics::compute(&tg, &machine, &out.fine_mapping);
    // Compare with DEF.
    let def = map_tasks(&tg, &machine, &alloc, MapperKind::Def, &pipeline);
    let md = FullMetrics::compute(&tg, &machine, &def.fine_mapping);
    println!("mapper {} (vs DEF):", kind.name());
    println!("  TH  = {:>12.0}   ({:.2}x)", m.th, m.th / md.th.max(1.0));
    println!("  WH  = {:>12.0}   ({:.2}x)", m.wh, m.wh / md.wh.max(1.0));
    println!(
        "  MMC = {:>12.0}   ({:.2}x)",
        m.mmc,
        m.mmc / md.mmc.max(1.0)
    );
    println!("  MC  = {:>12.2}   ({:.2}x)", m.mc, m.mc / md.mc.max(1e-9));
    println!("  mapping time: {:.3} s", out.elapsed.as_secs_f64());
    if let Some(path) = &args.out {
        let mut text = String::new();
        for (t, &node) in out.fine_mapping.iter().enumerate() {
            text.push_str(&format!("{t} {node}\n"));
        }
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} lines to {path}", out.fine_mapping.len());
    }
}
