//! Figure 4: communication-only application times (plus WH, MMC, MC)
//! for the cage15-like (scale 4K) and rgg-like (scale 256K) workloads,
//! all partitioner presets × mappers {DEF, TMAP, UG, UWH, UMC, UMMC},
//! normalized to DEF on the PATOH graph.
//!
//! Paper shape targets: times correlate with WH; UG/UWH/UMC lead (up to
//! ~40 % faster than DEF); UMMC is the weakest UMPA variant on these
//! volume-scaled runs; TMAP hovers near DEF.

use rayon::prelude::*;
use umpa_bench::{fmt2, ExpScale, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::spmv_task_graph;
use umpa_matgen::SparsePattern;
use umpa_netsim::prelude::*;
use umpa_partition::PartitionerKind;

fn mappers() -> [MapperKind; 6] {
    [
        MapperKind::Def,
        MapperKind::Tmap,
        MapperKind::Greedy,
        MapperKind::GreedyWh,
        MapperKind::GreedyMc,
        MapperKind::GreedyMmc,
    ]
}

fn run_workload(name: &str, a: &SparsePattern, msg_scale: f64, scale: &ExpScale) -> Table {
    let machine = scale.machine();
    let parts = scale.timing_parts;
    let alloc = scale.allocation(&machine, parts, scale.alloc_seeds[0]);
    let kinds = PartitionerKind::all();
    // (partitioner, mapper) → (time mean, std, WH, MMC, MC)
    struct Cell {
        time: f64,
        std: f64,
        wh: f64,
        mmc: f64,
        mc: f64,
    }
    let cells: Vec<Vec<Cell>> = kinds
        .par_iter()
        .map(|kind| {
            let part = kind.partition_matrix(a, parts, 42);
            let fine = spmv_task_graph(a, &part, parts);
            let cfg = PipelineConfig::default();
            let app = AppConfig {
                des: DesConfig {
                    scale: msg_scale,
                    noise: 0.02,
                    seed: 7,
                    ..DesConfig::default()
                },
                repetitions: scale.repetitions,
                ..AppConfig::default()
            };
            mappers()
                .iter()
                .map(|&mk| {
                    let (out, m) = umpa_bench::run_mapper(&fine, &machine, &alloc, mk, &cfg);
                    let t = comm_only_time(&machine, &fine, &out.fine_mapping, &app);
                    let _ = &m;
                    Cell {
                        time: t.mean_us,
                        std: t.std_us,
                        wh: m.wh,
                        mmc: m.mmc,
                        mc: m.mc,
                    }
                })
                .collect()
        })
        .collect();
    // Normalize against DEF on the PATOH graph (the paper's reference).
    let patoh = kinds
        .iter()
        .position(|k| *k == PartitionerKind::Patoh)
        .unwrap();
    let base = &cells[patoh][0];
    let mut table = Table::new(&["partitioner", "mapper", "time", "std", "WH", "MMC", "MC"]);
    for (ki, kind) in kinds.iter().enumerate() {
        for (mi, mk) in mappers().iter().enumerate() {
            let c = &cells[ki][mi];
            table.row(vec![
                kind.name().to_string(),
                mk.name().to_string(),
                fmt2(c.time / base.time),
                fmt2(c.std / base.time),
                fmt2(c.wh / base.wh.max(1.0)),
                fmt2(c.mmc / base.mmc.max(1.0)),
                fmt2(c.mc / base.mc.max(1e-9)),
            ]);
        }
    }
    println!("\nFigure 4 ({name}) — comm-only times & metrics normalized to DEF on PATOH\n");
    table.emit(&format!("fig4_comm_only_{name}"));
    table
}

fn main() {
    let scale = ExpScale::from_args();
    eprintln!(
        "fig4 [{}]: communication-only application, {} parts",
        scale.label, scale.timing_parts
    );
    let cage = umpa_matgen::dataset::cage15_like(scale.matrix_scale);
    let rgg = umpa_matgen::dataset::rgg_like(scale.matrix_scale);
    run_workload("cage15", &cage, 4096.0, &scale);
    run_workload("rgg", &rgg, 262_144.0, &scale);
}
