//! Ablation sweeps over the paper's fixed design choices:
//!
//! * `Δ` (swap-candidate budget of Algorithms 2–3; paper fixes 8),
//! * `NBFS` (far seeds of Algorithm 1; paper tries {0, 1}),
//! * the 0.5 % pass-improvement threshold of Algorithm 2.
//!
//! Reports WH/MC quality and wall time per setting so the trade-offs
//! behind the paper's constants are visible.

use rayon::prelude::*;
use umpa_bench::{fmt2, fmt3, ExpScale, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::spmv_task_graph;
use umpa_partition::PartitionerKind;

fn main() {
    let scale = ExpScale::from_args();
    eprintln!("ablation [{}]", scale.label);
    let machine = scale.machine();
    let parts = scale.timing_parts;
    let a = umpa_matgen::dataset::cage15_like(scale.matrix_scale);
    let part = PartitionerKind::Patoh.partition_matrix(&a, parts, 42);
    let fine = spmv_task_graph(&a, &part, parts);
    let alloc = scale.allocation(&machine, parts, scale.alloc_seeds[0]);
    let base_cfg = PipelineConfig::default();

    // Baseline WH from DEF for normalization.
    let def = map_tasks(&fine, &machine, &alloc, MapperKind::Def, &base_cfg);
    let def_m = evaluate(&fine, &machine, &def.fine_mapping);

    // -- Δ sweep (Algorithm 2).
    let mut t_delta = Table::new(&["delta", "WH_vs_DEF", "MC_vs_DEF", "time_s"]);
    let deltas = [1usize, 2, 4, 8, 16, 32];
    let rows: Vec<(usize, f64, f64, f64)> = deltas
        .par_iter()
        .map(|&delta| {
            let cfg = PipelineConfig {
                wh: WhRefineConfig {
                    delta,
                    ..Default::default()
                },
                ..base_cfg.clone()
            };
            let out = map_tasks(&fine, &machine, &alloc, MapperKind::GreedyWh, &cfg);
            let m = evaluate(&fine, &machine, &out.fine_mapping);
            (delta, m.wh, m.mc, out.elapsed.as_secs_f64())
        })
        .collect();
    for (delta, wh, mc, t) in rows {
        t_delta.row(vec![
            delta.to_string(),
            fmt2(wh / def_m.wh.max(1.0)),
            fmt2(mc / def_m.mc.max(1e-9)),
            fmt3(t),
        ]);
    }
    println!("\nAblation — Δ (UWH swap-candidate budget; paper: 8)\n");
    t_delta.emit("ablation_delta");

    // -- NBFS sweep (Algorithm 1).
    let mut t_nbfs = Table::new(&["nbfs", "WH_vs_DEF", "time_s"]);
    let rows: Vec<(u32, f64, f64)> = [0u32, 1, 2, 4]
        .par_iter()
        .map(|&nbfs| {
            let cfg = PipelineConfig {
                greedy: GreedyConfig {
                    nbfs_candidates: vec![nbfs],
                    ..GreedyConfig::default()
                },
                ..base_cfg.clone()
            };
            let out = map_tasks(&fine, &machine, &alloc, MapperKind::Greedy, &cfg);
            let m = evaluate(&fine, &machine, &out.fine_mapping);
            (nbfs, m.wh, out.elapsed.as_secs_f64())
        })
        .collect();
    for (nbfs, wh, t) in rows {
        t_nbfs.row(vec![
            nbfs.to_string(),
            fmt2(wh / def_m.wh.max(1.0)),
            fmt3(t),
        ]);
    }
    println!("\nAblation — NBFS (UG far seeds; paper tries {{0,1}})\n");
    t_nbfs.emit("ablation_nbfs");

    // -- Pass threshold sweep (Algorithm 2).
    let mut t_thr = Table::new(&["threshold", "WH_vs_DEF", "time_s"]);
    let rows: Vec<(f64, f64, f64)> = [0.0f64, 0.001, 0.005, 0.02, 0.10]
        .par_iter()
        .map(|&thr| {
            let cfg = PipelineConfig {
                wh: WhRefineConfig {
                    min_rel_improvement: thr,
                    ..Default::default()
                },
                ..base_cfg.clone()
            };
            let out = map_tasks(&fine, &machine, &alloc, MapperKind::GreedyWh, &cfg);
            let m = evaluate(&fine, &machine, &out.fine_mapping);
            (thr, m.wh, out.elapsed.as_secs_f64())
        })
        .collect();
    for (thr, wh, t) in rows {
        t_thr.row(vec![
            format!("{thr:.3}"),
            fmt2(wh / def_m.wh.max(1.0)),
            fmt3(t),
        ]);
    }
    println!("\nAblation — UWH pass-improvement threshold (paper: 0.005)\n");
    t_thr.emit("ablation_threshold");

    // -- Coarse-only vs fine-level refinement (§III-B trade-off).
    let mut t_fine = Table::new(&["refinement", "WH_vs_DEF", "ICV_vs_DEF", "time_s"]);
    let def_full = umpa_bench::FullMetrics::compute(&fine, &machine, &def.fine_mapping);
    for (label, fine_flag) in [("coarse (paper)", false), ("fine (§III-B alt)", true)] {
        let cfg = PipelineConfig {
            fine_wh_refine: fine_flag,
            ..base_cfg.clone()
        };
        let out = map_tasks(&fine, &machine, &alloc, MapperKind::GreedyWh, &cfg);
        let m = umpa_bench::FullMetrics::compute(&fine, &machine, &out.fine_mapping);
        t_fine.row(vec![
            label.to_string(),
            fmt2(m.wh / def_full.wh.max(1.0)),
            fmt2(m.icv / def_full.icv.max(1.0)),
            fmt3(out.elapsed.as_secs_f64()),
        ]);
    }
    println!(
        "\nAblation — coarse vs fine WH refinement (paper keeps coarse: fine swaps\n\
         can lower WH further but may raise the internode volume ICV)\n"
    );
    t_fine.emit("ablation_fine_refine");
}
