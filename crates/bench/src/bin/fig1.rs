//! Figure 1: geometric means of the partition metrics (TV, TM, MSV,
//! MSM) of the seven partitioner presets, normalized to PATOH, per part
//! count.
//!
//! Paper shape targets: all tools land within ~±20 % of PATOH on TV;
//! the edge-cut-only tools (SCOTCH, KAFFPA) trail slightly on volume
//! metrics; UMPA_MV leads MSV, UMPA_MM leads MSM, UMPA_TM leads TM.

use rayon::prelude::*;
use umpa_bench::{fmt3, ExpScale, Table};
use umpa_matgen::spmv::{partition_loads, spmv_task_graph, CommStats};
use umpa_partition::PartitionerKind;

fn main() {
    let scale = ExpScale::from_args();
    eprintln!("fig1 [{}]: partition quality sweep", scale.label);
    let matrices = scale.matrices();
    let kinds = PartitionerKind::all();
    let mut table = Table::new(&["parts", "partitioner", "TV", "TM", "MSV", "MSM"]);
    for &parts in &scale.parts {
        // stats[matrix][kind]
        let stats: Vec<Vec<CommStats>> = matrices
            .par_iter()
            .map(|entry| {
                let a = entry.build(scale.matrix_scale);
                kinds
                    .iter()
                    .map(|kind| {
                        let part = kind.partition_matrix(&a, parts, 42);
                        let tg = spmv_task_graph(&a, &part, parts);
                        CommStats::from_task_graph(&tg, &partition_loads(&a, &part, parts))
                    })
                    .collect()
            })
            .collect();
        // Normalize each matrix's metrics to its PATOH run, then gmean.
        let patoh_idx = kinds
            .iter()
            .position(|k| *k == PartitionerKind::Patoh)
            .unwrap();
        for (ki, kind) in kinds.iter().enumerate() {
            let norm = |f: &dyn Fn(&CommStats) -> f64| -> f64 {
                let ratios: Vec<f64> = stats
                    .iter()
                    .map(|per_kind| {
                        let base = f(&per_kind[patoh_idx]).max(1.0);
                        f(&per_kind[ki]).max(1.0) / base
                    })
                    .collect();
                umpa_analysis::geometric_mean(&ratios)
            };
            table.row(vec![
                parts.to_string(),
                kind.name().to_string(),
                fmt3(norm(&|s| s.tv)),
                fmt3(norm(&|s| s.tm as f64)),
                fmt3(norm(&|s| s.msv)),
                fmt3(norm(&|s| f64::from(s.msm))),
            ]);
        }
    }
    println!("\nFigure 1 — partition metrics normalized to PATOH (gmean over matrices)\n");
    table.emit("fig1_partition_metrics");
}
