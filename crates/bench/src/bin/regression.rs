//! Section IV-E: nonnegative least-squares regression of simulated
//! execution times on the 14 partitioning/mapping metrics, plus the
//! Pearson cross-check.
//!
//! Paper shape targets: for the volume-scaled communication-only runs
//! the dominant nonzero coefficients are WH, MSV and MC; for SpMV they
//! are AMC, ICV, MMC, TH and MNRV, with the message metrics (MNRM, ICM,
//! TM) hidden by their ≥0.92 Pearson correlation with AMC.

use rayon::prelude::*;
use umpa_analysis::{nnls, pearson, standardize_columns, Matrix};
use umpa_bench::{ExpScale, FullMetrics, Table};
use umpa_core::prelude::*;
use umpa_matgen::spmv::{partition_loads, spmv_task_graph};
use umpa_netsim::prelude::*;
use umpa_partition::PartitionerKind;

/// Gathers (metrics row, time) samples across partitioners × mappers ×
/// allocations for one application kind.
fn gather(scale: &ExpScale, spmv: bool) -> (Vec<[f64; 14]>, Vec<f64>) {
    let machine = scale.machine();
    let parts = scale.timing_parts;
    let a = umpa_matgen::dataset::cage15_like(scale.matrix_scale);
    let seeds = &scale.alloc_seeds[..2.min(scale.alloc_seeds.len())];
    let kinds = PartitionerKind::all();
    let samples: Vec<(([f64; 14], f64), ())> = kinds
        .par_iter()
        .flat_map(|kind| {
            let part = kind.partition_matrix(&a, parts, 42);
            let fine = spmv_task_graph(&a, &part, parts);
            let loads = partition_loads(&a, &part, parts);
            seeds
                .par_iter()
                .flat_map(|&seed| {
                    let alloc = scale.allocation(&machine, parts, seed);
                    let cfg = PipelineConfig::default();
                    MapperKind::all()
                        .into_iter()
                        .map(|mk| {
                            let (out, metrics) =
                                umpa_bench::run_mapper(&fine, &machine, &alloc, mk, &cfg);
                            let app = AppConfig {
                                des: DesConfig {
                                    scale: if spmv { 1.0 } else { 4096.0 },
                                    noise: 0.02,
                                    seed: 3,
                                    ..DesConfig::default()
                                },
                                repetitions: scale.repetitions,
                                ..AppConfig::default()
                            };
                            let t = if spmv {
                                spmv_time(&machine, &fine, &out.fine_mapping, &loads, 500, &app)
                                    .mean_us
                            } else {
                                comm_only_time(&machine, &fine, &out.fine_mapping, &app).mean_us
                            };
                            ((metrics.row(), t), ())
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let rows: Vec<[f64; 14]> = samples.iter().map(|((r, _), ())| *r).collect();
    let times: Vec<f64> = samples.iter().map(|((_, t), ())| *t).collect();
    (rows, times)
}

fn analyze(name: &str, rows: &[[f64; 14]], times: &[f64]) {
    let mut v = Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
    standardize_columns(&mut v);
    // Standardize t as well so coefficients are comparable.
    let mean_t = times.iter().sum::<f64>() / times.len() as f64;
    let sd_t = (times.iter().map(|t| (t - mean_t).powi(2)).sum::<f64>() / times.len() as f64)
        .sqrt()
        .max(1e-12);
    let t_std: Vec<f64> = times.iter().map(|t| (t - mean_t) / sd_t).collect();
    let d = nnls(&v, &t_std);
    let mut table = Table::new(&["metric", "nnls_coeff", "pearson_vs_time"]);
    let mut ranked: Vec<(usize, f64)> = d.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, coeff) in ranked {
        let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
        table.row(vec![
            FullMetrics::LABELS[i].to_string(),
            format!("{coeff:.4}"),
            format!("{:.3}", pearson(&col, times)),
        ]);
    }
    println!("\nRegression ({name}) — NNLS coefficients (paper §IV-E)\n");
    table.emit(&format!("regression_{name}"));
}

fn main() {
    let scale = ExpScale::from_args();
    eprintln!("regression [{}]: gathering samples", scale.label);
    let (rows, times) = gather(&scale, false);
    analyze("comm_only", &rows, &times);
    let (rows, times) = gather(&scale, true);
    analyze("spmv", &rows, &times);
}
