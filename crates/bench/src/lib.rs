//! `umpa-bench` — shared harness code for the experiment binaries.
//!
//! One binary per table/figure of the paper regenerates that artifact
//! (see DESIGN.md §6 for the index and EXPERIMENTS.md for recorded
//! outputs):
//!
//! | binary       | reproduces |
//! |--------------|------------|
//! | `fig1`       | Figure 1 — partitioner quality (TV/TM/MSV/MSM)    |
//! | `fig2`       | Figure 2 — mapping metrics vs DEF                 |
//! | `fig3`       | Figure 3 — mapping algorithm wall times           |
//! | `fig4`       | Figure 4 — communication-only app times           |
//! | `fig5`       | Figure 5 — SpMV times                             |
//! | `table1`     | Table I  — summary improvements                   |
//! | `regression` | Section IV-E — NNLS + Pearson analysis            |
//! | `ablation`   | design-choice sweeps (Δ, NBFS, pass threshold)    |
//!
//! Every binary accepts `--quick` (CI-sized) and `--full` (closer to
//! paper scale); the default suits a laptop. Results go to `results/`
//! as CSV next to the pretty table on stdout.

pub mod timing;

use std::fmt::Write as _;
use std::path::PathBuf;

use umpa_core::prelude::*;
use umpa_graph::TaskGraph;
use umpa_matgen::prelude::*;
use umpa_topology::prelude::*;

/// Harness-wide experiment scale, selected by CLI flags.
#[derive(Clone, Debug)]
pub struct ExpScale {
    /// Matrix registry scale.
    pub matrix_scale: Scale,
    /// Part counts (= processor counts) swept by Figures 1–3.
    pub parts: Vec<usize>,
    /// Part count used by the timing experiments (Figures 4–5; the
    /// paper uses 4096 processors there).
    pub timing_parts: usize,
    /// Allocation seeds (the paper's "5 different allocations").
    pub alloc_seeds: Vec<u64>,
    /// DES repetitions per configuration (paper: 5).
    pub repetitions: u32,
    /// Max matrices from the registry (25 = all).
    pub max_matrices: usize,
    /// Human-readable label for report headers.
    pub label: &'static str,
}

impl ExpScale {
    /// Parses `--quick` / `--full` / `--parts=a,b,…` from the process
    /// arguments (`--parts` overrides the sweep and the timing size).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::default()
        };
        if let Some(spec) = args.iter().find_map(|a| a.strip_prefix("--parts=")) {
            let parts: Vec<usize> = spec.split(',').filter_map(|p| p.parse().ok()).collect();
            if !parts.is_empty() {
                scale.timing_parts = *parts.iter().max().unwrap();
                scale.parts = parts;
            }
        }
        scale
    }

    /// CI-sized: tiny matrices, two part counts, two allocations.
    pub fn quick() -> Self {
        Self {
            matrix_scale: Scale::Tiny,
            parts: vec![64, 128],
            timing_parts: 128,
            alloc_seeds: vec![11, 22],
            repetitions: 2,
            max_matrices: 6,
            label: "quick",
        }
    }

    /// Laptop default.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Self {
            matrix_scale: Scale::Small,
            parts: vec![128, 256, 512],
            timing_parts: 512,
            alloc_seeds: vec![11, 22, 33],
            repetitions: 5,
            max_matrices: 12,
            label: "default",
        }
    }

    /// Closer to the paper (slow: minutes to hours).
    pub fn full() -> Self {
        Self {
            matrix_scale: Scale::Medium,
            parts: vec![1024, 2048, 4096, 8192, 16384],
            timing_parts: 4096,
            alloc_seeds: vec![11, 22, 33, 44, 55],
            repetitions: 5,
            max_matrices: 25,
            label: "full",
        }
    }

    /// The modelled machine (the Hopper preset; big enough for every
    /// scale since mapping only touches the allocated nodes).
    pub fn machine(&self) -> Machine {
        MachineConfig::hopper().build()
    }

    /// Nodes needed for `parts` processors at 16 procs/node.
    pub fn nodes_for(&self, parts: usize) -> usize {
        parts.div_ceil(16)
    }

    /// A sparse allocation for `parts` processors.
    pub fn allocation(&self, machine: &Machine, parts: usize, seed: u64) -> Allocation {
        Allocation::generate(machine, &AllocSpec::sparse(self.nodes_for(parts), seed))
    }

    /// The selected slice of the 25-matrix registry.
    pub fn matrices(&self) -> Vec<DatasetEntry> {
        let mut reg = umpa_matgen::dataset::registry();
        reg.truncate(self.max_matrices);
        reg
    }
}

/// Extended per-run metrics: the 14 regression columns of Section IV-E.
#[derive(Clone, Copy, Debug)]
pub struct FullMetrics {
    /// Maximum send volume over tasks (partitioning metric).
    pub msv: f64,
    /// Total communication volume.
    pub tv: f64,
    /// Maximum sent-message count over tasks.
    pub msm: f64,
    /// Total message count.
    pub tm: f64,
    /// Weighted hops.
    pub wh: f64,
    /// Total hops.
    pub th: f64,
    /// Max volume congestion.
    pub mc: f64,
    /// Max message congestion.
    pub mmc: f64,
    /// Average volume congestion.
    pub ac: f64,
    /// Average message congestion.
    pub amc: f64,
    /// Inter-node communication volume.
    pub icv: f64,
    /// Inter-node message count.
    pub icm: f64,
    /// Max per-node receive volume.
    pub mnrv: f64,
    /// Max per-node receive messages.
    pub mnrm: f64,
}

impl FullMetrics {
    /// Column labels, in the paper's Section IV-E order.
    pub const LABELS: [&'static str; 14] = [
        "MSV", "TV", "MSM", "TM", "WH", "TH", "MC", "MMC", "AC", "AMC", "ICV", "ICM", "MNRV",
        "MNRM",
    ];

    /// The metrics as a row in `LABELS` order.
    pub fn row(&self) -> [f64; 14] {
        [
            self.msv, self.tv, self.msm, self.tm, self.wh, self.th, self.mc, self.mmc, self.ac,
            self.amc, self.icv, self.icm, self.mnrv, self.mnrm,
        ]
    }

    /// Computes everything for a mapped fine task graph.
    pub fn compute(tg: &TaskGraph, machine: &Machine, mapping: &[u32]) -> Self {
        let report = evaluate(tg, machine, mapping);
        let mut msv = 0.0f64;
        let mut msm = 0u32;
        for t in 0..tg.num_tasks() as u32 {
            msv = msv.max(tg.send_volume(t));
            msm = msm.max(tg.send_messages(t));
        }
        let mut icv = 0.0;
        let mut icm = 0.0;
        let mut recv_vol = vec![0.0f64; machine.num_nodes()];
        let mut recv_msg = vec![0.0f64; machine.num_nodes()];
        for (s, t, c) in tg.messages() {
            let (a, b) = (mapping[s as usize], mapping[t as usize]);
            if a != b {
                icv += c;
                icm += 1.0;
                recv_vol[b as usize] += c;
                recv_msg[b as usize] += 1.0;
            }
        }
        let mnrv = recv_vol.iter().cloned().fold(0.0, f64::max);
        let mnrm = recv_msg.iter().cloned().fold(0.0, f64::max);
        Self {
            msv,
            tv: tg.total_volume(),
            msm: f64::from(msm),
            tm: tg.num_messages() as f64,
            wh: report.wh,
            th: report.th,
            mc: report.mc,
            mmc: report.mmc,
            ac: report.ac,
            amc: report.amc,
            icv,
            icm,
            mnrv,
            mnrm,
        }
    }
}

/// Simple aligned-table printer for the report binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut width: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * width.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[wrote {}]", path.display());
        }
    }
}

/// `results/` next to the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Formats a normalized value with 2 decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a normalized value with 3 decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Runs the full pipeline and returns (outcome, metrics) for a mapper.
pub fn run_mapper(
    fine: &TaskGraph,
    machine: &Machine,
    alloc: &Allocation,
    kind: MapperKind,
    cfg: &PipelineConfig,
) -> (MappingOutcome, FullMetrics) {
    let out = map_tasks(fine, machine, alloc, kind, cfg);
    let metrics = FullMetrics::compute(fine, machine, &out.fine_mapping);
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = ExpScale::quick();
        let d = ExpScale::default();
        assert!(q.parts.iter().max() <= d.parts.iter().max());
        assert!(q.max_matrices <= d.max_matrices);
    }

    #[test]
    fn table_renders_and_escapes_csv() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1,5".into(), "x".into()]);
        assert!(t.render().contains('x'));
        assert!(t.to_csv().contains("\"1,5\""));
    }

    #[test]
    fn full_metrics_on_a_toy_case() {
        let machine = MachineConfig::small(&[4], 1, 4).build();
        let alloc = Allocation::generate(&machine, &AllocSpec::contiguous(2));
        let tg = TaskGraph::from_messages(4, [(0, 2, 3.0), (1, 3, 2.0), (0, 1, 9.0)], None);
        // Tasks 0,1 on node 0; 2,3 on node 1.
        let mapping = vec![alloc.node(0), alloc.node(0), alloc.node(1), alloc.node(1)];
        let fm = FullMetrics::compute(&tg, &machine, &mapping);
        assert_eq!(fm.tv, 14.0);
        assert_eq!(fm.icv, 5.0); // 0->1 message stays on-node
        assert_eq!(fm.icm, 2.0);
        assert_eq!(fm.mnrv, 5.0);
        assert_eq!(fm.msv, 12.0);
    }

    #[test]
    fn allocation_helper_sizes_match() {
        let s = ExpScale::quick();
        assert_eq!(s.nodes_for(128), 8);
        let m = s.machine();
        let a = s.allocation(&m, 128, 1);
        assert_eq!(a.num_nodes(), 8);
        assert_eq!(a.total_procs(), 128);
    }
}
